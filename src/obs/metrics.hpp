// Process-wide telemetry: lock-free counters, gauges, and fixed-bucket
// latency histograms, named like "sacha.verifier.frames_absorbed".
//
// The fleet operator's question ("where do sessions spend time, and why do
// members fail?") needs instrumentation on paths that run tens of
// thousands of times per attestation, so the design splits hot and cold:
//   - updates are a relaxed atomic op guarded by one branch on the global
//     enable flag (the *disabled* cost is that single predictable branch);
//   - registration and snapshotting take a mutex, but call sites cache the
//     returned instrument reference (instruments live for the process, the
//     registry never reallocates them), so the map lookup happens once.
// The enable flag defaults to SACHA_OBS_DEFAULT_ENABLED (a compile-time
// knob, off unless the build says otherwise) and honours the SACHA_OBS
// environment variable, so benches and CI can A/B without a rebuild.
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <span>
#include <string>
#include <string_view>
#include <vector>

namespace sacha::obs {

/// Runtime telemetry toggle. Initialised from SACHA_OBS=1/0 when set,
/// otherwise from the SACHA_OBS_DEFAULT_ENABLED compile definition.
bool enabled();
void set_enabled(bool on);

class Counter {
 public:
  /// Relaxed add; one branch when telemetry is disabled.
  void add(std::uint64_t n = 1) {
    if (enabled()) value_.fetch_add(n, std::memory_order_relaxed);
  }
  std::uint64_t value() const { return value_.load(std::memory_order_relaxed); }
  void reset() { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<std::uint64_t> value_{0};
};

class Gauge {
 public:
  void set(std::int64_t v) {
    if (enabled()) value_.store(v, std::memory_order_relaxed);
  }
  void add(std::int64_t v) {
    if (enabled()) value_.fetch_add(v, std::memory_order_relaxed);
  }
  std::int64_t value() const { return value_.load(std::memory_order_relaxed); }
  void reset() { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<std::int64_t> value_{0};
};

/// 1-2-5 series from 1 us to 10 s — wide enough for both host-side span
/// latencies and simulated channel transfer times (both in ns).
std::span<const std::uint64_t> default_latency_buckets_ns();

/// Log-spaced series (ratio ~1.58, ~5 buckets per decade) from 250 ns to
/// 30 s. Tighter than the 1-2-5 series where quantile extraction needs the
/// resolution: the relative error of an interpolated quantile is bounded by
/// the bucket ratio, so ~1.58 keeps p99/p999 within a few tens of percent
/// across the whole range without ballooning the bucket count.
std::span<const std::uint64_t> log_latency_buckets_ns();

struct HistogramSample;

/// Fixed-bucket histogram with Prometheus `le` (cumulative-at-export,
/// per-bucket stored) semantics: observation v lands in the first bucket
/// whose upper bound satisfies v <= bound, or the overflow bucket.
class Histogram {
 public:
  explicit Histogram(std::span<const std::uint64_t> upper_bounds);

  void observe(std::uint64_t v) {
    if (!enabled()) return;
    buckets_[bucket_index(v)].fetch_add(1, std::memory_order_relaxed);
    count_.fetch_add(1, std::memory_order_relaxed);
    sum_.fetch_add(v, std::memory_order_relaxed);
  }

  const std::vector<std::uint64_t>& upper_bounds() const { return bounds_; }
  std::uint64_t count() const { return count_.load(std::memory_order_relaxed); }
  std::uint64_t sum() const { return sum_.load(std::memory_order_relaxed); }
  /// Per-bucket (non-cumulative) counts; index bounds.size() is overflow.
  std::vector<std::uint64_t> bucket_counts() const;
  void reset();

  /// Folds a scraped sample into this histogram: element-wise bucket add
  /// plus count and sum, bypassing the enable gate (merging is an explicit
  /// aggregation step, not hot-path instrumentation). False — and a no-op —
  /// when the sample's bucket shape doesn't match this histogram's.
  bool merge_sample(const HistogramSample& sample);

  std::size_t bucket_index(std::uint64_t v) const;

 private:
  std::vector<std::uint64_t> bounds_;  // sorted ascending, immutable
  std::vector<std::atomic<std::uint64_t>> buckets_;  // bounds_.size() + 1
  std::atomic<std::uint64_t> count_{0};
  std::atomic<std::uint64_t> sum_{0};
};

/// Histogram tuned for quantile extraction: log-spaced buckets so a rank
/// interpolated inside one bucket lands within the bucket ratio of the true
/// value at any latency scale. Exported to Prometheus as ordinary `le`
/// buckets (still conformant); p50/p90/p99/p999 are derived at export time
/// by quantile()/quantile_from_sample(), never stored.
class QuantileHistogram : public Histogram {
 public:
  QuantileHistogram() : Histogram(log_latency_buckets_ns()) {}

  /// Interpolated quantile in the observation's unit (ns here), q in [0,1].
  /// Returns 0 with no observations; observations past the last bound clamp
  /// to it.
  double quantile(double q) const;
};

// ---- Snapshot ------------------------------------------------------------

struct CounterSample {
  std::string name;
  std::uint64_t value = 0;
};

struct GaugeSample {
  std::string name;
  std::int64_t value = 0;
};

struct HistogramSample {
  std::string name;
  std::vector<std::uint64_t> upper_bounds;
  std::vector<std::uint64_t> bucket_counts;  // + overflow at the end
  std::uint64_t count = 0;
  std::uint64_t sum = 0;
};

/// Point-in-time copy of every registered instrument, sorted by name.
/// Cheap to pass around; SwarmReport and the bench JSON embed one.
struct MetricsSnapshot {
  std::vector<CounterSample> counters;
  std::vector<GaugeSample> gauges;
  std::vector<HistogramSample> histograms;

  bool empty() const {
    return counters.empty() && gauges.empty() && histograms.empty();
  }
  /// Counter value by exact name, 0 when absent.
  std::uint64_t counter_value(std::string_view name) const;
};

/// Interpolated quantile over a snapshot sample — the offline counterpart
/// of QuantileHistogram::quantile() for exporters that only hold a
/// MetricsSnapshot.
double quantile_from_sample(const HistogramSample& sample, double q);

/// Fleet rollup: folds `src` into `dst` by metric name — counters and
/// gauges sum (a fleet gauge like active connections is the sum of the
/// shards'), histogram buckets add element-wise together with count and
/// sum, so quantiles extracted from the merged sample are the true fleet
/// quantiles, not an average of per-shard ones. Metrics absent from `dst`
/// are inserted; histograms whose bucket shapes disagree are skipped (a
/// shape mismatch means different build configs — merging would corrupt
/// both). Output stays sorted by name. The shard coordinator uses this
/// over parse_prometheus_text() scrapes of its shards.
void merge_into(MetricsSnapshot& dst, const MetricsSnapshot& src);

// ---- Registry ------------------------------------------------------------

class MetricsRegistry {
 public:
  /// The process-wide registry every instrumented library path uses.
  static MetricsRegistry& global();

  /// Finds or creates the named instrument. Returned references stay valid
  /// for the registry's lifetime — call sites cache them (typically in a
  /// function-local static) so the hot path never touches the map.
  Counter& counter(std::string_view name);
  Gauge& gauge(std::string_view name);
  Histogram& histogram(std::string_view name,
                       std::span<const std::uint64_t> upper_bounds = {});
  /// Histogram on the log-spaced quantile buckets — the shape every
  /// latency-quantile metric (per-phase, per-session) shares.
  Histogram& quantile_histogram(std::string_view name) {
    return histogram(name, log_latency_buckets_ns());
  }

  MetricsSnapshot snapshot() const;

  /// Zeroes every instrument (instruments stay registered). Benches use it
  /// to scope a snapshot to one run.
  void reset_values();

 private:
  mutable std::mutex mu_;
  std::map<std::string, std::unique_ptr<Counter>, std::less<>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>, std::less<>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>, std::less<>> histograms_;
};

}  // namespace sacha::obs
