#include "obs/metrics.hpp"

#include <algorithm>
#include <cstdlib>

namespace sacha::obs {

namespace {

#ifndef SACHA_OBS_DEFAULT_ENABLED
#define SACHA_OBS_DEFAULT_ENABLED 0
#endif

bool initial_enabled() {
  if (const char* env = std::getenv("SACHA_OBS")) {
    return env[0] == '1' || env[0] == 't' || env[0] == 'T' || env[0] == 'y';
  }
  return SACHA_OBS_DEFAULT_ENABLED != 0;
}

std::atomic<bool>& enabled_flag() {
  static std::atomic<bool> flag{initial_enabled()};
  return flag;
}

}  // namespace

bool enabled() { return enabled_flag().load(std::memory_order_relaxed); }
void set_enabled(bool on) {
  enabled_flag().store(on, std::memory_order_relaxed);
}

std::span<const std::uint64_t> default_latency_buckets_ns() {
  static constexpr std::array<std::uint64_t, 22> kBuckets = {
      1'000,       2'000,       5'000,         10'000,        20'000,
      50'000,      100'000,     200'000,       500'000,       1'000'000,
      2'000'000,   5'000'000,   10'000'000,    20'000'000,    50'000'000,
      100'000'000, 200'000'000, 500'000'000,   1'000'000'000, 2'000'000'000,
      5'000'000'000ULL, 10'000'000'000ULL};
  return kBuckets;
}

std::span<const std::uint64_t> log_latency_buckets_ns() {
  // Ratio 10^(1/5) ~ 1.585, five buckets per decade, 250 ns .. 30 s.
  static const std::vector<std::uint64_t> kBuckets = [] {
    std::vector<std::uint64_t> out;
    double bound = 250.0;
    while (bound < 30e9) {
      out.push_back(static_cast<std::uint64_t>(bound + 0.5));
      bound *= 1.58489319246;  // 10^(1/5)
    }
    out.push_back(30'000'000'000ULL);
    return out;
  }();
  return kBuckets;
}

Histogram::Histogram(std::span<const std::uint64_t> upper_bounds)
    : bounds_(upper_bounds.begin(), upper_bounds.end()),
      buckets_(bounds_.size() + 1) {
  if (bounds_.empty()) {
    const auto d = default_latency_buckets_ns();
    bounds_.assign(d.begin(), d.end());
    buckets_ = std::vector<std::atomic<std::uint64_t>>(bounds_.size() + 1);
  }
}

std::size_t Histogram::bucket_index(std::uint64_t v) const {
  // First bound with v <= bound (`le` semantics); past the last -> overflow.
  const auto it = std::lower_bound(bounds_.begin(), bounds_.end(), v);
  return static_cast<std::size_t>(it - bounds_.begin());
}

std::vector<std::uint64_t> Histogram::bucket_counts() const {
  std::vector<std::uint64_t> out(buckets_.size());
  for (std::size_t i = 0; i < buckets_.size(); ++i) {
    out[i] = buckets_[i].load(std::memory_order_relaxed);
  }
  return out;
}

void Histogram::reset() {
  for (auto& b : buckets_) b.store(0, std::memory_order_relaxed);
  count_.store(0, std::memory_order_relaxed);
  sum_.store(0, std::memory_order_relaxed);
}

bool Histogram::merge_sample(const HistogramSample& sample) {
  if (sample.upper_bounds != bounds_ ||
      sample.bucket_counts.size() != buckets_.size()) {
    return false;
  }
  for (std::size_t i = 0; i < buckets_.size(); ++i) {
    buckets_[i].fetch_add(sample.bucket_counts[i], std::memory_order_relaxed);
  }
  count_.fetch_add(sample.count, std::memory_order_relaxed);
  sum_.fetch_add(sample.sum, std::memory_order_relaxed);
  return true;
}

namespace {

/// Shared interpolation core: rank q*count located in the cumulative bucket
/// walk, then linear interpolation inside the bucket's [lower, upper] edge
/// span. Overflow-bucket ranks clamp to the last bound (there is no upper
/// edge to interpolate toward).
double quantile_impl(const std::vector<std::uint64_t>& bounds,
                     const std::vector<std::uint64_t>& counts,
                     std::uint64_t total, double q) {
  if (total == 0 || bounds.empty()) return 0.0;
  q = std::clamp(q, 0.0, 1.0);
  const double rank = q * static_cast<double>(total);
  double cumulative = 0.0;
  for (std::size_t i = 0; i < counts.size(); ++i) {
    const double in_bucket = static_cast<double>(counts[i]);
    if (cumulative + in_bucket >= rank && in_bucket > 0) {
      if (i >= bounds.size()) {  // overflow bucket: clamp
        return static_cast<double>(bounds.back());
      }
      const double lower = i == 0 ? 0.0 : static_cast<double>(bounds[i - 1]);
      const double upper = static_cast<double>(bounds[i]);
      const double frac = (rank - cumulative) / in_bucket;
      return lower + frac * (upper - lower);
    }
    cumulative += in_bucket;
  }
  return static_cast<double>(bounds.back());
}

}  // namespace

double QuantileHistogram::quantile(double q) const {
  return quantile_impl(upper_bounds(), bucket_counts(), count(), q);
}

double quantile_from_sample(const HistogramSample& sample, double q) {
  return quantile_impl(sample.upper_bounds, sample.bucket_counts, sample.count,
                       q);
}

std::uint64_t MetricsSnapshot::counter_value(std::string_view name) const {
  for (const CounterSample& c : counters) {
    if (c.name == name) return c.value;
  }
  return 0;
}

void merge_into(MetricsSnapshot& dst, const MetricsSnapshot& src) {
  const auto by_name = [](const auto& a, const auto& b) {
    return a.name < b.name;
  };
  for (const CounterSample& c : src.counters) {
    auto it = std::find_if(dst.counters.begin(), dst.counters.end(),
                           [&](const CounterSample& d) { return d.name == c.name; });
    if (it == dst.counters.end()) {
      dst.counters.push_back(c);
    } else {
      it->value += c.value;
    }
  }
  for (const GaugeSample& g : src.gauges) {
    auto it = std::find_if(dst.gauges.begin(), dst.gauges.end(),
                           [&](const GaugeSample& d) { return d.name == g.name; });
    if (it == dst.gauges.end()) {
      dst.gauges.push_back(g);
    } else {
      it->value += g.value;
    }
  }
  for (const HistogramSample& h : src.histograms) {
    auto it = std::find_if(
        dst.histograms.begin(), dst.histograms.end(),
        [&](const HistogramSample& d) { return d.name == h.name; });
    if (it == dst.histograms.end()) {
      dst.histograms.push_back(h);
      continue;
    }
    if (it->upper_bounds != h.upper_bounds ||
        it->bucket_counts.size() != h.bucket_counts.size()) {
      continue;  // different build config on that shard; don't corrupt
    }
    for (std::size_t i = 0; i < it->bucket_counts.size(); ++i) {
      it->bucket_counts[i] += h.bucket_counts[i];
    }
    it->count += h.count;
    it->sum += h.sum;
  }
  std::sort(dst.counters.begin(), dst.counters.end(), by_name);
  std::sort(dst.gauges.begin(), dst.gauges.end(), by_name);
  std::sort(dst.histograms.begin(), dst.histograms.end(), by_name);
}

MetricsRegistry& MetricsRegistry::global() {
  static MetricsRegistry* registry = new MetricsRegistry();  // never destroyed
  return *registry;
}

Counter& MetricsRegistry::counter(std::string_view name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = counters_.find(name);
  if (it == counters_.end()) {
    it = counters_.emplace(std::string(name), std::make_unique<Counter>())
             .first;
  }
  return *it->second;
}

Gauge& MetricsRegistry::gauge(std::string_view name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = gauges_.find(name);
  if (it == gauges_.end()) {
    it = gauges_.emplace(std::string(name), std::make_unique<Gauge>()).first;
  }
  return *it->second;
}

Histogram& MetricsRegistry::histogram(
    std::string_view name, std::span<const std::uint64_t> upper_bounds) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = histograms_.find(name);
  if (it == histograms_.end()) {
    it = histograms_
             .emplace(std::string(name),
                      std::make_unique<Histogram>(upper_bounds))
             .first;
  }
  return *it->second;
}

MetricsSnapshot MetricsRegistry::snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  MetricsSnapshot snap;
  snap.counters.reserve(counters_.size());
  for (const auto& [name, c] : counters_) {
    snap.counters.push_back({name, c->value()});
  }
  snap.gauges.reserve(gauges_.size());
  for (const auto& [name, g] : gauges_) {
    snap.gauges.push_back({name, g->value()});
  }
  snap.histograms.reserve(histograms_.size());
  for (const auto& [name, h] : histograms_) {
    snap.histograms.push_back({name, h->upper_bounds(), h->bucket_counts(),
                               h->count(), h->sum()});
  }
  return snap;
}

void MetricsRegistry::reset_values() {
  std::lock_guard<std::mutex> lock(mu_);
  for (const auto& [name, c] : counters_) c->reset();
  for (const auto& [name, g] : gauges_) g->reset();
  for (const auto& [name, h] : histograms_) h->reset();
}

}  // namespace sacha::obs
