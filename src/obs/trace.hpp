// Span-based tracing: per-session protocol timelines.
//
// A Span is an RAII interval on the host's monotonic clock. Spans opened on
// the same thread nest (a thread-local depth counter records how deep), and
// every span carries a TraceId derived from (device id, nonce) — the
// session key of the paper's Fig. 9 run — so a fleet coordinator can pull
// one member's timeline out of the merged record stream. The phase names
// used by the instrumented session driver mirror the protocol steps of
// Table 4: bitstream stream-in, nonce injection, per-readback-round absorb,
// CMAC finish, masked-compare verdict.
//
// Cost model matches the metrics side: when telemetry is disabled a Span
// constructor is one branch and no clock read; when enabled, two clock
// reads and one short mutex-guarded append on close. The global record
// buffer is bounded — overflow drops spans and counts them in
// `sacha.obs.spans_dropped` rather than growing without limit.
#pragma once

#include <chrono>
#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "obs/metrics.hpp"

namespace sacha::obs {

/// 128-bit session timeline key derived from (device id, nonce).
struct TraceId {
  std::uint64_t hi = 0;
  std::uint64_t lo = 0;

  bool valid() const { return hi != 0 || lo != 0; }
  bool operator==(const TraceId&) const = default;
};

TraceId make_trace_id(std::string_view device_id, std::uint64_t nonce);
std::string to_string(const TraceId& id);

/// Deterministic head sampler: the keep/drop decision is a pure function of
/// (TraceId, rate), so every process that sees the same trace id — the
/// prover-side client, the verifier-side service, an offline replay —
/// reaches the same decision without coordination. That is what lets a
/// 512-connection fleet keep tracing enabled at a 1% rate and still end up
/// with *complete* cross-process timelines for the sampled sessions.
/// Counters and histograms are always-on regardless of sampling; only span
/// records are gated.
class Sampler {
 public:
  /// rate clamped to [0, 1]; 1 keeps everything, 0 keeps nothing.
  explicit Sampler(double rate = 1.0) { set_rate(rate); }

  /// Process-wide sampler. Initial rate comes from SACHA_OBS_SAMPLE when
  /// set (a double, e.g. "0.01"), else 1.0 — full tracing, the pre-sampling
  /// behaviour.
  static Sampler& global();

  double rate() const;
  void set_rate(double rate);

  /// Pure function of (id, rate): hashes the trace id and compares against
  /// the rate threshold. Invalid ids are never sampled.
  bool should_sample(const TraceId& id) const;

 private:
  /// Keep threshold on the hashed id; rate is threshold / 2^64.
  std::atomic<std::uint64_t> threshold_{~0ULL};
};

/// True when telemetry is enabled AND the global sampler keeps this id —
/// the one predicate every span-opening call site checks.
bool should_trace(const TraceId& id);

/// Feeds one Table-4 phase duration into the per-phase quantile histogram
/// `sacha.phase.<phase>_ns` (log buckets; p50/p90/p99/p999 derived at
/// export). Called by the wire-session span emitters on both sides of the
/// socket, so the feed follows head sampling — which is deterministic on
/// the trace id and independent of latency, so the quantiles stay unbiased
/// at low rates (just thinner).
void observe_phase_duration(const std::string& phase,
                            std::uint64_t duration_ns);

/// One closed span. `start_ns` is relative to the tracer's epoch (first
/// use), so timelines from different threads share one time base.
struct SpanRecord {
  std::string name;
  std::string category;
  TraceId trace;
  std::uint64_t thread_id = 0;  // std::hash of the opening thread's id
  std::uint64_t start_ns = 0;
  std::uint64_t duration_ns = 0;
  std::uint32_t depth = 0;  // nesting depth on the opening thread
  std::vector<std::pair<std::string, std::string>> args;
};

class Tracer {
 public:
  static Tracer& global();

  /// Nanoseconds since the tracer's epoch (monotonic).
  std::uint64_t now_ns() const;

  /// Copies the recorded spans (end order).
  std::vector<SpanRecord> records() const;
  /// Moves the recorded spans out and clears the buffer.
  std::vector<SpanRecord> drain();
  void clear();
  std::size_t size() const;

  /// Appends a manually assembled span. The RAII Span is thread-affine
  /// (its depth counter is thread-local), which does not fit executors
  /// that migrate one session across worker threads — the attestd verify
  /// lanes and the multiplexed client loop both do. Those call sites
  /// stamp start/duration/depth/thread_id themselves and hand the record
  /// straight in. Callers are expected to have checked should_trace().
  void record(SpanRecord&& r) { append(std::move(r)); }

 private:
  friend class Span;
  Tracer();
  void append(SpanRecord&& record);

  static constexpr std::size_t kMaxRecords = 1u << 22;  // ~4M spans

  std::chrono::steady_clock::time_point epoch_;
  mutable std::mutex mu_;
  std::vector<SpanRecord> records_;
};

/// RAII span. Construct to open, end()/destroy to close and record.
class Span {
 public:
  Span(std::string name, TraceId trace = {}, std::string category = "session");
  ~Span() { end(); }

  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;
  Span(Span&& other) noexcept;
  Span& operator=(Span&&) = delete;

  /// Attaches a key=value annotation (no-op on inactive spans).
  Span& arg(std::string key, std::string value);

  /// Closes and records the span; idempotent.
  void end();

  bool active() const { return active_; }

 private:
  bool active_ = false;
  SpanRecord record_;
};

/// Fraction of the interval of the `session_name` span with trace id `id`
/// covered by the union of its direct children (depth + 1, same thread).
/// Returns 0 when the session span is missing. This is the acceptance
/// metric for "spans cover >= N% of the member's session wall-clock".
double timeline_coverage(const std::vector<SpanRecord>& records,
                         const TraceId& id,
                         std::string_view session_name = "session");

}  // namespace sacha::obs
