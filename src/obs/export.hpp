// Telemetry exporters.
//
// Three consumer-facing formats:
//   - metrics_json: the snapshot as one JSON object, embedded in the
//     BENCH_*.json files and available from the CLI (--metrics);
//   - prometheus_text: the text exposition format (names have dots mapped
//     to underscores, histograms expand to cumulative `le` buckets) for
//     scraping a long-running fleet verifier;
//   - chrome_trace_json: the tracer's span records as Chrome trace_event
//     "X" (complete) events — load the file in chrome://tracing or Perfetto
//     to see per-session flame charts; thread ids are remapped to small
//     ordinals in order of first appearance so fleet timelines read as
//     "worker 0..N-1" lanes.
#pragma once

#include <string>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace sacha::obs {

std::string metrics_json(const MetricsSnapshot& snapshot);
std::string prometheus_text(const MetricsSnapshot& snapshot);
std::string chrome_trace_json(const std::vector<SpanRecord>& records);

/// Inverse of prometheus_text for fleet aggregation: parses a scraped
/// exposition body back into a MetricsSnapshot. Driven by the `# TYPE`
/// headers this exporter always emits; histogram `le` buckets are
/// un-cumulated back to per-bucket counts with the overflow bucket
/// recovered from `_count`. Names come back in their sanitized
/// (underscored) form — prometheus_name() is idempotent, so merging parsed
/// snapshots and re-emitting them round-trips exactly. Unparseable lines
/// are skipped, never fatal (a scrape is advisory input).
MetricsSnapshot parse_prometheus_text(std::string_view text);

/// Sanitizes a dotted metric name to the exposition-format charset
/// ([a-zA-Z_:][a-zA-Z0-9_:]*): invalid chars map to '_', a leading digit
/// gets a '_' prefix.
std::string prometheus_name(std::string_view name);
/// Escapes a label value per the text exposition format (backslash,
/// double-quote, newline).
std::string prometheus_label_escape(std::string_view value);

/// Writes `content` to `path`; false on I/O error.
bool write_text_file(const std::string& path, const std::string& content);

/// Convenience: snapshots the global registry / drains the global tracer
/// and writes the chosen format. Returns false on I/O error.
bool write_metrics_json(const std::string& path);
bool write_prometheus(const std::string& path);
bool write_chrome_trace(const std::string& path);

}  // namespace sacha::obs
