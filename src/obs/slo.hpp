// Service-level objective tracking for the attestation service.
//
// The operator's contract is "P% of attestations finish under T ms and
// succeed". An SloTracker folds every finished session into that contract:
// a session is *good* when it attested within the latency objective, *bad*
// otherwise (slow, failed, or quarantined — the prover's view of the fleet
// does not distinguish why it waited). From the good/total split the
// tracker derives the error budget (the (1-P) fraction of sessions the
// objective allows to be bad) and the burn rate (how fast that budget is
// being consumed relative to plan: burn 1.0 = exactly on budget, > 1.0 =
// burning faster than the objective tolerates).
//
// Everything is exported as gauges under `sacha.slo.*`, so the numbers ride
// the existing /metrics endpoint and Prometheus alert rules can threshold
// on the burn rate directly (the standard multi-window burn-rate alert
// needs nothing else from the service).
#pragma once

#include <cstdint>
#include <string>

#include "obs/metrics.hpp"

namespace sacha::obs {

class SloTracker {
 public:
  struct Options {
    /// Latency objective: a session slower than this is an SLO miss even
    /// when it attested. 0 disables the latency clause (only failures burn
    /// budget).
    std::uint64_t latency_objective_ns = 250'000'000;  // 250 ms
    /// Target good fraction in [0,1); the error budget is 1 - target.
    double target = 0.999;
    /// Gauge name prefix. Two trackers in one process (e.g. attestd's
    /// session SLO and the epoch scheduler's freshness SLO) must use
    /// distinct prefixes or they clobber each other's gauges.
    std::string metric_prefix = "sacha.slo";
  };

  SloTracker() : SloTracker(Options{}) {}
  explicit SloTracker(Options options);

  /// Folds one finished session into the objective. `ok` is "the session
  /// attested"; latency is wall-clock from accept to verdict.
  void record(std::uint64_t latency_ns, bool ok);

  std::uint64_t total() const { return total_.value(); }
  std::uint64_t good() const { return good_.value(); }

  /// Remaining error budget as parts-per-million of total sessions seen:
  /// 1e6 means untouched, 0 means exhausted (clamped).
  std::int64_t budget_remaining_ppm() const;

  /// Bad-fraction / allowed-bad-fraction, in milli-units (1000 = burning
  /// exactly at the allowed rate). 0 until the first session.
  std::int64_t burn_rate_milli() const;

  const Options& options() const { return options_; }

 private:
  void publish();

  Options options_;
  Counter total_;
  Counter good_;
  Gauge& g_total_;
  Gauge& g_good_;
  Gauge& g_budget_ppm_;
  Gauge& g_burn_milli_;
  Gauge& g_objective_ms_;
  Gauge& g_target_ppm_;
};

}  // namespace sacha::obs
