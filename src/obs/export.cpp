#include "obs/export.hpp"

#include <cinttypes>
#include <cstdio>
#include <cstdlib>
#include <map>
#include <sstream>

namespace sacha::obs {

namespace {

std::string json_escape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    if (c == '"' || c == '\\') out.push_back('\\');
    if (static_cast<unsigned char>(c) < 0x20) continue;  // control chars
    out.push_back(c);
  }
  return out;
}

}  // namespace

std::string prometheus_name(std::string_view name) {
  std::string out;
  out.reserve(name.size() + 1);
  for (char c : name) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '_' || c == ':';
    out.push_back(ok ? c : '_');
  }
  // Metric names must not start with a digit ([a-zA-Z_:] first).
  if (!out.empty() && out.front() >= '0' && out.front() <= '9') {
    out.insert(out.begin(), '_');
  }
  return out;
}

std::string prometheus_label_escape(std::string_view value) {
  std::string out;
  out.reserve(value.size());
  for (char c : value) {
    switch (c) {
      case '\\': out += "\\\\"; break;
      case '"': out += "\\\""; break;
      case '\n': out += "\\n"; break;
      default: out.push_back(c);
    }
  }
  return out;
}

namespace {

/// HELP text: backslash and newline must be escaped (quotes are fine).
std::string prometheus_help_escape(std::string_view text) {
  std::string out;
  out.reserve(text.size());
  for (char c : text) {
    switch (c) {
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      default: out.push_back(c);
    }
  }
  return out;
}

void prometheus_header(std::ostringstream& out, const std::string& name,
                       std::string_view dotted, std::string_view type) {
  out << "# HELP " << name << " SACHa " << type << " "
      << prometheus_help_escape(dotted) << "\n";
  out << "# TYPE " << name << " " << type << "\n";
}

}  // namespace

std::string metrics_json(const MetricsSnapshot& snapshot) {
  std::ostringstream out;
  out << "{\n  \"counters\": {";
  for (std::size_t i = 0; i < snapshot.counters.size(); ++i) {
    const CounterSample& c = snapshot.counters[i];
    out << (i ? "," : "") << "\n    \"" << json_escape(c.name)
        << "\": " << c.value;
  }
  out << (snapshot.counters.empty() ? "" : "\n  ") << "},\n  \"gauges\": {";
  for (std::size_t i = 0; i < snapshot.gauges.size(); ++i) {
    const GaugeSample& g = snapshot.gauges[i];
    out << (i ? "," : "") << "\n    \"" << json_escape(g.name)
        << "\": " << g.value;
  }
  out << (snapshot.gauges.empty() ? "" : "\n  ") << "},\n  \"histograms\": {";
  for (std::size_t i = 0; i < snapshot.histograms.size(); ++i) {
    const HistogramSample& h = snapshot.histograms[i];
    out << (i ? "," : "") << "\n    \"" << json_escape(h.name)
        << "\": {\"count\": " << h.count << ", \"sum\": " << h.sum
        << ", \"bounds\": [";
    for (std::size_t b = 0; b < h.upper_bounds.size(); ++b) {
      out << (b ? "," : "") << h.upper_bounds[b];
    }
    out << "], \"buckets\": [";
    for (std::size_t b = 0; b < h.bucket_counts.size(); ++b) {
      out << (b ? "," : "") << h.bucket_counts[b];
    }
    out << "]}";
  }
  out << (snapshot.histograms.empty() ? "" : "\n  ") << "}\n}\n";
  return out.str();
}

std::string prometheus_text(const MetricsSnapshot& snapshot) {
  std::ostringstream out;
  for (const CounterSample& c : snapshot.counters) {
    const std::string name = prometheus_name(c.name);
    prometheus_header(out, name, c.name, "counter");
    out << name << " " << c.value << "\n";
  }
  for (const GaugeSample& g : snapshot.gauges) {
    const std::string name = prometheus_name(g.name);
    prometheus_header(out, name, g.name, "gauge");
    out << name << " " << g.value << "\n";
  }
  for (const HistogramSample& h : snapshot.histograms) {
    const std::string name = prometheus_name(h.name);
    prometheus_header(out, name, h.name, "histogram");
    std::uint64_t cumulative = 0;
    for (std::size_t b = 0; b < h.upper_bounds.size(); ++b) {
      cumulative += h.bucket_counts[b];
      out << name << "_bucket{le=\""
          << prometheus_label_escape(std::to_string(h.upper_bounds[b]))
          << "\"} " << cumulative << "\n";
    }
    out << name << "_bucket{le=\"+Inf\"} " << h.count << "\n";
    out << name << "_sum " << h.sum << "\n";
    out << name << "_count " << h.count << "\n";
  }
  return out.str();
}

MetricsSnapshot parse_prometheus_text(std::string_view text) {
  MetricsSnapshot snap;
  std::string cur_name;   // sanitized metric name from the last # TYPE line
  std::string cur_type;   // counter | gauge | histogram
  HistogramSample hist;   // in-flight histogram (cur_type == "histogram")
  std::uint64_t cumulative = 0;

  std::size_t pos = 0;
  while (pos <= text.size()) {
    const std::size_t eol = text.find('\n', pos);
    const std::string_view line =
        text.substr(pos, eol == std::string_view::npos ? eol : eol - pos);
    pos = eol == std::string_view::npos ? text.size() + 1 : eol + 1;
    if (line.empty()) continue;

    if (line[0] == '#') {
      constexpr std::string_view kType = "# TYPE ";
      if (line.substr(0, kType.size()) != kType) continue;
      const std::string_view rest = line.substr(kType.size());
      const std::size_t space = rest.find(' ');
      if (space == std::string_view::npos) continue;
      cur_name = std::string(rest.substr(0, space));
      cur_type = std::string(rest.substr(space + 1));
      if (cur_type == "histogram") {
        hist = HistogramSample{};
        hist.name = cur_name;
        cumulative = 0;
      }
      continue;
    }

    // Sample line: <key>[{labels}] <value>. The value separator is the
    // first space after the (optional) label block.
    const std::size_t brace = line.find('{');
    std::size_t sep;
    if (brace != std::string_view::npos) {
      const std::size_t close = line.find('}', brace);
      if (close == std::string_view::npos) continue;
      sep = line.find(' ', close);
    } else {
      sep = line.find(' ');
    }
    if (sep == std::string_view::npos) continue;
    const std::string_view key = line.substr(0, sep);
    const std::string value_str(line.substr(sep + 1));

    if (cur_type == "counter" && key == cur_name) {
      snap.counters.push_back(
          {cur_name, std::strtoull(value_str.c_str(), nullptr, 10)});
    } else if (cur_type == "gauge" && key == cur_name) {
      snap.gauges.push_back(
          {cur_name, std::strtoll(value_str.c_str(), nullptr, 10)});
    } else if (cur_type == "histogram") {
      const std::string bucket_prefix = cur_name + "_bucket{le=\"";
      if (key.substr(0, bucket_prefix.size()) == bucket_prefix) {
        const std::string_view le =
            key.substr(bucket_prefix.size(),
                       key.size() - bucket_prefix.size() - 2);  // strip "}
        if (le == "+Inf") continue;  // recovered from _count below
        const std::uint64_t cum =
            std::strtoull(value_str.c_str(), nullptr, 10);
        hist.upper_bounds.push_back(
            std::strtoull(std::string(le).c_str(), nullptr, 10));
        hist.bucket_counts.push_back(cum >= cumulative ? cum - cumulative : 0);
        cumulative = cum;
      } else if (key == cur_name + "_sum") {
        hist.sum = std::strtoull(value_str.c_str(), nullptr, 10);
      } else if (key == cur_name + "_count") {
        hist.count = std::strtoull(value_str.c_str(), nullptr, 10);
        // Overflow bucket: observations past the last bound.
        hist.bucket_counts.push_back(
            hist.count >= cumulative ? hist.count - cumulative : 0);
        snap.histograms.push_back(hist);
        hist = HistogramSample{};
        cumulative = 0;
      }
    }
  }
  return snap;
}

std::string chrome_trace_json(const std::vector<SpanRecord>& records) {
  // Remap thread hashes to small ordinals (by first appearance in record
  // order) so timelines read as worker lanes.
  std::map<std::uint64_t, unsigned> tid_map;
  unsigned next_tid = 0;
  for (const SpanRecord& r : records) {
    if (tid_map.emplace(r.thread_id, next_tid).second) ++next_tid;
  }

  std::ostringstream out;
  out << "{\"traceEvents\": [";
  for (std::size_t i = 0; i < records.size(); ++i) {
    const SpanRecord& r = records[i];
    char ts[64];
    char dur[64];
    std::snprintf(ts, sizeof(ts), "%.3f",
                  static_cast<double>(r.start_ns) / 1'000.0);
    std::snprintf(dur, sizeof(dur), "%.3f",
                  static_cast<double>(r.duration_ns) / 1'000.0);
    out << (i ? ",\n" : "\n") << " {\"name\": \"" << json_escape(r.name)
        << "\", \"cat\": \"" << json_escape(r.category)
        << "\", \"ph\": \"X\", \"pid\": 1, \"tid\": " << tid_map[r.thread_id]
        << ", \"ts\": " << ts << ", \"dur\": " << dur << ", \"args\": {";
    out << "\"trace_id\": \"" << to_string(r.trace) << "\"";
    for (const auto& [key, value] : r.args) {
      out << ", \"" << json_escape(key) << "\": \"" << json_escape(value)
          << "\"";
    }
    out << "}}";
  }
  out << "\n]}\n";
  return out.str();
}

bool write_text_file(const std::string& path, const std::string& content) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) return false;
  const std::size_t written = std::fwrite(content.data(), 1, content.size(), f);
  const bool ok = written == content.size() && std::fclose(f) == 0;
  if (!ok && written == content.size()) return false;
  return ok;
}

bool write_metrics_json(const std::string& path) {
  return write_text_file(path,
                         metrics_json(MetricsRegistry::global().snapshot()));
}

bool write_prometheus(const std::string& path) {
  return write_text_file(
      path, prometheus_text(MetricsRegistry::global().snapshot()));
}

bool write_chrome_trace(const std::string& path) {
  return write_text_file(path, chrome_trace_json(Tracer::global().drain()));
}

}  // namespace sacha::obs
