// Bounded on-fabric staging memory.
//
// The bounded-memory argument at the heart of SACHa: the fabric's BRAM is
// far too small to stash the partial bitstream while pretending to accept
// it (§5.2, [24]). This class models any BRAM-backed staging buffer — the
// static partition's one-frame command buffer as well as an adversary's
// hypothetical save/restore buffer — with a hard capacity check. The
// BramStagingAttack fails precisely because store() refuses data larger
// than the remaining capacity.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>

#include "common/bytes.hpp"

namespace sacha::config {

class BramBuffer {
 public:
  explicit BramBuffer(std::uint64_t capacity_bytes)
      : capacity_(capacity_bytes) {}

  std::uint64_t capacity() const { return capacity_; }
  std::uint64_t used() const { return used_; }
  std::uint64_t free() const { return capacity_ - used_; }

  /// Stores (or replaces) an entry; false if it would exceed capacity, in
  /// which case nothing changes.
  bool store(const std::string& key, Bytes data);

  std::optional<Bytes> load(const std::string& key) const;
  bool erase(const std::string& key);
  void clear();

 private:
  std::uint64_t capacity_;
  std::uint64_t used_ = 0;
  std::map<std::string, Bytes> entries_;
};

}  // namespace sacha::config
