#include "config/seu.hpp"

#include "bitstream/bitgen.hpp"
#include "bitstream/packet.hpp"

namespace sacha::config {

namespace bs = sacha::bitstream;

std::vector<BitLocation> SeuInjector::inject(ConfigMemory& memory,
                                             std::uint32_t count) {
  std::vector<BitLocation> hits;
  hits.reserve(count);
  const std::uint32_t frame_bits = memory.words_per_frame() * 32;
  for (std::uint32_t i = 0; i < count; ++i) {
    BitLocation hit;
    hit.frame = static_cast<std::uint32_t>(rng_.below(memory.total_frames()));
    hit.bit = static_cast<std::uint32_t>(rng_.below(frame_bits));
    bs::Frame frame = memory.config_frame(hit.frame);
    frame.flip_bit(hit.bit);
    // Direct upset of the stored configuration; register state untouched
    // (a strike on a flip-flop is modelled by set_register_bit instead).
    memory.write_frame_preserving_registers(hit.frame, frame);
    hits.push_back(hit);
  }
  return hits;
}

std::vector<BitLocation> SeuInjector::inject_config_bits(ConfigMemory& memory,
                                                         std::uint32_t count) {
  std::vector<BitLocation> hits;
  hits.reserve(count);
  const std::uint32_t frame_bits = memory.words_per_frame() * 32;
  while (hits.size() < count) {
    BitLocation hit;
    hit.frame = static_cast<std::uint32_t>(rng_.below(memory.total_frames()));
    hit.bit = static_cast<std::uint32_t>(rng_.below(frame_bits));
    if (!memory.mask(hit.frame).get_bit(hit.bit)) continue;  // register bit
    bs::Frame frame = memory.config_frame(hit.frame);
    frame.flip_bit(hit.bit);
    memory.write_frame_preserving_registers(hit.frame, frame);
    hits.push_back(hit);
  }
  return hits;
}

Scrubber::Scrubber(Icap& icap, GoldenProvider golden, bool repair)
    : icap_(icap), golden_(std::move(golden)), repair_(repair) {}

ScrubReport Scrubber::scrub(fabric::FrameRange range) {
  ScrubReport report;
  const auto& device = icap_.memory().device();
  const std::uint32_t wpf = device.geometry().words_per_frame();
  const std::uint32_t idcode = device_idcode(device);
  const std::uint64_t cycles_before = icap_.stats().cycles;

  for (std::uint32_t f = range.first; f < range.end(); ++f) {
    bs::PacketWriter w;
    w.sync();
    w.write_idcode(idcode);
    w.cmd(bs::CmdOp::kRcfg);
    w.write_far(device.geometry().address_of(f));
    w.read_request(wpf);
    w.cmd(bs::CmdOp::kDesync);
    auto result = icap_.execute(w.words());
    if (!result.ok()) continue;  // unreadable frame: skip (counted scanned)
    ++report.frames_scanned;

    const bs::Frame readback(std::move(result).take());
    const bs::FrameMask& mask = icap_.memory().mask(f);
    const bs::Frame& golden = golden_(f);
    if (!bs::masked_equal(readback, golden, mask)) {
      ++report.frames_corrupted;
      report.corrupted_frames.push_back(f);
      if (repair_) {
        bs::PacketWriter repair;
        repair.sync();
        repair.write_idcode(idcode);
        repair.cmd(bs::CmdOp::kWcfg);
        repair.write_far(device.geometry().address_of(f));
        repair.write_frames(golden.words());
        repair.cmd(bs::CmdOp::kDesync);
        if (icap_.execute(repair.words()).ok()) ++report.frames_repaired;
      }
    }
  }
  report.icap_cycles = icap_.stats().cycles - cycles_before;
  return report;
}

}  // namespace sacha::config
