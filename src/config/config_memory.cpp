#include "config/config_memory.hpp"

#include <cassert>

#include "bitstream/bitgen.hpp"

namespace sacha::config {

using bitstream::architectural_mask;

ConfigMemory::ConfigMemory(const fabric::DeviceModel& device)
    : device_(device) {
  const std::uint32_t n = device_.total_frames();
  const std::uint32_t words = device_.geometry().words_per_frame();
  config_.assign(n, bitstream::Frame(words));
  registers_.assign(n, bitstream::Frame(words));
  masks_.reserve(n);
  register_positions_.resize(n);
  for (std::uint32_t i = 0; i < n; ++i) {
    masks_.push_back(architectural_mask(device_, i));
    const bitstream::FrameMask& msk = masks_.back();
    for (std::uint32_t b = 0; b < msk.bit_count(); ++b) {
      if (!msk.get_bit(b)) register_positions_[i].push_back(b);
    }
  }
}

void ConfigMemory::write_frame(std::uint32_t index,
                               const bitstream::Frame& frame) {
  assert(index < config_.size());
  assert(frame.size() == words_per_frame());
  config_[index] = frame;
  registers_[index] = frame;  // FFs come up in their INIT state
}

void ConfigMemory::write_frame_preserving_registers(
    std::uint32_t index, const bitstream::Frame& frame) {
  assert(index < config_.size());
  assert(frame.size() == words_per_frame());
  config_[index] = frame;
}

const bitstream::Frame& ConfigMemory::config_frame(std::uint32_t index) const {
  assert(index < config_.size());
  return config_[index];
}

bitstream::Frame ConfigMemory::readback_frame(std::uint32_t index) const {
  assert(index < config_.size());
  const bitstream::Frame& cfg = config_[index];
  const bitstream::Frame& reg = registers_[index];
  const bitstream::FrameMask& msk = masks_[index];
  bitstream::Frame out(words_per_frame());
  for (std::uint32_t w = 0; w < out.size(); ++w) {
    out.set_word(w, (cfg.word(w) & msk.word(w)) | (reg.word(w) & ~msk.word(w)));
  }
  return out;
}

void ConfigMemory::readback_into(std::uint32_t index,
                                 std::vector<std::uint32_t>& out) const {
  assert(index < config_.size());
  const bitstream::Frame& cfg = config_[index];
  const bitstream::Frame& reg = registers_[index];
  const bitstream::FrameMask& msk = masks_[index];
  const std::uint32_t words = words_per_frame();
  for (std::uint32_t w = 0; w < words; ++w) {
    out.push_back((cfg.word(w) & msk.word(w)) | (reg.word(w) & ~msk.word(w)));
  }
}

const bitstream::FrameMask& ConfigMemory::mask(std::uint32_t index) const {
  assert(index < masks_.size());
  return masks_[index];
}

void ConfigMemory::tick_registers(Rng& rng, double flip_probability) {
  if (flip_probability <= 0.0) return;
  for (std::uint32_t f = 0; f < registers_.size(); ++f) {
    bitstream::Frame& reg = registers_[f];
    for (std::uint32_t b : register_positions_[f]) {
      if (rng.chance(flip_probability)) reg.flip_bit(b);
    }
  }
}

void ConfigMemory::set_register_bit(std::uint32_t frame_index, std::uint32_t bit,
                                    bool value) {
  assert(frame_index < registers_.size());
  registers_[frame_index].set_bit(bit, value);
}

}  // namespace sacha::config
