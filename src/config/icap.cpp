#include "config/icap.hpp"

#include "bitstream/bitgen.hpp"
#include "bitstream/packet.hpp"
#include "obs/metrics.hpp"

namespace sacha::config {

namespace bs = sacha::bitstream;

std::uint32_t device_idcode(const fabric::DeviceModel& device) {
  if (device.name() == "XC6VLX240T") return bs::BitGen::kIdcodeXc6vlx240t;
  return static_cast<std::uint32_t>(bs::fnv1a(device.name()));
}

Icap::Icap(ConfigMemory& memory, std::uint32_t idcode, IcapTiming timing)
    : memory_(&memory), idcode_(idcode), timing_(timing) {}

Result<std::vector<std::uint32_t>> Icap::execute(
    std::span<const std::uint32_t> words) {
  using R = Result<std::vector<std::uint32_t>>;
  auto parsed = bs::parse_packets(words);
  if (!parsed.ok()) return R::error("ICAP: " + parsed.message());

  ++stats_.command_streams;
  static obs::Counter& streams =
      obs::MetricsRegistry::global().counter("sacha.prover.icap_streams");
  streams.add(1);
  stats_.cycles +=
      static_cast<std::uint64_t>(timing_.port_cycles_per_word) * words.size();

  const std::uint32_t wpf = memory_->words_per_frame();
  const std::uint32_t total = memory_->total_frames();
  const std::vector<bs::ConfigOp> ops = std::move(parsed).take();
  std::vector<std::uint32_t> output;
  // Reserve the whole readback volume up front: the op list is already
  // parsed, so the output size is known exactly and the frame loop below
  // never reallocates.
  std::size_t read_words = 0;
  for (const bs::ConfigOp& op : ops) {
    if (const auto* rd = std::get_if<bs::OpReadRequest>(&op)) {
      read_words += rd->word_count;
    }
  }
  output.reserve(read_words);
  std::uint32_t crc_accum = 0;
  std::vector<std::uint32_t> crc_window;  // payload words since last CRC check

  for (const bs::ConfigOp& op : ops) {
    if (std::holds_alternative<bs::OpSync>(op) ||
        std::holds_alternative<bs::OpNoop>(op)) {
      continue;
    }
    if (const auto* id = std::get_if<bs::OpWriteIdcode>(&op)) {
      if (id->idcode != idcode_) {
        return R::error("ICAP: IDCODE mismatch (bitstream for another device)");
      }
      continue;
    }
    if (const auto* far = std::get_if<bs::OpWriteFar>(&op)) {
      if (!memory_->device().geometry().valid(far->address)) {
        return R::error("ICAP: invalid FAR " + far->address.to_string());
      }
      far_index_ = memory_->device().geometry().linear_index(far->address);
      continue;
    }
    if (const auto* cmd = std::get_if<bs::OpCmd>(&op)) {
      switch (cmd->op) {
        case bs::CmdOp::kWcfg: wcfg_ = true; rcfg_ = false; break;
        case bs::CmdOp::kRcfg: rcfg_ = true; wcfg_ = false; break;
        case bs::CmdOp::kDesync: wcfg_ = rcfg_ = false; break;
        case bs::CmdOp::kNull: break;
      }
      continue;
    }
    if (const auto* wr = std::get_if<bs::OpWriteFrames>(&op)) {
      if (!wcfg_) return R::error("ICAP: FDRI write without WCFG");
      if (wr->words.size() % wpf != 0) {
        return R::error("ICAP: FDRI payload not frame aligned (" +
                        std::to_string(wr->words.size()) + " words)");
      }
      const auto frames = static_cast<std::uint32_t>(wr->words.size() / wpf);
      if (far_index_ + frames > total) {
        return R::error("ICAP: write past end of configuration memory");
      }
      for (std::uint32_t f = 0; f < frames; ++f) {
        bs::Frame frame(std::vector<std::uint32_t>(
            wr->words.begin() + static_cast<std::ptrdiff_t>(f) * wpf,
            wr->words.begin() + static_cast<std::ptrdiff_t>(f + 1) * wpf));
        memory_->write_frame(far_index_ + f, frame);
      }
      crc_window.insert(crc_window.end(), wr->words.begin(), wr->words.end());
      far_index_ += frames;
      stats_.frames_written += frames;
      static obs::Counter& written = obs::MetricsRegistry::global().counter(
          "sacha.prover.icap_frames_written");
      written.add(frames);
      stats_.cycles +=
          static_cast<std::uint64_t>(timing_.write_extra_per_word) * wr->words.size() +
          static_cast<std::uint64_t>(timing_.frame_commit_cycles) * frames;
      continue;
    }
    if (const auto* rd = std::get_if<bs::OpReadRequest>(&op)) {
      if (!rcfg_) return R::error("ICAP: FDRO read without RCFG");
      if (rd->word_count % wpf != 0) {
        return R::error("ICAP: FDRO request not frame aligned");
      }
      const std::uint32_t frames = rd->word_count / wpf;
      if (far_index_ + frames > total) {
        return R::error("ICAP: read past end of configuration memory");
      }
      for (std::uint32_t f = 0; f < frames; ++f) {
        memory_->readback_into(far_index_ + f, output);
      }
      far_index_ += frames;
      stats_.frames_read += frames;
      static obs::Counter& read = obs::MetricsRegistry::global().counter(
          "sacha.prover.icap_frames_read");
      read.add(frames);
      // Each read request pays the pipeline-flush penalty; the port then
      // shifts out one pad frame plus the requested words, one cycle each.
      stats_.cycles +=
          timing_.readback_flush_cycles +
          static_cast<std::uint64_t>(timing_.port_cycles_per_word) *
              (rd->word_count + wpf);
      continue;
    }
    if (const auto* crc = std::get_if<bs::OpCrc>(&op)) {
      crc_accum = bs::stream_crc(crc_window);
      if (crc->value != crc_accum) {
        return R::error("ICAP: CRC mismatch");
      }
      crc_window.clear();
      continue;
    }
  }
  return output;
}

}  // namespace sacha::config
