// Configuration memory with live register-state readback.
//
// The memory stores, per frame, the *written configuration bits* and a
// separate layer of *runtime register values*. Which bits of a frame are
// register (flip-flop state) bits is architectural — fixed positions per
// frame in the silicon — so both layers share the device's architectural
// mask. Reading a frame back returns configuration bits merged with the
// current register values, exactly the effect that forces the paper's
// verifier to apply Msk before comparing (§6.1).
#pragma once

#include <cstdint>
#include <vector>

#include "bitstream/frame.hpp"
#include "common/rng.hpp"
#include "fabric/device.hpp"

namespace sacha::config {

class ConfigMemory {
 public:
  explicit ConfigMemory(const fabric::DeviceModel& device);

  const fabric::DeviceModel& device() const { return device_; }
  std::uint32_t total_frames() const { return device_.total_frames(); }
  std::uint32_t words_per_frame() const {
    return device_.geometry().words_per_frame();
  }

  /// Overwrites a frame's configuration bits. Register state at that frame
  /// resets to the written values (FF INIT semantics).
  void write_frame(std::uint32_t index, const bitstream::Frame& frame);

  /// Updates configuration bits without re-initialising the register layer:
  /// direct corruption of the configuration SRAM (an SEU strike, or an
  /// adversary flipping bits under a running design).
  void write_frame_preserving_registers(std::uint32_t index,
                                        const bitstream::Frame& frame);

  /// The stored configuration bits (what a mask-compare is made against).
  const bitstream::Frame& config_frame(std::uint32_t index) const;

  /// What the ICAP sees: configuration bits with register positions
  /// replaced by live values.
  bitstream::Frame readback_frame(std::uint32_t index) const;

  /// Appends the readback view of a frame directly to `out` — the streaming
  /// form used by Icap::execute so a full-memory readback does not build a
  /// temporary Frame per frame.
  void readback_into(std::uint32_t index, std::vector<std::uint32_t>& out) const;

  const bitstream::FrameMask& mask(std::uint32_t index) const;

  /// Simulates the running application: each register bit flips with
  /// probability `flip_probability`. This is what makes raw readback differ
  /// from the golden bitstream.
  void tick_registers(Rng& rng, double flip_probability);

  /// Direct register-layer access for deterministic tests.
  void set_register_bit(std::uint32_t frame_index, std::uint32_t bit, bool value);

 private:
  fabric::DeviceModel device_;
  std::vector<bitstream::Frame> config_;
  std::vector<bitstream::Frame> registers_;  // live values at mask-0 positions
  std::vector<bitstream::FrameMask> masks_;
  // Flattened register-bit positions per frame, so tick_registers only
  // visits physical flip-flops instead of every frame bit.
  std::vector<std::vector<std::uint32_t>> register_positions_;
};

}  // namespace sacha::config
