#include "config/bram_buffer.hpp"

namespace sacha::config {

bool BramBuffer::store(const std::string& key, Bytes data) {
  std::uint64_t replaced = 0;
  if (auto it = entries_.find(key); it != entries_.end()) {
    replaced = it->second.size();
  }
  if (used_ - replaced + data.size() > capacity_) return false;
  used_ = used_ - replaced + data.size();
  entries_[key] = std::move(data);
  return true;
}

std::optional<Bytes> BramBuffer::load(const std::string& key) const {
  if (auto it = entries_.find(key); it != entries_.end()) return it->second;
  return std::nullopt;
}

bool BramBuffer::erase(const std::string& key) {
  if (auto it = entries_.find(key); it != entries_.end()) {
    used_ -= it->second.size();
    entries_.erase(it);
    return true;
  }
  return false;
}

void BramBuffer::clear() {
  entries_.clear();
  used_ = 0;
}

}  // namespace sacha::config
