// Internal Configuration Access Port model.
//
// The ICAP is a 32-bit port into the configuration memory, driven at
// 100 MHz in the paper's proof of concept. It consumes the same packet
// language as the external configuration interface; our model executes a
// parsed command stream against a ConfigMemory and accounts cycles with a
// cost model calibrated to Table 3:
//   - every stream word occupies the port for one cycle,
//   - frame-data words cost one extra write-pipeline cycle,
//   - committing a written frame costs kFrameCommit cycles,
//   - each readback request pays a pipeline-flush + pad-frame penalty.
// With the defaults, configuring one 81-word frame costs 183 cycles
// (1.83 us, paper: 1.834 us) and reading one back costs 2,404 cycles
// (24.04 us, paper: 24.044 us).
#pragma once

#include <cstdint>
#include <span>

#include "common/result.hpp"
#include "config/config_memory.hpp"

namespace sacha::config {

struct IcapTiming {
  std::uint32_t port_cycles_per_word = 1;   // any stream/output word
  std::uint32_t write_extra_per_word = 1;   // additional cost of FDRI data
  std::uint32_t frame_commit_cycles = 11;   // per frame written
  std::uint32_t readback_flush_cycles = 2'232;  // per read request (incl. pad)
};

struct IcapStats {
  std::uint64_t frames_written = 0;
  std::uint64_t frames_read = 0;
  std::uint64_t cycles = 0;
  std::uint64_t command_streams = 0;

  bool operator==(const IcapStats&) const = default;
};

class Icap {
 public:
  Icap(ConfigMemory& memory, std::uint32_t idcode, IcapTiming timing = {});

  /// Executes one raw command stream (sync ... desync). Returns the words
  /// produced by read requests (empty for pure configuration streams).
  /// Partial effects before an error are kept, as in hardware.
  Result<std::vector<std::uint32_t>> execute(
      std::span<const std::uint32_t> words);

  const IcapStats& stats() const { return stats_; }
  void reset_stats() { stats_ = IcapStats{}; }

  const IcapTiming& timing() const { return timing_; }
  ConfigMemory& memory() { return *memory_; }

  /// Re-points the port at a relocated configuration memory. Owners with
  /// move semantics (SachaProver) call this after moving the memory.
  void rebind(ConfigMemory& memory) { memory_ = &memory; }

 private:
  ConfigMemory* memory_;
  std::uint32_t idcode_;
  IcapTiming timing_;
  IcapStats stats_;

  // Configuration-logic state, persistent across streams like the silicon.
  std::uint32_t far_index_ = 0;
  bool wcfg_ = false;
  bool rcfg_ = false;
};

/// IDCODE for a modelled device (the real value for the XC6VLX240T, a
/// name-hash for synthetic test devices).
std::uint32_t device_idcode(const fabric::DeviceModel& device);

}  // namespace sacha::config
