// Single-Event Upsets and configuration scrubbing.
//
// §2.1.3 motivates configuration readback with the space-application use
// case: radiation flips bits in the configuration memory, and readback
// enables detection and correction. This module provides both halves:
// SeuInjector models the fault process (uniform random bit flips across
// the configuration layer), and Scrubber is the classic golden-image
// readback scrubber — scan frames through the ICAP, masked-compare against
// golden, rewrite corrupted frames. The attestation tests reuse the
// injector to show that SACHa flags an upset device exactly like a
// tampered one (the protocol cannot and should not distinguish fault from
// malice).
#pragma once

#include <functional>
#include <vector>

#include "common/rng.hpp"
#include "config/icap.hpp"
#include "fabric/partition.hpp"

namespace sacha::config {

/// Location of an injected or detected upset.
struct BitLocation {
  std::uint32_t frame = 0;
  std::uint32_t bit = 0;
  bool operator==(const BitLocation&) const = default;
};

class SeuInjector {
 public:
  explicit SeuInjector(std::uint64_t seed) : rng_(seed) {}

  /// Flips `count` uniformly random configuration bits (duplicates
  /// possible, like real strikes). Returns the hit locations.
  std::vector<BitLocation> inject(ConfigMemory& memory, std::uint32_t count);

  /// Flips `count` bits restricted to configuration (mask-1) positions —
  /// upsets guaranteed to be architecturally visible to readback compare.
  std::vector<BitLocation> inject_config_bits(ConfigMemory& memory,
                                              std::uint32_t count);

 private:
  Rng rng_;
};

/// Provides the golden frame for an index (the scrubber's reference).
using GoldenProvider = std::function<const bitstream::Frame&(std::uint32_t)>;

struct ScrubReport {
  std::uint32_t frames_scanned = 0;
  std::uint32_t frames_corrupted = 0;  // masked mismatch found
  std::uint32_t frames_repaired = 0;   // rewritten with golden content
  std::vector<std::uint32_t> corrupted_frames;
  std::uint64_t icap_cycles = 0;  // cost of the pass
};

class Scrubber {
 public:
  /// `repair`: rewrite corrupted frames (detection-only when false).
  Scrubber(Icap& icap, GoldenProvider golden, bool repair = true);

  /// One scrub pass over a frame range.
  ScrubReport scrub(fabric::FrameRange range);

 private:
  Icap& icap_;
  GoldenProvider golden_;
  bool repair_;
};

}  // namespace sacha::config
