// Discrete-event simulation core.
//
// A classic calendar queue: events are (time, callback) pairs; run() pops
// them in time order (FIFO among equal times) and advances the simulated
// clock. The attestation session itself is strictly sequential, but the
// event queue carries anything concurrent — channel deliveries with jitter,
// background register churn, interleaved baseline runs.
#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

#include "sim/time.hpp"

namespace sacha::sim {

class EventQueue {
 public:
  SimTime now() const { return now_; }

  /// Schedules `fn` at now() + delay.
  void schedule(SimDuration delay, std::function<void()> fn);

  /// Schedules at an absolute time (must be >= now()).
  void schedule_at(SimTime when, std::function<void()> fn);

  /// Runs until the queue is empty. Returns the number of events processed.
  std::size_t run();

  /// Runs until the queue is empty or the clock passes `deadline`.
  std::size_t run_until(SimTime deadline);

  bool empty() const { return events_.empty(); }
  std::size_t pending() const { return events_.size(); }

  /// Advances the clock with no event (sequential-section bookkeeping).
  void advance(SimDuration delta) { now_ += delta; }

 private:
  struct Event {
    SimTime when;
    std::uint64_t seq;  // tie-break: FIFO among simultaneous events
    std::function<void()> fn;
  };
  struct Later {
    bool operator()(const Event& a, const Event& b) const {
      if (a.when != b.when) return a.when > b.when;
      return a.seq > b.seq;
    }
  };

  std::priority_queue<Event, std::vector<Event>, Later> events_;
  SimTime now_ = 0;
  std::uint64_t next_seq_ = 0;
};

}  // namespace sacha::sim
