// Per-action time ledger.
//
// Table 3 reports the duration of each low-level action (A1-A10); Table 4
// reports how often each runs and the summed time. The ledger accumulates
// (count, total duration) per named action during a session so the bench
// binaries can print both tables directly from a run.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "sim/time.hpp"

namespace sacha::sim {

class TimeLedger {
 public:
  void add(const std::string& action, SimDuration duration);

  std::uint64_t count(const std::string& action) const;
  SimDuration total(const std::string& action) const;
  /// Total / count; 0 if the action never ran.
  SimDuration average(const std::string& action) const;

  /// Sum over all actions.
  SimDuration grand_total() const;

  /// Action names in insertion order.
  const std::vector<std::string>& actions() const { return order_; }

  void clear();

 private:
  struct Entry {
    std::uint64_t count = 0;
    SimDuration total = 0;
  };
  std::map<std::string, Entry> entries_;
  std::vector<std::string> order_;
};

}  // namespace sacha::sim
