// Depth-bounded FIFO model.
//
// The StatPart pipeline (Fig. 10) moves data between clock domains through
// BRAM FIFOs (readback FIFO, header FIFO). This template models a bounded
// FIFO with occupancy tracking; the high-water mark feeds the design checks
// that size the BRAM allocation in the floorplan.
#pragma once

#include <cstddef>
#include <deque>
#include <optional>

namespace sacha::sim {

template <typename T>
class Fifo {
 public:
  explicit Fifo(std::size_t depth) : depth_(depth) {}

  std::size_t depth() const { return depth_; }
  std::size_t size() const { return items_.size(); }
  bool empty() const { return items_.empty(); }
  bool full() const { return items_.size() >= depth_; }
  std::size_t high_water() const { return high_water_; }
  std::size_t overflows() const { return overflows_; }

  /// False (and counts an overflow) when full.
  bool push(T item) {
    if (full()) {
      ++overflows_;
      return false;
    }
    items_.push_back(std::move(item));
    if (items_.size() > high_water_) high_water_ = items_.size();
    return true;
  }

  std::optional<T> pop() {
    if (items_.empty()) return std::nullopt;
    T item = std::move(items_.front());
    items_.pop_front();
    return item;
  }

  void clear() { items_.clear(); }

 private:
  std::size_t depth_;
  std::deque<T> items_;
  std::size_t high_water_ = 0;
  std::size_t overflows_ = 0;
};

}  // namespace sacha::sim
