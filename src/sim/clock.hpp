// Clock domains.
//
// The static partition runs three domains (paper §6.2): RX at 125 MHz
// (recovered from the incoming network packets), ICAP at 100 MHz and TX at
// 125 MHz (both derived from the 200 MHz board clock by the DCM). A
// ClockDomain converts cycle counts to simulated time; periods must divide
// to whole nanoseconds, which every frequency used here does.
#pragma once

#include <cstdint>
#include <string>

#include "sim/time.hpp"

namespace sacha::sim {

class ClockDomain {
 public:
  /// `freq_mhz` must divide 1000 (integer-ns period).
  ClockDomain(std::string name, std::uint32_t freq_mhz);

  const std::string& name() const { return name_; }
  std::uint32_t freq_mhz() const { return freq_mhz_; }
  SimDuration period() const { return period_ns_; }

  SimDuration cycles_to_time(std::uint64_t cycles) const {
    return cycles * period_ns_;
  }
  /// Cycles elapsed within `time`, rounded up (a partially elapsed cycle
  /// still occupies the domain).
  std::uint64_t time_to_cycles(SimDuration time) const {
    return (time + period_ns_ - 1) / period_ns_;
  }

 private:
  std::string name_;
  std::uint32_t freq_mhz_;
  SimDuration period_ns_;
};

/// The three domains of the proof-of-concept StatPart.
ClockDomain rx_domain();    // 125 MHz
ClockDomain icap_domain();  // 100 MHz
ClockDomain tx_domain();    // 125 MHz

}  // namespace sacha::sim
