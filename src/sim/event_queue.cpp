#include "sim/event_queue.hpp"

#include <cassert>

namespace sacha::sim {

void EventQueue::schedule(SimDuration delay, std::function<void()> fn) {
  schedule_at(now_ + delay, std::move(fn));
}

void EventQueue::schedule_at(SimTime when, std::function<void()> fn) {
  assert(when >= now_);
  events_.push(Event{when, next_seq_++, std::move(fn)});
}

std::size_t EventQueue::run() { return run_until(~SimTime{0}); }

std::size_t EventQueue::run_until(SimTime deadline) {
  std::size_t processed = 0;
  while (!events_.empty() && events_.top().when <= deadline) {
    // priority_queue::top() is const; move out via const_cast is UB-adjacent,
    // so copy the function object instead (events are small).
    Event event = events_.top();
    events_.pop();
    now_ = event.when;
    ++processed;
    event.fn();
  }
  // A bounded run leaves the clock at the deadline even when later events
  // remain pending: simulated time has observably passed.
  if (deadline != ~SimTime{0} && now_ < deadline) now_ = deadline;
  return processed;
}

}  // namespace sacha::sim
