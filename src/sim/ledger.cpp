#include "sim/ledger.hpp"

namespace sacha::sim {

void TimeLedger::add(const std::string& action, SimDuration duration) {
  auto [it, inserted] = entries_.try_emplace(action);
  if (inserted) order_.push_back(action);
  ++it->second.count;
  it->second.total += duration;
}

std::uint64_t TimeLedger::count(const std::string& action) const {
  auto it = entries_.find(action);
  return it == entries_.end() ? 0 : it->second.count;
}

SimDuration TimeLedger::total(const std::string& action) const {
  auto it = entries_.find(action);
  return it == entries_.end() ? 0 : it->second.total;
}

SimDuration TimeLedger::average(const std::string& action) const {
  auto it = entries_.find(action);
  if (it == entries_.end() || it->second.count == 0) return 0;
  return it->second.total / it->second.count;
}

SimDuration TimeLedger::grand_total() const {
  SimDuration sum = 0;
  for (const auto& [name, entry] : entries_) sum += entry.total;
  return sum;
}

void TimeLedger::clear() {
  entries_.clear();
  order_.clear();
}

}  // namespace sacha::sim
