#include "sim/clock.hpp"

#include <cassert>
#include <utility>

namespace sacha::sim {

ClockDomain::ClockDomain(std::string name, std::uint32_t freq_mhz)
    : name_(std::move(name)), freq_mhz_(freq_mhz) {
  assert(freq_mhz > 0 && 1000 % freq_mhz == 0 &&
         "clock period must be an integer number of nanoseconds");
  period_ns_ = 1000 / freq_mhz;
}

ClockDomain rx_domain() { return ClockDomain("rx", 125); }
ClockDomain icap_domain() { return ClockDomain("icap", 100); }
ClockDomain tx_domain() { return ClockDomain("tx", 125); }

}  // namespace sacha::sim
