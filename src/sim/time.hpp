// Simulated time.
//
// All simulation time is in integer nanoseconds. The clocks in the paper's
// design (125 MHz Ethernet RX/TX, 100 MHz ICAP, 200 MHz board clock) all
// have integer-nanosecond periods, so cycle arithmetic is exact.
#pragma once

#include <cstdint>

namespace sacha::sim {

using SimTime = std::uint64_t;      // absolute, ns
using SimDuration = std::uint64_t;  // relative, ns

inline constexpr SimDuration kMicrosecond = 1'000;
inline constexpr SimDuration kMillisecond = 1'000'000;
inline constexpr SimDuration kSecond = 1'000'000'000;

/// Formats 1234567 -> "1.234567 ms"-style human-readable duration.
inline double to_seconds(SimDuration d) { return static_cast<double>(d) / kSecond; }

}  // namespace sacha::sim
