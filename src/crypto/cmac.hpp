// AES-CMAC (RFC 4493 / NIST SP 800-38B).
//
// This is the checksum the SACHa prover computes over the configuration
// memory. The streaming interface mirrors the hardware: the protocol calls
// init / update(frame) once per readback command / finalize, exactly like
// the MAC-init, MAC-update-step-i and MAC-finalize actions A5/A6/A7 of
// Table 3. update() runs whole 16-byte blocks straight from the input span
// through Aes128::cbc_mac_absorb — only a trailing partial (or the final
// full) block is staged in the internal buffer, so the frame stream is
// MACed at the selected AES tier's full throughput.
#pragma once

#include <optional>

#include "crypto/aes.hpp"

namespace sacha::crypto {

using Mac = AesBlock;  // 128-bit tag

/// Streaming AES-CMAC. Usage: construct (or reset()), update() any number of
/// times with arbitrary-length chunks, finalize() once.
class Cmac {
 public:
  explicit Cmac(const AesKey& key, AesImpl impl = AesImpl::kAuto);

  /// Restarts the computation under the same key.
  void reset();

  void update(ByteSpan data);

  /// Word-span fast path: absorbs 32-bit words in big-endian order (the wire
  /// and MAC byte order everywhere in SACHa) without materialising a byte
  /// vector. Words are serialised through a small stack staging area in
  /// 16-byte-aligned chunks, so readback frames stream into the MAC with no
  /// per-frame heap allocation. Used by the prover's MacEngine and the
  /// streaming verifier.
  void update(std::span<const std::uint32_t> words);

  /// Completes the tag; the object must be reset() before reuse.
  Mac finalize();

  /// One-shot convenience.
  static Mac compute(const AesKey& key, ByteSpan data);

  /// The AES tier doing the work.
  AesImpl impl() const { return aes_.impl(); }

 private:
  Aes128 aes_;
  AesBlock subkey1_{};
  AesBlock subkey2_{};
  AesBlock state_{};   // running CBC value
  AesBlock buffer_{};  // pending partial (or final full) block
  std::size_t buffered_ = 0;
  bool any_input_ = false;
  bool finalized_ = false;
};

}  // namespace sacha::crypto
