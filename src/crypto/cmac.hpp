// AES-CMAC (RFC 4493 / NIST SP 800-38B).
//
// This is the checksum the SACHa prover computes over the configuration
// memory. The streaming interface mirrors the hardware: the protocol calls
// init / update(frame) once per readback command / finalize, exactly like
// the MAC-init, MAC-update-step-i and MAC-finalize actions A5/A6/A7 of
// Table 3. update() runs whole 16-byte blocks straight from the input span
// through Aes128::cbc_mac_absorb — only a trailing partial (or the final
// full) block is staged in the internal buffer, so the frame stream is
// MACed at the selected AES tier's full throughput.
#pragma once

#include <optional>
#include <vector>

#include "crypto/aes.hpp"

namespace sacha::crypto {

using Mac = AesBlock;  // 128-bit tag

/// Streaming AES-CMAC. Usage: construct (or reset()), update() any number of
/// times with arbitrary-length chunks, finalize() once.
class Cmac {
 public:
  explicit Cmac(const AesKey& key, AesImpl impl = AesImpl::kAuto);

  /// Restarts the computation under the same key.
  void reset();

  void update(ByteSpan data);

  /// Word-span fast path: absorbs 32-bit words in big-endian order (the wire
  /// and MAC byte order everywhere in SACHa) without materialising a byte
  /// vector. Words are serialised through a small stack staging area in
  /// 16-byte-aligned chunks, so readback frames stream into the MAC with no
  /// per-frame heap allocation. Used by the prover's MacEngine and the
  /// streaming verifier.
  void update(std::span<const std::uint32_t> words);

  /// Completes the tag; the object must be reset() before reuse.
  Mac finalize();

  /// One-shot convenience.
  static Mac compute(const AesKey& key, ByteSpan data);

  /// The AES tier doing the work.
  AesImpl impl() const { return aes_.impl(); }

 private:
  friend class CmacBatch;

  /// Serialises one word big-endian into the staging buffer.
  void stage_word(std::uint32_t w);

  /// Batch-absorb split of update(words): performs the staging-buffer work
  /// immediately (drain plus tail staging, both cheap and per-stream) and
  /// returns the bulk whole-block run as a CbcMacStream lane for the caller
  /// to absorb through Aes128::cbc_mac_absorb_words_multi. The stream is
  /// bit-identical to having called update(words) once the returned lane
  /// has been absorbed; a lane with nblocks == 0 needs no further work.
  CbcMacStream split_update(std::span<const std::uint32_t> words);

  Aes128 aes_;
  AesBlock subkey1_{};
  AesBlock subkey2_{};
  AesBlock state_{};   // running CBC value
  AesBlock buffer_{};  // pending partial (or final full) block
  std::size_t buffered_ = 0;
  bool any_input_ = false;
  bool finalized_ = false;
};

/// Interleaved absorber for several independent CMAC streams (one per
/// attestation session in the fleet engine's verify lanes). add() queues
/// word chunks against their stream; flush() folds everything queued,
/// routing the bulk whole-block runs of up to `width` distinct streams at a
/// time through Aes128::cbc_mac_absorb_words_multi so AES-NI lanes hide
/// each other's round latency. After flush() every touched stream's state
/// is bit-identical to having called stream.update(chunk) for each chunk in
/// add() order — batch width, flush timing, and tier mix never change a
/// MAC. A stream must not be finalized while it has queued words.
class CmacBatch {
 public:
  /// `width` is the maximum number of streams interleaved per absorb call,
  /// clamped to [1, 8] (the kernel's lane budget).
  explicit CmacBatch(std::size_t width = 4);

  /// Queues `words` to fold into `stream` at the next flush(). The vector's
  /// storage moves into the batch, so the producer can hand off a response
  /// payload without keeping it alive until the flush.
  void add(Cmac& stream, std::vector<std::uint32_t>&& words);

  /// Absorbs every queued chunk and empties the batch. Fewer pending
  /// streams than `width` interleave at whatever occupancy is available.
  void flush();

  std::size_t width() const { return width_; }
  /// Streams with queued words right now.
  std::size_t pending_streams() const { return lanes_.size(); }

  /// Occupancy accounting since construction: interleaved absorb calls and
  /// the total lanes they carried (streams ÷ calls = average occupancy).
  std::uint64_t absorb_calls() const { return absorb_calls_; }
  std::uint64_t absorbed_streams() const { return absorbed_streams_; }

 private:
  struct Lane {
    Cmac* stream = nullptr;
    std::vector<std::uint32_t> words;
  };

  std::size_t width_;
  std::vector<Lane> lanes_;
  std::uint64_t absorb_calls_ = 0;
  std::uint64_t absorbed_streams_ = 0;
};

}  // namespace sacha::crypto
