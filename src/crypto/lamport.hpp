// Lamport one-time signatures over SHA-256.
//
// Building block for the paper's second future-work item (§8): "add a
// signature mechanism to the system when it is not possible to exchange a
// secret key between the prover and the verifier before deployment".
// Hash-based signatures fit the SACHa setting well — the only primitive
// they need is the hash core the static partition already contains, and
// the security reduction is to preimage resistance, with no number-theoretic
// hardware. A secret key is 2x256 32-byte preimages (deterministically
// derived from a seed); signing a 256-bit digest reveals one preimage per
// bit. Strictly one-time: Merkle aggregation (merkle.hpp) turns many OTS
// leaves into one long-lived public key.
#pragma once

#include <array>
#include <vector>

#include "crypto/prg.hpp"
#include "crypto/sha256.hpp"

namespace sacha::crypto {

inline constexpr std::size_t kLamportChains = 2 * 256;

struct LamportSecretKey {
  // preimages[b][i] signs bit i with value b (flattened: [b*256 + i]).
  std::vector<std::array<std::uint8_t, 32>> preimages;  // kLamportChains entries
};

struct LamportPublicKey {
  std::vector<Sha256Digest> hashes;  // kLamportChains entries

  /// Compact commitment to the whole public key (the Merkle leaf value).
  Sha256Digest fingerprint() const;

  bool operator==(const LamportPublicKey&) const = default;
};

struct LamportSignature {
  std::vector<std::array<std::uint8_t, 32>> revealed;  // 256 preimages

  bool operator==(const LamportSignature&) const = default;
};

/// Deterministic keypair from (seed, leaf index).
LamportSecretKey lamport_keygen(std::uint64_t seed, std::uint32_t leaf_index);
LamportPublicKey lamport_public(const LamportSecretKey& sk);

/// Signs a 256-bit digest. The caller must never sign twice with one key.
LamportSignature lamport_sign(const LamportSecretKey& sk,
                              const Sha256Digest& digest);

bool lamport_verify(const LamportPublicKey& pk, const Sha256Digest& digest,
                    const LamportSignature& signature);

}  // namespace sacha::crypto
