// AES-NI tier of the Aes128 engine.
//
// Compiled as a separate translation unit with -maes so the rest of the
// library stays free of ISA-specific codegen; the dispatcher in aes.cpp
// only routes here after __builtin_cpu_supports("aes") says the
// instructions exist. The expanded key arrives in FIPS-197 byte order,
// which is exactly the layout AESENC consumes, so the round keys are
// plain unaligned loads.
#include "crypto/aes.hpp"

#if defined(SACHA_HAVE_AESNI)
#include <tmmintrin.h>  // PSHUFB (SSSE3) for the word-stream byte swap
#include <wmmintrin.h>
#endif
#if defined(SACHA_HAVE_VAES)
#include <immintrin.h>  // VAESENC on 256-bit registers (VAES + AVX2)
#endif

#include <algorithm>
#include <cassert>

namespace sacha::crypto::detail {

#if defined(SACHA_HAVE_AESNI)

namespace {

struct RoundKeys {
  __m128i k[11];
};

inline RoundKeys load_keys(const std::uint8_t* round_keys) {
  RoundKeys rk;
  for (int i = 0; i < 11; ++i) {
    rk.k[i] = _mm_loadu_si128(
        reinterpret_cast<const __m128i*>(round_keys + 16 * i));
  }
  return rk;
}

inline __m128i encrypt(const RoundKeys& rk, __m128i b) {
  b = _mm_xor_si128(b, rk.k[0]);
  for (int r = 1; r <= 9; ++r) b = _mm_aesenc_si128(b, rk.k[r]);
  return _mm_aesenclast_si128(b, rk.k[10]);
}

}  // namespace

void aesni_encrypt_block(const std::uint8_t* round_keys, std::uint8_t* block) {
  const RoundKeys rk = load_keys(round_keys);
  const __m128i in = _mm_loadu_si128(reinterpret_cast<const __m128i*>(block));
  _mm_storeu_si128(reinterpret_cast<__m128i*>(block), encrypt(rk, in));
}

void aesni_cbc_mac(const std::uint8_t* round_keys, std::uint8_t* state,
                   const std::uint8_t* data, std::size_t nblocks) {
  const RoundKeys rk = load_keys(round_keys);
  __m128i s = _mm_loadu_si128(reinterpret_cast<const __m128i*>(state));
  for (std::size_t b = 0; b < nblocks; ++b, data += 16) {
    const __m128i m = _mm_loadu_si128(reinterpret_cast<const __m128i*>(data));
    s = encrypt(rk, _mm_xor_si128(s, m));
  }
  _mm_storeu_si128(reinterpret_cast<__m128i*>(state), s);
}

void aesni_cbc_mac_words(const std::uint8_t* round_keys, std::uint8_t* state,
                         const std::uint32_t* words, std::size_t nblocks) {
  const RoundKeys rk = load_keys(round_keys);
  // Per-word byte swap: the block is the big-endian serialization of four
  // little-endian host words. PSHUFB executes off the AESENC dependency
  // chain, so the swap is free relative to the serial round latency.
  const __m128i bswap =
      _mm_set_epi8(12, 13, 14, 15, 8, 9, 10, 11, 4, 5, 6, 7, 0, 1, 2, 3);
  __m128i s = _mm_loadu_si128(reinterpret_cast<const __m128i*>(state));
  for (std::size_t b = 0; b < nblocks; ++b, words += 4) {
    __m128i m = _mm_loadu_si128(reinterpret_cast<const __m128i*>(words));
    m = _mm_shuffle_epi8(m, bswap);
    s = encrypt(rk, _mm_xor_si128(s, m));
  }
  _mm_storeu_si128(reinterpret_cast<__m128i*>(state), s);
}

namespace {

inline __m128i load128(const void* p) {
  return _mm_loadu_si128(reinterpret_cast<const __m128i*>(p));
}

// W independent CBC chains advance one block per iteration. Each chain is a
// serial AESENC dependency (~4-cycle latency), but the W chains are
// mutually independent, so the CPU issues their rounds back to back and the
// batch runs at AESENC *throughput* instead of latency. Round-key loads and
// PSHUFB swaps sit off every critical path. Consumes exactly `nblocks`
// blocks from every lane and advances the descriptors.
template <int W>
void absorb_interleaved(AesniMacStream* const* s, std::size_t nblocks) {
  const __m128i bswap =
      _mm_set_epi8(12, 13, 14, 15, 8, 9, 10, 11, 4, 5, 6, 7, 0, 1, 2, 3);
  __m128i st[W];
  const std::uint8_t* rk[W];
  const std::uint32_t* w[W];
  for (int i = 0; i < W; ++i) {
    st[i] = load128(s[i]->state);
    rk[i] = s[i]->round_keys;
    w[i] = s[i]->words;
  }
  for (std::size_t b = 0; b < nblocks; ++b) {
    for (int i = 0; i < W; ++i) {
      __m128i m = _mm_shuffle_epi8(load128(w[i]), bswap);
      w[i] += 4;
      st[i] = _mm_xor_si128(_mm_xor_si128(st[i], m), load128(rk[i]));
    }
    for (int r = 1; r <= 9; ++r) {
      for (int i = 0; i < W; ++i) {
        st[i] = _mm_aesenc_si128(st[i], load128(rk[i] + 16 * r));
      }
    }
    for (int i = 0; i < W; ++i) {
      st[i] = _mm_aesenclast_si128(st[i], load128(rk[i] + 160));
    }
  }
  for (int i = 0; i < W; ++i) {
    _mm_storeu_si128(reinterpret_cast<__m128i*>(s[i]->state), st[i]);
    s[i]->words = w[i];
    s[i]->nblocks -= nblocks;
  }
}

#if defined(SACHA_HAVE_VAES)

// VAES wide lane: two chains ride in one 256-bit register, so a single
// VAESENC performs both streams' rounds and the instruction count of the
// interleave halves. P is the number of lane *pairs*.
template <int P>
void absorb_interleaved_vaes(AesniMacStream* const* s, std::size_t nblocks) {
  const __m256i bswap = _mm256_broadcastsi128_si256(
      _mm_set_epi8(12, 13, 14, 15, 8, 9, 10, 11, 4, 5, 6, 7, 0, 1, 2, 3));
  __m256i st[P];
  const std::uint8_t* rk_lo[P];
  const std::uint8_t* rk_hi[P];
  const std::uint32_t* w_lo[P];
  const std::uint32_t* w_hi[P];
  for (int p = 0; p < P; ++p) {
    st[p] = _mm256_set_m128i(load128(s[2 * p + 1]->state),
                             load128(s[2 * p]->state));
    rk_lo[p] = s[2 * p]->round_keys;
    rk_hi[p] = s[2 * p + 1]->round_keys;
    w_lo[p] = s[2 * p]->words;
    w_hi[p] = s[2 * p + 1]->words;
  }
  for (std::size_t b = 0; b < nblocks; ++b) {
    for (int p = 0; p < P; ++p) {
      const __m256i m = _mm256_shuffle_epi8(
          _mm256_set_m128i(load128(w_hi[p]), load128(w_lo[p])), bswap);
      w_lo[p] += 4;
      w_hi[p] += 4;
      const __m256i k0 =
          _mm256_set_m128i(load128(rk_hi[p]), load128(rk_lo[p]));
      st[p] = _mm256_xor_si256(_mm256_xor_si256(st[p], m), k0);
    }
    for (int r = 1; r <= 9; ++r) {
      for (int p = 0; p < P; ++p) {
        const __m256i k = _mm256_set_m128i(load128(rk_hi[p] + 16 * r),
                                           load128(rk_lo[p] + 16 * r));
        st[p] = _mm256_aesenc_epi128(st[p], k);
      }
    }
    for (int p = 0; p < P; ++p) {
      const __m256i k =
          _mm256_set_m128i(load128(rk_hi[p] + 160), load128(rk_lo[p] + 160));
      st[p] = _mm256_aesenclast_epi128(st[p], k);
    }
  }
  for (int p = 0; p < P; ++p) {
    _mm_storeu_si128(reinterpret_cast<__m128i*>(s[2 * p]->state),
                     _mm256_castsi256_si128(st[p]));
    _mm_storeu_si128(reinterpret_cast<__m128i*>(s[2 * p + 1]->state),
                     _mm256_extracti128_si256(st[p], 1));
    s[2 * p]->words = w_lo[p];
    s[2 * p + 1]->words = w_hi[p];
    s[2 * p]->nblocks -= nblocks;
    s[2 * p + 1]->nblocks -= nblocks;
  }
}

// Runs floor(n/2) pairs through the VAES kernel and a leftover odd lane
// through the scalar interleave. Caller guarantees every lane has at least
// `nblocks` blocks remaining.
void absorb_chunk_vaes(AesniMacStream* const* act, std::size_t n,
                       std::size_t nblocks) {
  const std::size_t pairs = n / 2;
  switch (pairs) {
    case 1: absorb_interleaved_vaes<1>(act, nblocks); break;
    case 2: absorb_interleaved_vaes<2>(act, nblocks); break;
    case 3: absorb_interleaved_vaes<3>(act, nblocks); break;
    case 4: absorb_interleaved_vaes<4>(act, nblocks); break;
    default: assert(false); break;
  }
  if (n % 2 != 0) absorb_interleaved<1>(act + 2 * pairs, nblocks);
}

#endif  // SACHA_HAVE_VAES

void absorb_chunk(AesniMacStream* const* act, std::size_t n,
                  std::size_t nblocks) {
#if defined(SACHA_HAVE_VAES)
  if (n >= 2 && vaes_available()) {
    absorb_chunk_vaes(act, n, nblocks);
    return;
  }
#endif
  switch (n) {
    case 1: absorb_interleaved<1>(act, nblocks); break;
    case 2: absorb_interleaved<2>(act, nblocks); break;
    case 3: absorb_interleaved<3>(act, nblocks); break;
    case 4: absorb_interleaved<4>(act, nblocks); break;
    case 5: absorb_interleaved<5>(act, nblocks); break;
    case 6: absorb_interleaved<6>(act, nblocks); break;
    case 7: absorb_interleaved<7>(act, nblocks); break;
    case 8: absorb_interleaved<8>(act, nblocks); break;
    default: assert(false); break;
  }
}

}  // namespace

void aesni_cbc_mac_words_multi(AesniMacStream* streams, std::size_t n) {
  if (n > 8) {
    // Independent groups of eight; cross-group interleave would exceed the
    // register budget without adding throughput.
    for (std::size_t i = 0; i < n; i += 8) {
      aesni_cbc_mac_words_multi(streams + i, std::min<std::size_t>(8, n - i));
    }
    return;
  }
  AesniMacStream* act[8];
  std::size_t nact = 0;
  for (std::size_t i = 0; i < n; ++i) {
    if (streams[i].nblocks > 0) act[nact++] = &streams[i];
  }
  // Ragged lengths: run the widest interleave the remaining lanes allow for
  // as many blocks as every lane still has, drop exhausted lanes, repeat.
  while (nact > 0) {
    std::size_t chunk = act[0]->nblocks;
    for (std::size_t i = 1; i < nact; ++i) {
      chunk = std::min(chunk, act[i]->nblocks);
    }
    absorb_chunk(act, nact, chunk);
    std::size_t live = 0;
    for (std::size_t i = 0; i < nact; ++i) {
      if (act[i]->nblocks > 0) act[live++] = act[i];
    }
    nact = live;
  }
}

bool vaes_available() {
#if defined(SACHA_HAVE_VAES)
  return __builtin_cpu_supports("vaes") != 0 &&
         __builtin_cpu_supports("avx2") != 0;
#else
  return false;
#endif
}

#else  // !SACHA_HAVE_AESNI

// Link-time stubs for builds without the tier; the dispatcher never routes
// here because aesni_supported() is false.
void aesni_encrypt_block(const std::uint8_t*, std::uint8_t*) {
  assert(false && "AES-NI tier not compiled in");
}

void aesni_cbc_mac(const std::uint8_t*, std::uint8_t*, const std::uint8_t*,
                   std::size_t) {
  assert(false && "AES-NI tier not compiled in");
}

void aesni_cbc_mac_words(const std::uint8_t*, std::uint8_t*,
                         const std::uint32_t*, std::size_t) {
  assert(false && "AES-NI tier not compiled in");
}

void aesni_cbc_mac_words_multi(AesniMacStream*, std::size_t) {
  assert(false && "AES-NI tier not compiled in");
}

bool vaes_available() { return false; }

#endif

}  // namespace sacha::crypto::detail
