// AES-NI tier of the Aes128 engine.
//
// Compiled as a separate translation unit with -maes so the rest of the
// library stays free of ISA-specific codegen; the dispatcher in aes.cpp
// only routes here after __builtin_cpu_supports("aes") says the
// instructions exist. The expanded key arrives in FIPS-197 byte order,
// which is exactly the layout AESENC consumes, so the round keys are
// plain unaligned loads.
#include "crypto/aes.hpp"

#if defined(SACHA_HAVE_AESNI)
#include <tmmintrin.h>  // PSHUFB (SSSE3) for the word-stream byte swap
#include <wmmintrin.h>
#endif

#include <cassert>

namespace sacha::crypto::detail {

#if defined(SACHA_HAVE_AESNI)

namespace {

struct RoundKeys {
  __m128i k[11];
};

inline RoundKeys load_keys(const std::uint8_t* round_keys) {
  RoundKeys rk;
  for (int i = 0; i < 11; ++i) {
    rk.k[i] = _mm_loadu_si128(
        reinterpret_cast<const __m128i*>(round_keys + 16 * i));
  }
  return rk;
}

inline __m128i encrypt(const RoundKeys& rk, __m128i b) {
  b = _mm_xor_si128(b, rk.k[0]);
  for (int r = 1; r <= 9; ++r) b = _mm_aesenc_si128(b, rk.k[r]);
  return _mm_aesenclast_si128(b, rk.k[10]);
}

}  // namespace

void aesni_encrypt_block(const std::uint8_t* round_keys, std::uint8_t* block) {
  const RoundKeys rk = load_keys(round_keys);
  const __m128i in = _mm_loadu_si128(reinterpret_cast<const __m128i*>(block));
  _mm_storeu_si128(reinterpret_cast<__m128i*>(block), encrypt(rk, in));
}

void aesni_cbc_mac(const std::uint8_t* round_keys, std::uint8_t* state,
                   const std::uint8_t* data, std::size_t nblocks) {
  const RoundKeys rk = load_keys(round_keys);
  __m128i s = _mm_loadu_si128(reinterpret_cast<const __m128i*>(state));
  for (std::size_t b = 0; b < nblocks; ++b, data += 16) {
    const __m128i m = _mm_loadu_si128(reinterpret_cast<const __m128i*>(data));
    s = encrypt(rk, _mm_xor_si128(s, m));
  }
  _mm_storeu_si128(reinterpret_cast<__m128i*>(state), s);
}

void aesni_cbc_mac_words(const std::uint8_t* round_keys, std::uint8_t* state,
                         const std::uint32_t* words, std::size_t nblocks) {
  const RoundKeys rk = load_keys(round_keys);
  // Per-word byte swap: the block is the big-endian serialization of four
  // little-endian host words. PSHUFB executes off the AESENC dependency
  // chain, so the swap is free relative to the serial round latency.
  const __m128i bswap =
      _mm_set_epi8(12, 13, 14, 15, 8, 9, 10, 11, 4, 5, 6, 7, 0, 1, 2, 3);
  __m128i s = _mm_loadu_si128(reinterpret_cast<const __m128i*>(state));
  for (std::size_t b = 0; b < nblocks; ++b, words += 4) {
    __m128i m = _mm_loadu_si128(reinterpret_cast<const __m128i*>(words));
    m = _mm_shuffle_epi8(m, bswap);
    s = encrypt(rk, _mm_xor_si128(s, m));
  }
  _mm_storeu_si128(reinterpret_cast<__m128i*>(state), s);
}

#else  // !SACHA_HAVE_AESNI

// Link-time stubs for builds without the tier; the dispatcher never routes
// here because aesni_supported() is false.
void aesni_encrypt_block(const std::uint8_t*, std::uint8_t*) {
  assert(false && "AES-NI tier not compiled in");
}

void aesni_cbc_mac(const std::uint8_t*, std::uint8_t*, const std::uint8_t*,
                   std::size_t) {
  assert(false && "AES-NI tier not compiled in");
}

void aesni_cbc_mac_words(const std::uint8_t*, std::uint8_t*,
                         const std::uint32_t*, std::size_t) {
  assert(false && "AES-NI tier not compiled in");
}

#endif

}  // namespace sacha::crypto::detail
