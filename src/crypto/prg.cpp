#include "crypto/prg.hpp"

#include "crypto/sha256.hpp"

namespace sacha::crypto {

namespace {
Aes128 seed_cipher(std::uint64_t seed, std::string_view label) {
  // Key = first 16 bytes of SHA-256(seed_be || label).
  Bytes material;
  put_u64be(material, seed);
  append(material, bytes_of(label));
  const Sha256Digest digest = Sha256::compute(material);
  AesKey key{};
  for (std::size_t i = 0; i < kAesKeySize; ++i) key[i] = digest[i];
  return Aes128(key);
}
}  // namespace

Prg::Prg(std::uint64_t seed, std::string_view label)
    : aes_(seed_cipher(seed, label)) {}

Bytes Prg::bytes(std::size_t n) {
  Bytes out;
  out.reserve(n);
  while (out.size() < n) {
    if (used_ == kAesBlockSize) {
      block_ = aes_.encrypt(counter_);
      // Increment the counter big-endian.
      for (int i = 15; i >= 0; --i) {
        if (++counter_[static_cast<std::size_t>(i)] != 0) break;
      }
      used_ = 0;
    }
    out.push_back(block_[used_++]);
  }
  return out;
}

std::uint64_t Prg::next_u64() {
  const Bytes b = bytes(8);
  return get_u64be(b, 0);
}

AesKey Prg::key() { return to_aes_key(bytes(kAesKeySize)); }

}  // namespace sacha::crypto
