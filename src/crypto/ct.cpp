#include "crypto/ct.hpp"

namespace sacha::crypto {

bool ct_equal(ByteSpan a, ByteSpan b) {
  if (a.size() != b.size()) return false;
  unsigned diff = 0;
  for (std::size_t i = 0; i < a.size(); ++i) diff |= static_cast<unsigned>(a[i] ^ b[i]);
  return diff == 0;
}

}  // namespace sacha::crypto
