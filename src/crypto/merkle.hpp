// Merkle aggregation of Lamport one-time keys.
//
// A signing identity is a tree of 2^h one-time keys; the root is the
// long-term public key the verifier learns at provisioning (e.g. from the
// device manufacturer). Each signature carries the OTS public key, the leaf
// index, and the authentication path; the verifier recomputes the root.
// Leaf exhaustion and reuse are the caller's responsibility — HashSigner
// tracks both.
#pragma once

#include <optional>
#include <span>

#include "crypto/lamport.hpp"

namespace sacha::crypto {

struct MerkleSignature {
  std::uint32_t leaf_index = 0;
  LamportPublicKey leaf_public;
  LamportSignature ots;
  std::vector<Sha256Digest> auth_path;  // sibling hashes, leaf to root
};

/// Stateful hash-based signer (device side).
class HashSigner {
 public:
  /// 2^height one-time keys, all derived from `seed`.
  HashSigner(std::uint64_t seed, std::uint32_t height);

  const Sha256Digest& root() const { return root_; }
  std::uint32_t capacity() const { return 1u << height_; }
  std::uint32_t used() const { return next_leaf_; }
  std::uint32_t remaining() const { return capacity() - next_leaf_; }

  /// Signs with the next unused leaf; nullopt when exhausted.
  std::optional<MerkleSignature> sign(const Sha256Digest& digest);

 private:
  std::uint64_t seed_;
  std::uint32_t height_;
  std::uint32_t next_leaf_ = 0;
  std::vector<std::vector<Sha256Digest>> levels_;  // levels_[0] = leaves
  Sha256Digest root_{};
};

/// Verifier side: checks the OTS and the path against the trusted root.
bool merkle_verify(const Sha256Digest& root, std::uint32_t tree_height,
                   const Sha256Digest& digest, const MerkleSignature& sig);

/// Plain Merkle root over an ordered list of digests, using the same
/// domain-tagged node combiner as the signing tree. An odd node at any
/// level is promoted unhashed (no duplication, so N leaves cost exactly
/// N-1 combines). Empty input yields the all-zero digest. The shard
/// coordinator folds per-shard audit-chain heads into one host-level root
/// with this; any auditor holding the shard heads can recompute it.
Sha256Digest merkle_root(std::span<const Sha256Digest> leaves);

}  // namespace sacha::crypto
