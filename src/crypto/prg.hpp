// AES-CTR based deterministic pseudo-random generator.
//
// Supplies the cryptographic randomness in the system: verifier nonces,
// provisioned keys, and the pseudo-random fill used by the Choi-style
// memory-filling baseline. Domain separation comes from the personalisation
// string so two PRGs seeded alike but labelled differently diverge.
#pragma once

#include <cstdint>
#include <string_view>

#include "crypto/aes.hpp"

namespace sacha::crypto {

class Prg {
 public:
  /// Seeds from a 64-bit seed plus a domain-separation label.
  Prg(std::uint64_t seed, std::string_view label);

  Bytes bytes(std::size_t n);
  std::uint64_t next_u64();
  AesKey key();  // 16 fresh bytes as an AES key

 private:
  Aes128 aes_;
  AesBlock counter_{};
  AesBlock block_{};
  std::size_t used_ = kAesBlockSize;  // forces refill on first use
};

}  // namespace sacha::crypto
