#include "crypto/lamport.hpp"

#include <cassert>

namespace sacha::crypto {

Sha256Digest LamportPublicKey::fingerprint() const {
  Sha256 hash;
  for (const Sha256Digest& h : hashes) hash.update(h);
  return hash.finalize();
}

LamportSecretKey lamport_keygen(std::uint64_t seed, std::uint32_t leaf_index) {
  LamportSecretKey sk;
  sk.preimages.resize(kLamportChains);
  Prg prg(seed ^ (static_cast<std::uint64_t>(leaf_index) * 0x9e3779b97f4a7c15ULL),
          "lamport-sk");
  for (auto& preimage : sk.preimages) {
    const Bytes bytes = prg.bytes(32);
    std::copy(bytes.begin(), bytes.end(), preimage.begin());
  }
  return sk;
}

LamportPublicKey lamport_public(const LamportSecretKey& sk) {
  assert(sk.preimages.size() == kLamportChains);
  LamportPublicKey pk;
  pk.hashes.reserve(kLamportChains);
  for (const auto& preimage : sk.preimages) {
    pk.hashes.push_back(Sha256::compute(preimage));
  }
  return pk;
}

LamportSignature lamport_sign(const LamportSecretKey& sk,
                              const Sha256Digest& digest) {
  assert(sk.preimages.size() == kLamportChains);
  LamportSignature sig;
  sig.revealed.reserve(256);
  for (std::size_t i = 0; i < 256; ++i) {
    const int bit = (digest[i / 8] >> (7 - i % 8)) & 1;
    sig.revealed.push_back(
        sk.preimages[static_cast<std::size_t>(bit) * 256 + i]);
  }
  return sig;
}

bool lamport_verify(const LamportPublicKey& pk, const Sha256Digest& digest,
                    const LamportSignature& signature) {
  if (pk.hashes.size() != kLamportChains || signature.revealed.size() != 256) {
    return false;
  }
  for (std::size_t i = 0; i < 256; ++i) {
    const int bit = (digest[i / 8] >> (7 - i % 8)) & 1;
    const Sha256Digest expected =
        pk.hashes[static_cast<std::size_t>(bit) * 256 + i];
    if (Sha256::compute(signature.revealed[i]) != expected) return false;
  }
  return true;
}

}  // namespace sacha::crypto
