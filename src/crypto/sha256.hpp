// SHA-256 (FIPS 180-4), used by the baseline attestation schemes
// (Chaves-style bitstream hashing, Perito-Tsudik memory checksums) and by
// the fuzzy extractor's key-derivation step.
#pragma once

#include <array>
#include <cstdint>

#include "common/bytes.hpp"

namespace sacha::crypto {

inline constexpr std::size_t kSha256DigestSize = 32;
using Sha256Digest = std::array<std::uint8_t, kSha256DigestSize>;

class Sha256 {
 public:
  Sha256();

  void reset();
  void update(ByteSpan data);
  Sha256Digest finalize();

  static Sha256Digest compute(ByteSpan data);

 private:
  void process_block(const std::uint8_t* block);

  std::array<std::uint32_t, 8> h_{};
  std::array<std::uint8_t, 64> buffer_{};
  std::size_t buffered_ = 0;
  std::uint64_t total_bytes_ = 0;
  bool finalized_ = false;
};

}  // namespace sacha::crypto
