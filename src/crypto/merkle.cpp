#include "crypto/merkle.hpp"

#include <cassert>

namespace sacha::crypto {

namespace {
Sha256Digest hash_pair(const Sha256Digest& left, const Sha256Digest& right) {
  Sha256 hash;
  hash.update(bytes_of("sacha-merkle-node"));
  hash.update(left);
  hash.update(right);
  return hash.finalize();
}
}  // namespace

HashSigner::HashSigner(std::uint64_t seed, std::uint32_t height)
    : seed_(seed), height_(height) {
  assert(height <= 16 && "tree precomputation is O(2^h) keygens");
  const std::uint32_t leaves = 1u << height;
  levels_.resize(height + 1);
  levels_[0].reserve(leaves);
  for (std::uint32_t i = 0; i < leaves; ++i) {
    levels_[0].push_back(lamport_public(lamport_keygen(seed_, i)).fingerprint());
  }
  for (std::uint32_t level = 1; level <= height; ++level) {
    const auto& below = levels_[level - 1];
    levels_[level].reserve(below.size() / 2);
    for (std::size_t i = 0; i + 1 < below.size(); i += 2) {
      levels_[level].push_back(hash_pair(below[i], below[i + 1]));
    }
  }
  root_ = levels_[height][0];
}

std::optional<MerkleSignature> HashSigner::sign(const Sha256Digest& digest) {
  if (next_leaf_ >= capacity()) return std::nullopt;  // exhausted: refuse
  const std::uint32_t leaf = next_leaf_++;

  MerkleSignature sig;
  sig.leaf_index = leaf;
  const LamportSecretKey sk = lamport_keygen(seed_, leaf);
  sig.leaf_public = lamport_public(sk);
  sig.ots = lamport_sign(sk, digest);
  std::uint32_t index = leaf;
  for (std::uint32_t level = 0; level < height_; ++level) {
    sig.auth_path.push_back(levels_[level][index ^ 1u]);
    index >>= 1;
  }
  return sig;
}

bool merkle_verify(const Sha256Digest& root, std::uint32_t tree_height,
                   const Sha256Digest& digest, const MerkleSignature& sig) {
  if (sig.auth_path.size() != tree_height) return false;
  if (sig.leaf_index >= (1u << tree_height)) return false;
  if (!lamport_verify(sig.leaf_public, digest, sig.ots)) return false;
  Sha256Digest node = sig.leaf_public.fingerprint();
  std::uint32_t index = sig.leaf_index;
  for (const Sha256Digest& sibling : sig.auth_path) {
    node = (index & 1u) ? hash_pair(sibling, node) : hash_pair(node, sibling);
    index >>= 1;
  }
  return node == root;
}

Sha256Digest merkle_root(std::span<const Sha256Digest> leaves) {
  if (leaves.empty()) return Sha256Digest{};
  std::vector<Sha256Digest> level(leaves.begin(), leaves.end());
  while (level.size() > 1) {
    std::vector<Sha256Digest> above;
    above.reserve((level.size() + 1) / 2);
    for (std::size_t i = 0; i + 1 < level.size(); i += 2) {
      above.push_back(hash_pair(level[i], level[i + 1]));
    }
    if (level.size() % 2 != 0) above.push_back(level.back());
    level = std::move(above);
  }
  return level.front();
}

}  // namespace sacha::crypto
