// HMAC-SHA256 (RFC 2104 / FIPS 198-1). Used by bench_crypto as the
// alternative MAC core the paper's area-optimised AES-CMAC is compared
// against, and by the SWATT-style baseline for response computation.
#pragma once

#include "crypto/sha256.hpp"

namespace sacha::crypto {

class HmacSha256 {
 public:
  explicit HmacSha256(ByteSpan key);

  void reset();
  void update(ByteSpan data);
  Sha256Digest finalize();

  static Sha256Digest compute(ByteSpan key, ByteSpan data);

 private:
  std::array<std::uint8_t, 64> ipad_{};
  std::array<std::uint8_t, 64> opad_{};
  Sha256 inner_;
};

}  // namespace sacha::crypto
