#include "crypto/hmac.hpp"

namespace sacha::crypto {

HmacSha256::HmacSha256(ByteSpan key) {
  std::array<std::uint8_t, 64> k{};
  if (key.size() > 64) {
    const Sha256Digest d = Sha256::compute(key);
    for (std::size_t i = 0; i < d.size(); ++i) k[i] = d[i];
  } else {
    for (std::size_t i = 0; i < key.size(); ++i) k[i] = key[i];
  }
  for (std::size_t i = 0; i < 64; ++i) {
    ipad_[i] = k[i] ^ 0x36;
    opad_[i] = k[i] ^ 0x5c;
  }
  reset();
}

void HmacSha256::reset() {
  inner_.reset();
  inner_.update(ipad_);
}

void HmacSha256::update(ByteSpan data) { inner_.update(data); }

Sha256Digest HmacSha256::finalize() {
  const Sha256Digest inner_digest = inner_.finalize();
  Sha256 outer;
  outer.update(opad_);
  outer.update(inner_digest);
  return outer.finalize();
}

Sha256Digest HmacSha256::compute(ByteSpan key, ByteSpan data) {
  HmacSha256 mac(key);
  mac.update(data);
  return mac.finalize();
}

}  // namespace sacha::crypto
