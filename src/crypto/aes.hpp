// AES-128 block cipher (FIPS-197), implemented from scratch.
//
// This models the area-optimised AES core inside the SACHa static partition
// (the paper's "AEScmac" block of Fig. 10). Only the forward cipher is
// provided: CMAC and CTR-mode generation never decrypt. The implementation
// is a straightforward table-free byte-oriented version — clarity over
// speed; benchmarks measure it as-is and bench_crypto reports the resulting
// frame-stream MAC throughput.
#pragma once

#include <array>
#include <cstdint>

#include "common/bytes.hpp"

namespace sacha::crypto {

inline constexpr std::size_t kAesBlockSize = 16;
inline constexpr std::size_t kAesKeySize = 16;

using AesBlock = std::array<std::uint8_t, kAesBlockSize>;
using AesKey = std::array<std::uint8_t, kAesKeySize>;

/// AES-128 with a fixed expanded key.
class Aes128 {
 public:
  explicit Aes128(const AesKey& key);

  /// Encrypts one 16-byte block in place.
  void encrypt_block(AesBlock& block) const;

  /// Convenience: returns E_K(in).
  AesBlock encrypt(const AesBlock& in) const;

 private:
  // 11 round keys of 16 bytes.
  std::array<std::uint8_t, 176> round_keys_;
};

/// Builds an AesKey from a buffer that must be exactly 16 bytes.
AesKey to_aes_key(ByteSpan raw);

}  // namespace sacha::crypto
