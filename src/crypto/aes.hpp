// AES-128 block cipher (FIPS-197), implemented from scratch.
//
// This models the area-optimised AES core inside the SACHa static partition
// (the paper's "AEScmac" block of Fig. 10). Only the forward cipher is
// provided: CMAC and CTR-mode generation never decrypt.
//
// Three implementation tiers sit behind one interface:
//   - kReference: the original table-free byte-oriented version — clarity
//     over speed, and the cross-check oracle for the fast tiers;
//   - kTtable: 32-bit T-table lookups (4 KiB of fused SubBytes/ShiftRows/
//     MixColumns tables), the portable fast path;
//   - kAesni: hardware AES round instructions, compiled in a separate
//     translation unit with -maes and selected only when CPUID reports
//     support at runtime.
// kAuto resolves to the fastest tier the host supports. All tiers are
// bit-identical; crypto_test cross-checks them on FIPS-197 vectors plus
// 10k random blocks.
#pragma once

#include <array>
#include <cstdint>
#include <span>

#include "common/bytes.hpp"

namespace sacha::crypto {

inline constexpr std::size_t kAesBlockSize = 16;
inline constexpr std::size_t kAesKeySize = 16;

using AesBlock = std::array<std::uint8_t, kAesBlockSize>;
using AesKey = std::array<std::uint8_t, kAesKeySize>;

/// Implementation strategy for the AES engine.
enum class AesImpl : std::uint8_t {
  kAuto,       // fastest supported tier (AES-NI if present, else T-table)
  kReference,  // byte-wise FIPS-197 (the hardware-model oracle)
  kTtable,     // 32-bit T-table software fast path
  kAesni,      // AES-NI hardware instructions (x86 only)
};

const char* to_string(AesImpl impl);

class Aes128;

/// One lane of a multi-stream CBC-MAC absorb: an independent chain (its own
/// engine, hence its own key and tier) plus the next run of whole blocks to
/// fold into it. `words` holds `4 * nblocks` entries in the same big-endian
/// word layout Aes128::cbc_mac_absorb_words consumes.
struct CbcMacStream {
  const Aes128* aes = nullptr;
  AesBlock* state = nullptr;
  const std::uint32_t* words = nullptr;
  std::size_t nblocks = 0;
};

/// AES-128 with a fixed expanded key.
class Aes128 {
 public:
  explicit Aes128(const AesKey& key, AesImpl impl = AesImpl::kAuto);

  /// Encrypts one 16-byte block in place.
  void encrypt_block(AesBlock& block) const;

  /// Convenience: returns E_K(in).
  AesBlock encrypt(const AesBlock& in) const;

  /// CBC-MAC absorption: state = E_K(state ^ B_i) for each of the `nblocks`
  /// consecutive 16-byte blocks at `data`. The hot loop of AES-CMAC — the
  /// fast tiers keep the chaining value in registers across blocks instead
  /// of re-dispatching per block.
  void cbc_mac_absorb(AesBlock& state, const std::uint8_t* data,
                      std::size_t nblocks) const;

  /// CBC-MAC absorption straight from a 32-bit word stream: each block is
  /// the big-endian serialization of four consecutive words (`words` holds
  /// `4 * nblocks` entries). On the AES-NI tier the byte swap rides in the
  /// latency shadow of the AES round chain, so this costs the same as
  /// absorbing pre-serialized bytes — the readback hot path never
  /// materializes a byte stream at all.
  void cbc_mac_absorb_words(AesBlock& state, const std::uint32_t* words,
                            std::size_t nblocks) const;

  /// Absorbs several independent CBC-MAC chains at once. Equivalent to
  /// calling s.aes->cbc_mac_absorb_words(*s.state, s.words, s.nblocks) on
  /// each stream in turn, but on the AES-NI tier up to eight chains are
  /// interleaved through the round instructions, so each stream's AESENC
  /// issues in the latency shadow of the other streams' and the serial
  /// dependency chain of a single CMAC stops being the throughput ceiling.
  /// Streams may mix keys, lengths, and tiers: non-AES-NI lanes fall back
  /// to their own tier's scalar loop, and ragged lengths are handled by
  /// re-packing lanes as streams run dry.
  static void cbc_mac_absorb_words_multi(std::span<CbcMacStream> streams);

  /// The tier actually executing (kAuto is resolved at construction).
  AesImpl impl() const { return impl_; }

  /// True when this build and CPU can run the AES-NI tier.
  static bool aesni_supported();

  /// Maps kAuto (or an unsupported explicit request) to a runnable tier.
  static AesImpl resolve(AesImpl requested);

 private:
  void encrypt_block_reference(AesBlock& block) const;
  void encrypt_block_ttable(AesBlock& block) const;

  // 11 round keys of 16 bytes (FIPS-197 byte order; fed to AES-NI as-is).
  std::array<std::uint8_t, 176> round_keys_;
  // The same round keys packed as big-endian column words for the T-tables.
  std::array<std::uint32_t, 44> round_words_;
  AesImpl impl_;
};

/// Builds an AesKey from a buffer that must be exactly 16 bytes.
AesKey to_aes_key(ByteSpan raw);

namespace detail {
// AES-NI entry points, defined in aes_ni.cpp (compiled with -maes). Only
// callable when Aes128::aesni_supported(); declared unconditionally so the
// dispatcher links against stubs on non-x86 builds.
void aesni_encrypt_block(const std::uint8_t* round_keys, std::uint8_t* block);
void aesni_cbc_mac(const std::uint8_t* round_keys, std::uint8_t* state,
                   const std::uint8_t* data, std::size_t nblocks);
void aesni_cbc_mac_words(const std::uint8_t* round_keys, std::uint8_t* state,
                         const std::uint32_t* words, std::size_t nblocks);

/// One AES-NI lane of the interleaved multi-stream absorber. `round_keys`
/// is the FIPS-order expanded key; `words`/`nblocks` advance as the kernel
/// consumes blocks.
struct AesniMacStream {
  const std::uint8_t* round_keys = nullptr;
  std::uint8_t* state = nullptr;
  const std::uint32_t* words = nullptr;
  std::size_t nblocks = 0;
};

/// Interleaves up to eight lanes through the AES round instructions;
/// larger counts are processed in independent groups of eight. Lanes may
/// have ragged `nblocks`.
void aesni_cbc_mac_words_multi(AesniMacStream* streams, std::size_t n);

/// True when the optional VAES wide tier is compiled in (SACHA_HAVE_VAES)
/// and the CPU reports VAES+AVX2.
bool vaes_available();
}  // namespace detail

}  // namespace sacha::crypto
