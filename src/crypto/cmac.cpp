#include "crypto/cmac.hpp"

#include <algorithm>
#include <array>
#include <cassert>

namespace sacha::crypto {

namespace {

/// GF(2^128) doubling with the CMAC reduction polynomial (RFC 4493 §2.3).
AesBlock dbl(const AesBlock& in) {
  AesBlock out{};
  std::uint8_t carry = 0;
  for (int i = 15; i >= 0; --i) {
    const std::uint8_t b = in[static_cast<std::size_t>(i)];
    out[static_cast<std::size_t>(i)] = static_cast<std::uint8_t>((b << 1) | carry);
    carry = b >> 7;
  }
  if (carry) out[15] ^= 0x87;
  return out;
}

}  // namespace

Cmac::Cmac(const AesKey& key, AesImpl impl) : aes_(key, impl) {
  AesBlock l{};
  aes_.encrypt_block(l);
  subkey1_ = dbl(l);
  subkey2_ = dbl(subkey1_);
  reset();
}

void Cmac::reset() {
  state_.fill(0);
  buffer_.fill(0);
  buffered_ = 0;
  any_input_ = false;
  finalized_ = false;
}

void Cmac::update(ByteSpan data) {
  assert(!finalized_);
  if (data.empty()) return;
  any_input_ = true;
  std::size_t pos = 0;

  // Drain the staging buffer first. A full buffer may only be absorbed once
  // more input is known to follow: the final full block must stay staged so
  // finalize() can fold in subkey1.
  if (buffered_ > 0) {
    if (buffered_ < kAesBlockSize) {
      const std::size_t take = std::min(kAesBlockSize - buffered_, data.size());
      std::copy_n(data.data(), take, buffer_.data() + buffered_);
      buffered_ += take;
      pos = take;
      if (pos == data.size()) return;
    }
    // buffered_ == kAesBlockSize and more input follows.
    aes_.cbc_mac_absorb(state_, buffer_.data(), 1);
    buffered_ = 0;
  }

  // Bulk path: absorb every whole block except the last directly from the
  // input span, without staging bytes through the buffer.
  const std::size_t remaining = data.size() - pos;
  if (remaining > kAesBlockSize) {
    const std::size_t nblocks = (remaining - 1) / kAesBlockSize;
    aes_.cbc_mac_absorb(state_, data.data() + pos, nblocks);
    pos += nblocks * kAesBlockSize;
  }

  const std::size_t tail = data.size() - pos;  // 1..16 bytes
  std::copy_n(data.data() + pos, tail, buffer_.data());
  buffered_ = tail;
}

void Cmac::update(std::span<const std::uint32_t> words) {
  assert(!finalized_);
  if (words.empty()) return;
  if (buffered_ % 4 != 0) {
    // Mixed byte/word input left the staging buffer off a word boundary;
    // serialize this call through the byte path. The readback hot path
    // feeds words exclusively, so it never lands here.
    std::array<std::uint8_t, 256> staging;
    std::size_t done = 0;
    while (done < words.size()) {
      const std::size_t n =
          std::min<std::size_t>(staging.size() / 4, words.size() - done);
      for (std::size_t i = 0; i < n; ++i) {
        const std::uint32_t w = words[done + i];
        staging[4 * i + 0] = static_cast<std::uint8_t>(w >> 24);
        staging[4 * i + 1] = static_cast<std::uint8_t>(w >> 16);
        staging[4 * i + 2] = static_cast<std::uint8_t>(w >> 8);
        staging[4 * i + 3] = static_cast<std::uint8_t>(w);
      }
      update(ByteSpan(staging.data(), n * 4));
      done += n;
    }
    return;
  }

  any_input_ = true;
  std::size_t pos = 0;
  if (buffered_ > 0) {
    while (buffered_ < kAesBlockSize && pos < words.size()) {
      stage_word(words[pos++]);
    }
    if (pos == words.size()) return;  // all staged; finalize() drains it
    // buffered_ == kAesBlockSize and more input follows.
    aes_.cbc_mac_absorb(state_, buffer_.data(), 1);
    buffered_ = 0;
  }

  // Bulk path: absorb every whole block except the last straight from the
  // word stream (the tier does the big-endian mapping itself — no byte
  // serialization). finalize() needs at least one byte left staged.
  const std::size_t remaining_bytes = (words.size() - pos) * 4;
  if (remaining_bytes > kAesBlockSize) {
    const std::size_t nblocks = (remaining_bytes - 1) / kAesBlockSize;
    aes_.cbc_mac_absorb_words(state_, words.data() + pos, nblocks);
    pos += nblocks * 4;
  }
  while (pos < words.size()) stage_word(words[pos++]);  // 1..4 tail words
}

void Cmac::stage_word(std::uint32_t w) {
  buffer_[buffered_ + 0] = static_cast<std::uint8_t>(w >> 24);
  buffer_[buffered_ + 1] = static_cast<std::uint8_t>(w >> 16);
  buffer_[buffered_ + 2] = static_cast<std::uint8_t>(w >> 8);
  buffer_[buffered_ + 3] = static_cast<std::uint8_t>(w);
  buffered_ += 4;
}

CbcMacStream Cmac::split_update(std::span<const std::uint32_t> words) {
  assert(!finalized_);
  CbcMacStream bulk{&aes_, &state_, nullptr, 0};
  if (words.empty()) return bulk;
  if (buffered_ % 4 != 0) {
    // Mixed byte/word input left the buffer off a word boundary — rare and
    // never on the readback hot path; absorb scalar and return an empty
    // lane rather than teach the kernel about byte offsets.
    update(words);
    return bulk;
  }

  any_input_ = true;
  std::size_t pos = 0;
  if (buffered_ > 0) {
    while (buffered_ < kAesBlockSize && pos < words.size()) {
      stage_word(words[pos++]);
    }
    if (pos == words.size()) return bulk;  // all staged
    // The drain block precedes the bulk run in the CBC chain, so it must be
    // folded here, before the caller absorbs the returned lane.
    aes_.cbc_mac_absorb(state_, buffer_.data(), 1);
    buffered_ = 0;
  }

  const std::size_t remaining_bytes = (words.size() - pos) * 4;
  if (remaining_bytes > kAesBlockSize) {
    bulk.words = words.data() + pos;
    bulk.nblocks = (remaining_bytes - 1) / kAesBlockSize;
    pos += bulk.nblocks * 4;
  }
  // Staging the tail now is safe: it only touches buffer_, while the
  // deferred bulk absorb only touches state_.
  while (pos < words.size()) stage_word(words[pos++]);
  return bulk;
}

CmacBatch::CmacBatch(std::size_t width)
    : width_(std::clamp<std::size_t>(width, 1, 8)) {}

void CmacBatch::add(Cmac& stream, std::vector<std::uint32_t>&& words) {
  if (words.empty()) return;
  for (Lane& lane : lanes_) {
    if (lane.stream == &stream) {
      lane.words.insert(lane.words.end(), words.begin(), words.end());
      return;
    }
  }
  lanes_.push_back(Lane{&stream, std::move(words)});
}

void CmacBatch::flush() {
  std::size_t next = 0;
  while (next < lanes_.size()) {
    const std::size_t group = std::min(width_, lanes_.size() - next);
    std::array<CbcMacStream, 8> bulk;
    std::size_t nbulk = 0;
    for (std::size_t i = 0; i < group; ++i) {
      Lane& lane = lanes_[next + i];
      const CbcMacStream s = lane.stream->split_update(lane.words);
      if (s.nblocks > 0) bulk[nbulk++] = s;
    }
    if (nbulk > 0) {
      Aes128::cbc_mac_absorb_words_multi(std::span(bulk.data(), nbulk));
      ++absorb_calls_;
      absorbed_streams_ += nbulk;
    }
    next += group;
  }
  lanes_.clear();
}

Mac Cmac::finalize() {
  assert(!finalized_);
  finalized_ = true;
  AesBlock last{};
  if (any_input_ && buffered_ == kAesBlockSize) {
    for (std::size_t i = 0; i < kAesBlockSize; ++i) last[i] = buffer_[i] ^ subkey1_[i];
  } else {
    // Pad 10...0 and use K2.
    for (std::size_t i = 0; i < buffered_; ++i) last[i] = buffer_[i];
    last[buffered_] = 0x80;
    for (std::size_t i = 0; i < kAesBlockSize; ++i) last[i] ^= subkey2_[i];
  }
  for (std::size_t i = 0; i < kAesBlockSize; ++i) state_[i] ^= last[i];
  aes_.encrypt_block(state_);
  return state_;
}

Mac Cmac::compute(const AesKey& key, ByteSpan data) {
  Cmac cmac(key);
  cmac.update(data);
  return cmac.finalize();
}

}  // namespace sacha::crypto
