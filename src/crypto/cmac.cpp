#include "crypto/cmac.hpp"

#include <algorithm>
#include <cassert>

namespace sacha::crypto {

namespace {

/// GF(2^128) doubling with the CMAC reduction polynomial (RFC 4493 §2.3).
AesBlock dbl(const AesBlock& in) {
  AesBlock out{};
  std::uint8_t carry = 0;
  for (int i = 15; i >= 0; --i) {
    const std::uint8_t b = in[static_cast<std::size_t>(i)];
    out[static_cast<std::size_t>(i)] = static_cast<std::uint8_t>((b << 1) | carry);
    carry = b >> 7;
  }
  if (carry) out[15] ^= 0x87;
  return out;
}

}  // namespace

Cmac::Cmac(const AesKey& key, AesImpl impl) : aes_(key, impl) {
  AesBlock l{};
  aes_.encrypt_block(l);
  subkey1_ = dbl(l);
  subkey2_ = dbl(subkey1_);
  reset();
}

void Cmac::reset() {
  state_.fill(0);
  buffer_.fill(0);
  buffered_ = 0;
  any_input_ = false;
  finalized_ = false;
}

void Cmac::update(ByteSpan data) {
  assert(!finalized_);
  if (data.empty()) return;
  any_input_ = true;
  std::size_t pos = 0;

  // Drain the staging buffer first. A full buffer may only be absorbed once
  // more input is known to follow: the final full block must stay staged so
  // finalize() can fold in subkey1.
  if (buffered_ > 0) {
    if (buffered_ < kAesBlockSize) {
      const std::size_t take = std::min(kAesBlockSize - buffered_, data.size());
      std::copy_n(data.data(), take, buffer_.data() + buffered_);
      buffered_ += take;
      pos = take;
      if (pos == data.size()) return;
    }
    // buffered_ == kAesBlockSize and more input follows.
    aes_.cbc_mac_absorb(state_, buffer_.data(), 1);
    buffered_ = 0;
  }

  // Bulk path: absorb every whole block except the last directly from the
  // input span, without staging bytes through the buffer.
  const std::size_t remaining = data.size() - pos;
  if (remaining > kAesBlockSize) {
    const std::size_t nblocks = (remaining - 1) / kAesBlockSize;
    aes_.cbc_mac_absorb(state_, data.data() + pos, nblocks);
    pos += nblocks * kAesBlockSize;
  }

  const std::size_t tail = data.size() - pos;  // 1..16 bytes
  std::copy_n(data.data() + pos, tail, buffer_.data());
  buffered_ = tail;
}

Mac Cmac::finalize() {
  assert(!finalized_);
  finalized_ = true;
  AesBlock last{};
  if (any_input_ && buffered_ == kAesBlockSize) {
    for (std::size_t i = 0; i < kAesBlockSize; ++i) last[i] = buffer_[i] ^ subkey1_[i];
  } else {
    // Pad 10...0 and use K2.
    for (std::size_t i = 0; i < buffered_; ++i) last[i] = buffer_[i];
    last[buffered_] = 0x80;
    for (std::size_t i = 0; i < kAesBlockSize; ++i) last[i] ^= subkey2_[i];
  }
  for (std::size_t i = 0; i < kAesBlockSize; ++i) state_[i] ^= last[i];
  aes_.encrypt_block(state_);
  return state_;
}

Mac Cmac::compute(const AesKey& key, ByteSpan data) {
  Cmac cmac(key);
  cmac.update(data);
  return cmac.finalize();
}

}  // namespace sacha::crypto
