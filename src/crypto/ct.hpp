// Constant-time comparison. MAC verification on both prover and verifier
// sides must not leak the position of the first mismatching byte.
#pragma once

#include "common/bytes.hpp"

namespace sacha::crypto {

/// True iff a == b, in time independent of the contents (still dependent on
/// the lengths, which are public).
bool ct_equal(ByteSpan a, ByteSpan b);

}  // namespace sacha::crypto
