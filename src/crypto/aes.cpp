#include "crypto/aes.hpp"

#include <cassert>
#include <cstdlib>
#include <string_view>

namespace sacha::crypto {

namespace {

/// Optional runtime tier override: SACHA_AES_TIER=reference|ttable|aesni
/// re-routes kAuto resolution. CI uses it to exercise the scalar fallback
/// paths of the batch absorber on AES-NI hosts without a rebuild; explicit
/// per-engine tier requests still win over the environment.
AesImpl env_tier() {
  static const AesImpl tier = [] {
    const char* v = std::getenv("SACHA_AES_TIER");
    if (v == nullptr) return AesImpl::kAuto;
    const std::string_view s(v);
    if (s == "reference") return AesImpl::kReference;
    if (s == "ttable") return AesImpl::kTtable;
    if (s == "aesni") return AesImpl::kAesni;
    return AesImpl::kAuto;
  }();
  return tier;
}

constexpr std::uint8_t kSbox[256] = {
    0x63, 0x7c, 0x77, 0x7b, 0xf2, 0x6b, 0x6f, 0xc5, 0x30, 0x01, 0x67, 0x2b,
    0xfe, 0xd7, 0xab, 0x76, 0xca, 0x82, 0xc9, 0x7d, 0xfa, 0x59, 0x47, 0xf0,
    0xad, 0xd4, 0xa2, 0xaf, 0x9c, 0xa4, 0x72, 0xc0, 0xb7, 0xfd, 0x93, 0x26,
    0x36, 0x3f, 0xf7, 0xcc, 0x34, 0xa5, 0xe5, 0xf1, 0x71, 0xd8, 0x31, 0x15,
    0x04, 0xc7, 0x23, 0xc3, 0x18, 0x96, 0x05, 0x9a, 0x07, 0x12, 0x80, 0xe2,
    0xeb, 0x27, 0xb2, 0x75, 0x09, 0x83, 0x2c, 0x1a, 0x1b, 0x6e, 0x5a, 0xa0,
    0x52, 0x3b, 0xd6, 0xb3, 0x29, 0xe3, 0x2f, 0x84, 0x53, 0xd1, 0x00, 0xed,
    0x20, 0xfc, 0xb1, 0x5b, 0x6a, 0xcb, 0xbe, 0x39, 0x4a, 0x4c, 0x58, 0xcf,
    0xd0, 0xef, 0xaa, 0xfb, 0x43, 0x4d, 0x33, 0x85, 0x45, 0xf9, 0x02, 0x7f,
    0x50, 0x3c, 0x9f, 0xa8, 0x51, 0xa3, 0x40, 0x8f, 0x92, 0x9d, 0x38, 0xf5,
    0xbc, 0xb6, 0xda, 0x21, 0x10, 0xff, 0xf3, 0xd2, 0xcd, 0x0c, 0x13, 0xec,
    0x5f, 0x97, 0x44, 0x17, 0xc4, 0xa7, 0x7e, 0x3d, 0x64, 0x5d, 0x19, 0x73,
    0x60, 0x81, 0x4f, 0xdc, 0x22, 0x2a, 0x90, 0x88, 0x46, 0xee, 0xb8, 0x14,
    0xde, 0x5e, 0x0b, 0xdb, 0xe0, 0x32, 0x3a, 0x0a, 0x49, 0x06, 0x24, 0x5c,
    0xc2, 0xd3, 0xac, 0x62, 0x91, 0x95, 0xe4, 0x79, 0xe7, 0xc8, 0x37, 0x6d,
    0x8d, 0xd5, 0x4e, 0xa9, 0x6c, 0x56, 0xf4, 0xea, 0x65, 0x7a, 0xae, 0x08,
    0xba, 0x78, 0x25, 0x2e, 0x1c, 0xa6, 0xb4, 0xc6, 0xe8, 0xdd, 0x74, 0x1f,
    0x4b, 0xbd, 0x8b, 0x8a, 0x70, 0x3e, 0xb5, 0x66, 0x48, 0x03, 0xf6, 0x0e,
    0x61, 0x35, 0x57, 0xb9, 0x86, 0xc1, 0x1d, 0x9e, 0xe1, 0xf8, 0x98, 0x11,
    0x69, 0xd9, 0x8e, 0x94, 0x9b, 0x1e, 0x87, 0xe9, 0xce, 0x55, 0x28, 0xdf,
    0x8c, 0xa1, 0x89, 0x0d, 0xbf, 0xe6, 0x42, 0x68, 0x41, 0x99, 0x2d, 0x0f,
    0xb0, 0x54, 0xbb, 0x16};

constexpr std::uint8_t kRcon[10] = {0x01, 0x02, 0x04, 0x08, 0x10,
                                    0x20, 0x40, 0x80, 0x1b, 0x36};

constexpr std::uint8_t xtime(std::uint8_t x) {
  return static_cast<std::uint8_t>((x << 1) ^ ((x >> 7) * 0x1b));
}

// T-tables: Te0[x] is the MixColumns-weighted column contributed by S-box
// output S = kSbox[x] when it sits in row 0 of a column; Te1..Te3 are the
// same word rotated for rows 1..3. One table lookup fuses SubBytes,
// ShiftRows (via the byte the caller indexes with) and MixColumns.
struct Ttables {
  std::uint32_t te0[256];
  std::uint32_t te1[256];
  std::uint32_t te2[256];
  std::uint32_t te3[256];
};

constexpr Ttables make_ttables() {
  Ttables t{};
  for (int i = 0; i < 256; ++i) {
    const std::uint8_t s = kSbox[i];
    const std::uint8_t s2 = xtime(s);
    const std::uint8_t s3 = static_cast<std::uint8_t>(s2 ^ s);
    const std::uint32_t w = (static_cast<std::uint32_t>(s2) << 24) |
                            (static_cast<std::uint32_t>(s) << 16) |
                            (static_cast<std::uint32_t>(s) << 8) |
                            static_cast<std::uint32_t>(s3);
    t.te0[i] = w;
    t.te1[i] = (w >> 8) | (w << 24);
    t.te2[i] = (w >> 16) | (w << 16);
    t.te3[i] = (w >> 24) | (w << 8);
  }
  return t;
}

constexpr Ttables kTe = make_ttables();

}  // namespace

const char* to_string(AesImpl impl) {
  switch (impl) {
    case AesImpl::kAuto: return "auto";
    case AesImpl::kReference: return "reference";
    case AesImpl::kTtable: return "ttable";
    case AesImpl::kAesni: return "aesni";
  }
  return "?";
}

bool Aes128::aesni_supported() {
#if defined(SACHA_HAVE_AESNI)
  // The tier is compiled in; still require the CPU to report AES support.
  return __builtin_cpu_supports("aes") != 0;
#else
  return false;
#endif
}

AesImpl Aes128::resolve(AesImpl requested) {
  if (requested == AesImpl::kAuto) requested = env_tier();
  if (requested == AesImpl::kAuto) {
    return aesni_supported() ? AesImpl::kAesni : AesImpl::kTtable;
  }
  if (requested == AesImpl::kAesni && !aesni_supported()) {
    return AesImpl::kTtable;  // graceful degrade on hosts without AES-NI
  }
  return requested;
}

Aes128::Aes128(const AesKey& key, AesImpl impl) : impl_(resolve(impl)) {
  // Key expansion (FIPS-197 §5.2), Nk=4, Nr=10.
  for (std::size_t i = 0; i < 16; ++i) round_keys_[i] = key[i];
  for (std::size_t i = 4; i < 44; ++i) {
    std::uint8_t t[4] = {round_keys_[4 * (i - 1) + 0], round_keys_[4 * (i - 1) + 1],
                         round_keys_[4 * (i - 1) + 2], round_keys_[4 * (i - 1) + 3]};
    if (i % 4 == 0) {
      const std::uint8_t tmp = t[0];
      t[0] = static_cast<std::uint8_t>(kSbox[t[1]] ^ kRcon[i / 4 - 1]);
      t[1] = kSbox[t[2]];
      t[2] = kSbox[t[3]];
      t[3] = kSbox[tmp];
    }
    for (std::size_t j = 0; j < 4; ++j) {
      round_keys_[4 * i + j] = round_keys_[4 * (i - 4) + j] ^ t[j];
    }
  }
  for (std::size_t i = 0; i < 44; ++i) {
    round_words_[i] = (static_cast<std::uint32_t>(round_keys_[4 * i]) << 24) |
                      (static_cast<std::uint32_t>(round_keys_[4 * i + 1]) << 16) |
                      (static_cast<std::uint32_t>(round_keys_[4 * i + 2]) << 8) |
                      static_cast<std::uint32_t>(round_keys_[4 * i + 3]);
  }
}

void Aes128::encrypt_block_reference(AesBlock& s) const {
  auto add_round_key = [&](int round) {
    for (std::size_t i = 0; i < 16; ++i) {
      s[i] ^= round_keys_[static_cast<std::size_t>(round) * 16 + i];
    }
  };
  auto sub_bytes = [&] {
    for (auto& b : s) b = kSbox[b];
  };
  auto shift_rows = [&] {
    // State is column-major: s[4c + r].
    std::uint8_t t;
    t = s[1]; s[1] = s[5]; s[5] = s[9]; s[9] = s[13]; s[13] = t;          // row 1 <<1
    t = s[2]; s[2] = s[10]; s[10] = t; t = s[6]; s[6] = s[14]; s[14] = t;  // row 2 <<2
    t = s[15]; s[15] = s[11]; s[11] = s[7]; s[7] = s[3]; s[3] = t;         // row 3 <<3
  };
  auto mix_columns = [&] {
    for (std::size_t c = 0; c < 4; ++c) {
      std::uint8_t* col = &s[4 * c];
      const std::uint8_t a0 = col[0], a1 = col[1], a2 = col[2], a3 = col[3];
      const std::uint8_t all = a0 ^ a1 ^ a2 ^ a3;
      col[0] = static_cast<std::uint8_t>(a0 ^ all ^ xtime(static_cast<std::uint8_t>(a0 ^ a1)));
      col[1] = static_cast<std::uint8_t>(a1 ^ all ^ xtime(static_cast<std::uint8_t>(a1 ^ a2)));
      col[2] = static_cast<std::uint8_t>(a2 ^ all ^ xtime(static_cast<std::uint8_t>(a2 ^ a3)));
      col[3] = static_cast<std::uint8_t>(a3 ^ all ^ xtime(static_cast<std::uint8_t>(a3 ^ a0)));
    }
  };

  add_round_key(0);
  for (int round = 1; round <= 9; ++round) {
    sub_bytes();
    shift_rows();
    mix_columns();
    add_round_key(round);
  }
  sub_bytes();
  shift_rows();
  add_round_key(10);
}

namespace {

// One full T-table encryption over big-endian column words c0..c3.
inline void ttable_rounds(const std::uint32_t* rk, std::uint32_t& c0,
                          std::uint32_t& c1, std::uint32_t& c2,
                          std::uint32_t& c3) {
  std::uint32_t s0 = c0 ^ rk[0];
  std::uint32_t s1 = c1 ^ rk[1];
  std::uint32_t s2 = c2 ^ rk[2];
  std::uint32_t s3 = c3 ^ rk[3];
  for (int round = 1; round <= 9; ++round) {
    const std::uint32_t* k = rk + 4 * round;
    const std::uint32_t t0 = kTe.te0[s0 >> 24] ^ kTe.te1[(s1 >> 16) & 0xff] ^
                             kTe.te2[(s2 >> 8) & 0xff] ^ kTe.te3[s3 & 0xff] ^ k[0];
    const std::uint32_t t1 = kTe.te0[s1 >> 24] ^ kTe.te1[(s2 >> 16) & 0xff] ^
                             kTe.te2[(s3 >> 8) & 0xff] ^ kTe.te3[s0 & 0xff] ^ k[1];
    const std::uint32_t t2 = kTe.te0[s2 >> 24] ^ kTe.te1[(s3 >> 16) & 0xff] ^
                             kTe.te2[(s0 >> 8) & 0xff] ^ kTe.te3[s1 & 0xff] ^ k[2];
    const std::uint32_t t3 = kTe.te0[s3 >> 24] ^ kTe.te1[(s0 >> 16) & 0xff] ^
                             kTe.te2[(s1 >> 8) & 0xff] ^ kTe.te3[s2 & 0xff] ^ k[3];
    s0 = t0; s1 = t1; s2 = t2; s3 = t3;
  }
  // Final round: SubBytes + ShiftRows + AddRoundKey, no MixColumns.
  const std::uint32_t* k = rk + 40;
  c0 = ((static_cast<std::uint32_t>(kSbox[s0 >> 24]) << 24) |
        (static_cast<std::uint32_t>(kSbox[(s1 >> 16) & 0xff]) << 16) |
        (static_cast<std::uint32_t>(kSbox[(s2 >> 8) & 0xff]) << 8) |
        static_cast<std::uint32_t>(kSbox[s3 & 0xff])) ^ k[0];
  c1 = ((static_cast<std::uint32_t>(kSbox[s1 >> 24]) << 24) |
        (static_cast<std::uint32_t>(kSbox[(s2 >> 16) & 0xff]) << 16) |
        (static_cast<std::uint32_t>(kSbox[(s3 >> 8) & 0xff]) << 8) |
        static_cast<std::uint32_t>(kSbox[s0 & 0xff])) ^ k[1];
  c2 = ((static_cast<std::uint32_t>(kSbox[s2 >> 24]) << 24) |
        (static_cast<std::uint32_t>(kSbox[(s3 >> 16) & 0xff]) << 16) |
        (static_cast<std::uint32_t>(kSbox[(s0 >> 8) & 0xff]) << 8) |
        static_cast<std::uint32_t>(kSbox[s1 & 0xff])) ^ k[2];
  c3 = ((static_cast<std::uint32_t>(kSbox[s3 >> 24]) << 24) |
        (static_cast<std::uint32_t>(kSbox[(s0 >> 16) & 0xff]) << 16) |
        (static_cast<std::uint32_t>(kSbox[(s1 >> 8) & 0xff]) << 8) |
        static_cast<std::uint32_t>(kSbox[s2 & 0xff])) ^ k[3];
}

inline std::uint32_t load_be32(const std::uint8_t* p) {
  return (static_cast<std::uint32_t>(p[0]) << 24) |
         (static_cast<std::uint32_t>(p[1]) << 16) |
         (static_cast<std::uint32_t>(p[2]) << 8) | static_cast<std::uint32_t>(p[3]);
}

inline void store_be32(std::uint8_t* p, std::uint32_t v) {
  p[0] = static_cast<std::uint8_t>(v >> 24);
  p[1] = static_cast<std::uint8_t>(v >> 16);
  p[2] = static_cast<std::uint8_t>(v >> 8);
  p[3] = static_cast<std::uint8_t>(v);
}

}  // namespace

void Aes128::encrypt_block_ttable(AesBlock& block) const {
  std::uint32_t c0 = load_be32(&block[0]);
  std::uint32_t c1 = load_be32(&block[4]);
  std::uint32_t c2 = load_be32(&block[8]);
  std::uint32_t c3 = load_be32(&block[12]);
  ttable_rounds(round_words_.data(), c0, c1, c2, c3);
  store_be32(&block[0], c0);
  store_be32(&block[4], c1);
  store_be32(&block[8], c2);
  store_be32(&block[12], c3);
}

void Aes128::encrypt_block(AesBlock& block) const {
  switch (impl_) {
    case AesImpl::kReference: encrypt_block_reference(block); return;
    case AesImpl::kAesni:
      detail::aesni_encrypt_block(round_keys_.data(), block.data());
      return;
    case AesImpl::kTtable:
    case AesImpl::kAuto: encrypt_block_ttable(block); return;
  }
}

AesBlock Aes128::encrypt(const AesBlock& in) const {
  AesBlock out = in;
  encrypt_block(out);
  return out;
}

void Aes128::cbc_mac_absorb(AesBlock& state, const std::uint8_t* data,
                            std::size_t nblocks) const {
  if (nblocks == 0) return;
  switch (impl_) {
    case AesImpl::kAesni:
      detail::aesni_cbc_mac(round_keys_.data(), state.data(), data, nblocks);
      return;
    case AesImpl::kTtable:
    case AesImpl::kAuto: {
      // Keep the chaining value in registers across the whole run.
      std::uint32_t c0 = load_be32(&state[0]);
      std::uint32_t c1 = load_be32(&state[4]);
      std::uint32_t c2 = load_be32(&state[8]);
      std::uint32_t c3 = load_be32(&state[12]);
      for (std::size_t b = 0; b < nblocks; ++b, data += kAesBlockSize) {
        c0 ^= load_be32(data);
        c1 ^= load_be32(data + 4);
        c2 ^= load_be32(data + 8);
        c3 ^= load_be32(data + 12);
        ttable_rounds(round_words_.data(), c0, c1, c2, c3);
      }
      store_be32(&state[0], c0);
      store_be32(&state[4], c1);
      store_be32(&state[8], c2);
      store_be32(&state[12], c3);
      return;
    }
    case AesImpl::kReference:
      for (std::size_t b = 0; b < nblocks; ++b, data += kAesBlockSize) {
        for (std::size_t i = 0; i < kAesBlockSize; ++i) state[i] ^= data[i];
        encrypt_block_reference(state);
      }
      return;
  }
}

void Aes128::cbc_mac_absorb_words(AesBlock& state, const std::uint32_t* words,
                                  std::size_t nblocks) const {
  if (nblocks == 0) return;
  switch (impl_) {
    case AesImpl::kAesni:
      detail::aesni_cbc_mac_words(round_keys_.data(), state.data(), words,
                                  nblocks);
      return;
    case AesImpl::kTtable:
    case AesImpl::kAuto: {
      // The T-table rounds already chain on big-endian column words, which
      // is exactly the serialized layout of the word stream: the message
      // words XOR in with no byte shuffling at all.
      std::uint32_t c0 = load_be32(&state[0]);
      std::uint32_t c1 = load_be32(&state[4]);
      std::uint32_t c2 = load_be32(&state[8]);
      std::uint32_t c3 = load_be32(&state[12]);
      for (std::size_t b = 0; b < nblocks; ++b, words += 4) {
        c0 ^= words[0];
        c1 ^= words[1];
        c2 ^= words[2];
        c3 ^= words[3];
        ttable_rounds(round_words_.data(), c0, c1, c2, c3);
      }
      store_be32(&state[0], c0);
      store_be32(&state[4], c1);
      store_be32(&state[8], c2);
      store_be32(&state[12], c3);
      return;
    }
    case AesImpl::kReference:
      for (std::size_t b = 0; b < nblocks; ++b, words += 4) {
        for (std::size_t i = 0; i < kAesBlockSize; ++i) {
          state[i] ^= static_cast<std::uint8_t>(words[i / 4] >>
                                                (24 - 8 * (i % 4)));
        }
        encrypt_block_reference(state);
      }
      return;
  }
}

void Aes128::cbc_mac_absorb_words_multi(std::span<CbcMacStream> streams) {
  // Split by tier: AES-NI lanes interleave in hardware, while reference and
  // T-table lanes take their own scalar loop one stream at a time — those
  // tiers are compute-bound in scalar code, so there is no latency shadow
  // to mine and the plain loop is the correct (bit-identical) fallback.
  std::array<detail::AesniMacStream, 8> ni;
  std::size_t nni = 0;
  for (const CbcMacStream& s : streams) {
    if (s.nblocks == 0) continue;
    assert(s.aes != nullptr && s.state != nullptr && s.words != nullptr);
    if (s.aes->impl() == AesImpl::kAesni) {
      ni[nni++] = {s.aes->round_keys_.data(), s.state->data(), s.words,
                   s.nblocks};
      if (nni == ni.size()) {
        detail::aesni_cbc_mac_words_multi(ni.data(), nni);
        nni = 0;
      }
    } else {
      s.aes->cbc_mac_absorb_words(*s.state, s.words, s.nblocks);
    }
  }
  if (nni > 0) detail::aesni_cbc_mac_words_multi(ni.data(), nni);
}

AesKey to_aes_key(ByteSpan raw) {
  assert(raw.size() == kAesKeySize);
  AesKey key{};
  for (std::size_t i = 0; i < kAesKeySize; ++i) key[i] = raw[i];
  return key;
}

}  // namespace sacha::crypto
