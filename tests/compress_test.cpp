// Tests for the bitstream compressors: exact round trips on structured and
// adversarial inputs, defensive decompression, and the [24]-style check
// that compression does not rescue the BRAM-staging adversary.
#include <gtest/gtest.h>

#include "bitstream/bitgen.hpp"
#include "bitstream/compress.hpp"
#include "common/rng.hpp"
#include "fabric/device.hpp"

namespace sacha::bitstream {
namespace {

Bytes roundtrip_lz(ByteSpan data) {
  auto out = lz_decompress(lz_compress(data));
  EXPECT_TRUE(out.ok()) << out.message();
  return out.ok() ? out.value() : Bytes{};
}

Bytes roundtrip_rle(ByteSpan data) {
  auto out = rle_decompress(rle_compress(data));
  EXPECT_TRUE(out.ok()) << out.message();
  return out.ok() ? out.value() : Bytes{};
}

TEST(Lz, RoundTripsEmpty) { EXPECT_EQ(roundtrip_lz({}), Bytes{}); }

TEST(Lz, RoundTripsText) {
  const Bytes data = bytes_of(
      "abracadabra abracadabra the quick brown fox jumps over the lazy dog "
      "abracadabra again and again and again");
  EXPECT_EQ(roundtrip_lz(data), data);
  EXPECT_LT(lz_compress(data).size(), data.size());
}

TEST(Lz, RoundTripsAllZero) {
  const Bytes data(10'000, 0);
  EXPECT_EQ(roundtrip_lz(data), data);
  // Highly repetitive input compresses massively.
  EXPECT_LT(lz_compress(data).size(), data.size() / 20);
}

TEST(Lz, RoundTripsRandom) {
  Rng rng(1);
  for (std::size_t n : {1u, 5u, 64u, 1'000u, 40'000u}) {
    const Bytes data = rng.bytes(n);
    EXPECT_EQ(roundtrip_lz(data), data) << n;
  }
}

TEST(Lz, RandomDataDoesNotCompress) {
  Rng rng(2);
  const Bytes data = rng.bytes(100'000);
  // Random data stays essentially incompressible (small framing overhead).
  EXPECT_GT(compression_ratio(data.size(), lz_compress(data).size()), 0.95);
}

TEST(Lz, RoundTripsPeriodicPatterns) {
  Bytes data;
  for (int i = 0; i < 5'000; ++i) data.push_back(static_cast<std::uint8_t>(i % 7));
  EXPECT_EQ(roundtrip_lz(data), data);
  EXPECT_LT(compression_ratio(data.size(), lz_compress(data).size()), 0.1);
}

TEST(Lz, OverlappingMatchesDecodeCorrectly) {
  // "aaaa..." forces distance-1 matches with len > dist (LZ77 overlap).
  const Bytes data(1'000, 'a');
  EXPECT_EQ(roundtrip_lz(data), data);
}

TEST(Lz, DecompressRejectsGarbage) {
  Rng rng(3);
  for (int trial = 0; trial < 200; ++trial) {
    const Bytes garbage = rng.bytes(static_cast<std::size_t>(rng.below(100)));
    (void)lz_decompress(garbage);  // must not crash; may error
  }
  EXPECT_FALSE(lz_decompress(Bytes{0, 0, 0, 10, 0x01, 5, 0, 1}).ok())
      << "match before any output must be rejected";
  EXPECT_FALSE(lz_decompress(Bytes{0, 0, 0, 2, 0x02, 0}).ok()) << "bad tag";
}

TEST(Lz, DecompressRejectsTruncation) {
  const Bytes data = bytes_of("compression framing must be robust");
  Bytes compressed = lz_compress(data);
  compressed.pop_back();
  EXPECT_FALSE(lz_decompress(compressed).ok());
}

TEST(Rle, RoundTrips) {
  Rng rng(4);
  for (std::size_t n : {0u, 1u, 100u, 5'000u}) {
    const Bytes data = rng.bytes(n);
    EXPECT_EQ(roundtrip_rle(data), data) << n;
  }
  const Bytes runs(4'000, 0xaa);
  EXPECT_EQ(roundtrip_rle(runs), runs);
  EXPECT_LT(rle_compress(runs).size(), 64u);
}

TEST(Rle, DecompressRejectsGarbage) {
  EXPECT_FALSE(rle_decompress(Bytes{1}).ok());
  EXPECT_FALSE(rle_decompress(Bytes{0, 0, 0, 4, 0, 7}).ok()) << "zero run";
  EXPECT_FALSE(rle_decompress(Bytes{0, 0, 0, 1, 5, 7}).ok()) << "overrun";
}

TEST(BoundedMemory, CompressionDoesNotRescueTheStagingAdversary) {
  // [24]'s observation, re-validated in-model: a synthetic application
  // bitstream (high-entropy, like routed designs) compresses barely at
  // all, so even the compressed partial bitstream dwarfs the DynPart BRAM.
  const auto device = fabric::DeviceModel::xc6vlx240t();
  const BitGen gen(device);
  // Sample 2,000 of the 26,400 dynamic frames (ratio is representative).
  const auto image = gen.generate(fabric::FrameRange{2'088, 2'000}, {"app", 1});
  Bytes sample;
  for (const Frame& f : image.frames) append(sample, f.to_bytes());
  const double ratio = compression_ratio(sample.size(), lz_compress(sample).size());
  EXPECT_GT(ratio, 0.9) << "synthetic routed-design content is near-random";

  const double full_partial_bytes =
      static_cast<double>(device.bitstream_bytes(fabric::kVirtex6DynamicFrames));
  const double bram_bytes =
      static_cast<double>(fabric::bram_capacity_bytes({.bram18 = 760}));
  EXPECT_GT(full_partial_bytes * ratio, 2 * bram_bytes)
      << "compressed bitstream must still exceed BRAM by a wide margin";
}

}  // namespace
}  // namespace sacha::bitstream
