// Unit and property tests for sacha_common: byte packing, hex codec,
// deterministic RNG, bit vectors, result types.
#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <set>

#include "common/bitvec.hpp"
#include "common/bytes.hpp"
#include "common/result.hpp"
#include "common/rng.hpp"

namespace sacha {
namespace {

TEST(Hex, RoundTripsArbitraryBytes) {
  Rng rng(1);
  for (int trial = 0; trial < 50; ++trial) {
    const Bytes data = rng.bytes(static_cast<std::size_t>(rng.below(200)));
    const auto decoded = from_hex(to_hex(data));
    ASSERT_TRUE(decoded.has_value());
    EXPECT_EQ(*decoded, data);
  }
}

TEST(Hex, EncodesKnownValue) {
  const Bytes data = {0x00, 0x01, 0xab, 0xff};
  EXPECT_EQ(to_hex(data), "0001abff");
}

TEST(Hex, AcceptsUppercase) {
  const auto decoded = from_hex("DEADBEEF");
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(to_hex(*decoded), "deadbeef");
}

TEST(Hex, RejectsOddLength) { EXPECT_FALSE(from_hex("abc").has_value()); }

TEST(Hex, RejectsNonHexCharacters) {
  EXPECT_FALSE(from_hex("zz").has_value());
  EXPECT_FALSE(from_hex("0g").has_value());
}

TEST(Hex, EmptyStringIsEmptyBuffer) {
  const auto decoded = from_hex("");
  ASSERT_TRUE(decoded.has_value());
  EXPECT_TRUE(decoded->empty());
}

TEST(BytePacking, U16RoundTrip) {
  Bytes out;
  put_u16be(out, 0xbeef);
  ASSERT_EQ(out.size(), 2u);
  EXPECT_EQ(get_u16be(out, 0), 0xbeef);
}

TEST(BytePacking, U32RoundTrip) {
  Bytes out;
  put_u32be(out, 0xdeadbeef);
  EXPECT_EQ(get_u32be(out, 0), 0xdeadbeefu);
}

TEST(BytePacking, U64RoundTrip) {
  Bytes out;
  put_u64be(out, 0x0123456789abcdefULL);
  EXPECT_EQ(get_u64be(out, 0), 0x0123456789abcdefULL);
}

TEST(BytePacking, BigEndianByteOrder) {
  Bytes out;
  put_u32be(out, 0x01020304);
  EXPECT_EQ(out[0], 0x01);
  EXPECT_EQ(out[3], 0x04);
}

TEST(BytePacking, OffsetReads) {
  Bytes out;
  put_u32be(out, 0xaaaaaaaa);
  put_u32be(out, 0x12345678);
  EXPECT_EQ(get_u32be(out, 4), 0x12345678u);
}

TEST(XorBytes, SelfXorIsZero) {
  Rng rng(2);
  const Bytes a = rng.bytes(64);
  const Bytes z = xor_bytes(a, a);
  EXPECT_TRUE(std::all_of(z.begin(), z.end(), [](auto b) { return b == 0; }));
}

TEST(XorBytes, IsInvolutive) {
  Rng rng(3);
  const Bytes a = rng.bytes(32);
  const Bytes b = rng.bytes(32);
  EXPECT_EQ(xor_bytes(xor_bytes(a, b), b), a);
}

TEST(Rng, IsDeterministicFromSeed) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int equal = 0;
  for (int i = 0; i < 100; ++i) equal += (a.next_u64() == b.next_u64());
  EXPECT_LT(equal, 3);
}

TEST(Rng, BelowStaysInRange) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) EXPECT_LT(rng.below(17), 17u);
}

TEST(Rng, BelowCoversRange) {
  Rng rng(8);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 200; ++i) seen.insert(rng.below(5));
  EXPECT_EQ(seen.size(), 5u);
}

TEST(Rng, BetweenIsInclusive) {
  Rng rng(9);
  std::set<std::int64_t> seen;
  for (int i = 0; i < 500; ++i) {
    const auto v = rng.between(-2, 2);
    EXPECT_GE(v, -2);
    EXPECT_LE(v, 2);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 5u);
}

TEST(Rng, ChanceExtremes) {
  Rng rng(10);
  EXPECT_FALSE(rng.chance(0.0));
  EXPECT_TRUE(rng.chance(1.0));
}

TEST(Rng, UniformInUnitInterval) {
  Rng rng(11);
  for (int i = 0; i < 1000; ++i) {
    const double u = rng.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, BytesHasRequestedLength) {
  Rng rng(12);
  for (std::size_t n : {0u, 1u, 7u, 8u, 9u, 100u}) {
    EXPECT_EQ(rng.bytes(n).size(), n);
  }
}

TEST(Rng, PermutationIsPermutation) {
  Rng rng(13);
  const auto p = rng.permutation(100);
  std::set<std::uint32_t> seen(p.begin(), p.end());
  EXPECT_EQ(seen.size(), 100u);
  EXPECT_EQ(*seen.begin(), 0u);
  EXPECT_EQ(*seen.rbegin(), 99u);
}

TEST(Rng, ShuffleKeepsMultiset) {
  Rng rng(14);
  std::vector<int> v = {1, 1, 2, 3, 5, 8, 13};
  auto w = v;
  rng.shuffle(w);
  std::sort(w.begin(), w.end());
  EXPECT_EQ(w, v);
}

TEST(BitVec, StartsCleared) {
  BitVec v(20);
  for (std::size_t i = 0; i < 20; ++i) EXPECT_FALSE(v.get(i));
  EXPECT_EQ(v.popcount(), 0u);
}

TEST(BitVec, AllOnesConstructorRespectsSize) {
  BitVec v(13, true);
  EXPECT_EQ(v.popcount(), 13u);
  // The spare bits of the last byte must stay zero so byte-level equality
  // matches bit-level equality.
  EXPECT_EQ(v.bytes().back(), 0x1f);
}

TEST(BitVec, SetGetFlip) {
  BitVec v(16);
  v.set(3, true);
  EXPECT_TRUE(v.get(3));
  v.flip(3);
  EXPECT_FALSE(v.get(3));
  v.flip(15);
  EXPECT_TRUE(v.get(15));
}

TEST(BitVec, HammingDistance) {
  BitVec a(10), b(10);
  a.set(1, true);
  a.set(5, true);
  b.set(5, true);
  b.set(9, true);
  EXPECT_EQ(a.hamming(b), 2u);
  EXPECT_EQ(a.hamming(a), 0u);
}

TEST(BitVec, XorMatchesHamming) {
  Rng rng(15);
  BitVec a(64), b(64);
  for (std::size_t i = 0; i < 64; ++i) {
    a.set(i, rng.chance(0.5));
    b.set(i, rng.chance(0.5));
  }
  EXPECT_EQ((a ^ b).popcount(), a.hamming(b));
}

TEST(BitVec, FromBytesRoundTrip) {
  Rng rng(16);
  const Bytes packed = rng.bytes(8);
  const BitVec v = BitVec::from_bytes(packed, 61);
  for (std::size_t i = 0; i < 61; ++i) {
    EXPECT_EQ(v.get(i), ((packed[i / 8] >> (i % 8)) & 1) != 0) << i;
  }
}

TEST(Status, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.message(), "");
}

TEST(Status, ErrorCarriesMessage) {
  const Status s = Status::error("boom");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.message(), "boom");
}

TEST(ResultType, ValueAndError) {
  Result<int> ok = 7;
  EXPECT_TRUE(ok.ok());
  EXPECT_EQ(ok.value(), 7);

  const auto err = Result<int>::error("nope");
  EXPECT_FALSE(err.ok());
  EXPECT_EQ(err.message(), "nope");
}

TEST(ResultType, TakeMovesValue) {
  Result<Bytes> r = Bytes{1, 2, 3};
  const Bytes taken = std::move(r).take();
  EXPECT_EQ(taken, (Bytes{1, 2, 3}));
}

// Property sweep: u32 round trip over structured patterns.
class PackingSweep : public ::testing::TestWithParam<std::uint32_t> {};

TEST_P(PackingSweep, U32RoundTrip) {
  Bytes out;
  put_u32be(out, GetParam());
  EXPECT_EQ(get_u32be(out, 0), GetParam());
}

INSTANTIATE_TEST_SUITE_P(Patterns, PackingSweep,
                         ::testing::Values(0u, 1u, 0x80000000u, 0xffffffffu,
                                           0x7fffffffu, 0x55aa55aau,
                                           0xaa55aa55u, 0x00ff00ffu));

}  // namespace
}  // namespace sacha
