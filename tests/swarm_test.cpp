// Tests for swarm attestation: aggregation, scheduling semantics, and
// isolation of compromised members.
#include <gtest/gtest.h>

#include <deque>

#include "attacks/env.hpp"
#include "core/swarm.hpp"

namespace sacha::core {
namespace {

/// Owns the fleet's verifiers/provers (SwarmMember holds raw pointers).
struct Fleet {
  explicit Fleet(std::size_t n, std::uint64_t base_seed = 500) {
    for (std::size_t i = 0; i < n; ++i) {
      envs.push_back(attacks::AttackEnv::small(base_seed + i));
      verifiers.push_back(envs.back().make_verifier());
      provers.push_back(envs.back().make_prover());
    }
    for (std::size_t i = 0; i < n; ++i) {
      members.push_back(SwarmMember{"node-" + std::to_string(i), &verifiers[i],
                                    &provers[i], {}});
    }
  }

  std::deque<attacks::AttackEnv> envs;
  std::deque<SachaVerifier> verifiers;
  std::deque<SachaProver> provers;
  std::vector<SwarmMember> members;
};

TEST(Swarm, AllHonestMembersAttest) {
  Fleet fleet(5);
  const SwarmReport report = attest_swarm(fleet.members);
  EXPECT_TRUE(report.all_attested());
  EXPECT_EQ(report.attested, 5u);
  EXPECT_TRUE(report.failed_ids().empty());
  EXPECT_EQ(report.members.size(), 5u);
}

TEST(Swarm, CompromisedMemberIsolated) {
  Fleet fleet(4);
  fleet.members[2].hooks.after_config = [](SachaProver& p) {
    bitstream::Frame f = p.memory().config_frame(6);
    f.flip_bit(1);
    p.memory().write_frame(6, f);
  };
  const SwarmReport report = attest_swarm(fleet.members);
  EXPECT_EQ(report.attested, 3u);
  EXPECT_EQ(report.failed_ids(), std::vector<std::string>{"node-2"});
}

TEST(Swarm, ParallelMakespanIsMaxSerialIsSum) {
  Fleet fleet(6);
  const SwarmReport parallel = attest_swarm(fleet.members, SwarmSchedule::kParallel);
  Fleet fleet2(6);
  const SwarmReport serial = attest_swarm(fleet2.members, SwarmSchedule::kSerial);
  EXPECT_EQ(serial.makespan, serial.total_work);
  EXPECT_LT(parallel.makespan, parallel.total_work);
  sim::SimDuration max_member = 0;
  for (const auto& m : parallel.members) {
    max_member = std::max(max_member, m.duration);
  }
  EXPECT_EQ(parallel.makespan, max_member);
}

TEST(Swarm, TotalWorkEqualsSumOfMembers) {
  Fleet fleet(3);
  const SwarmReport report = attest_swarm(fleet.members);
  sim::SimDuration sum = 0;
  for (const auto& m : report.members) sum += m.duration;
  EXPECT_EQ(report.total_work, sum);
}

TEST(Swarm, EmptyFleetIsVacuouslyAttested) {
  std::vector<SwarmMember> empty;
  const SwarmReport report = attest_swarm(empty);
  EXPECT_TRUE(report.all_attested());
  EXPECT_EQ(report.makespan, 0u);
}

TEST(Swarm, ParallelMatchesSerialDeterministically) {
  // 16-member fleet, same base seeds: the threaded schedule must produce
  // the identical report — per-member verdicts, durations and MACs — as
  // the serial one. Sessions share no state and member seeds derive from
  // (fleet seed, member id, attempt), never from scheduling, so threading
  // must not be observable in the results.
  constexpr std::size_t kFleetSize = 16;
  Fleet serial_fleet(kFleetSize);
  Fleet parallel_fleet(kFleetSize);
  // Tamper with the same two members in both fleets so the comparison also
  // covers failing verdicts.
  for (Fleet* fleet : {&serial_fleet, &parallel_fleet}) {
    for (std::size_t i : {3u, 11u}) {
      fleet->members[i].hooks.after_config = [](SachaProver& p) {
        bitstream::Frame f = p.memory().config_frame(4);
        f.flip_bit(9);
        p.memory().write_frame(4, f);
      };
    }
  }
  const SwarmReport serial =
      attest_swarm(serial_fleet.members, SwarmSchedule::kSerial);
  const SwarmReport parallel =
      attest_swarm(parallel_fleet.members, SwarmSchedule::kParallel);

  ASSERT_EQ(serial.members.size(), kFleetSize);
  ASSERT_EQ(parallel.members.size(), kFleetSize);
  EXPECT_EQ(serial.attested, parallel.attested);
  EXPECT_EQ(serial.total_work, parallel.total_work);
  for (std::size_t i = 0; i < kFleetSize; ++i) {
    EXPECT_EQ(parallel.members[i].id, serial.members[i].id) << i;
    EXPECT_EQ(parallel.members[i].verdict.ok(), serial.members[i].verdict.ok())
        << i;
    EXPECT_EQ(parallel.members[i].duration, serial.members[i].duration) << i;
    ASSERT_TRUE(serial.members[i].mac.has_value()) << i;
    ASSERT_TRUE(parallel.members[i].mac.has_value()) << i;
    EXPECT_EQ(*parallel.members[i].mac, *serial.members[i].mac) << i;
  }
  EXPECT_EQ(serial.failed_ids(), parallel.failed_ids());
}

TEST(Swarm, MembersGetIndependentChannelRandomness) {
  // With jitter enabled, member durations must not be identical clones.
  Fleet fleet(4);
  SessionOptions options;
  options.channel.jitter_max = 100'000;
  const SwarmReport report = attest_swarm(fleet.members, SwarmSchedule::kParallel,
                                          options);
  ASSERT_TRUE(report.all_attested());
  std::set<sim::SimDuration> distinct;
  for (const auto& m : report.members) distinct.insert(m.duration);
  EXPECT_GT(distinct.size(), 1u);
}

}  // namespace
}  // namespace sacha::core
