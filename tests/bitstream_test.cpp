// Tests for frames, masks, the configuration packet codec and the synthetic
// bitgen: round trips, determinism, mask semantics, and defensive parsing of
// malformed streams.
#include <gtest/gtest.h>

#include "bitstream/bitgen.hpp"
#include "bitstream/frame.hpp"
#include "bitstream/packet.hpp"
#include "common/rng.hpp"
#include "fabric/device.hpp"

namespace sacha::bitstream {
namespace {

fabric::DeviceModel test_device() { return fabric::DeviceModel::small_test_device(); }

Frame random_frame(Rng& rng, std::uint32_t words) {
  Frame f(words);
  for (std::uint32_t i = 0; i < words; ++i) {
    f.set_word(i, static_cast<std::uint32_t>(rng.next_u64()));
  }
  return f;
}

// ------------------------------------------------------------------ Frame

TEST(Frame, ByteSerializationRoundTrip) {
  Rng rng(1);
  const Frame f = random_frame(rng, 81);
  EXPECT_EQ(Frame::from_bytes(f.to_bytes()), f);
}

TEST(Frame, ByteSizeIsFourPerWord) {
  EXPECT_EQ(Frame(81).to_bytes().size(), 324u);
}

TEST(Frame, BitManipulation) {
  Frame f(2);
  f.set_bit(0, true);
  f.set_bit(33, true);
  EXPECT_EQ(f.word(0), 1u);
  EXPECT_EQ(f.word(1), 2u);
  EXPECT_TRUE(f.get_bit(33));
  f.flip_bit(33);
  EXPECT_FALSE(f.get_bit(33));
  EXPECT_EQ(f.word(1), 0u);
}

TEST(Frame, ApplyMaskClearsRegisterBits) {
  Frame f(1, 0xffffffff);
  FrameMask m(1, 0xffffffff);
  m.set_bit(5, false);
  m.set_bit(31, false);
  const Frame masked = apply_mask(f, m);
  EXPECT_FALSE(masked.get_bit(5));
  EXPECT_FALSE(masked.get_bit(31));
  EXPECT_TRUE(masked.get_bit(0));
}

TEST(Frame, MaskedEqualIgnoresRegisterBits) {
  Rng rng(2);
  const Frame a = random_frame(rng, 4);
  Frame b = a;
  FrameMask mask(4, 0xffffffff);
  mask.set_bit(17, false);
  b.flip_bit(17);  // differs only at a register position
  EXPECT_TRUE(masked_equal(a, b, mask));
  b.flip_bit(40);  // now differs at a config position
  EXPECT_FALSE(masked_equal(a, b, mask));
}

TEST(Frame, ApplyMaskIsIdempotent) {
  Rng rng(3);
  const Frame f = random_frame(rng, 8);
  FrameMask m(8, 0xffffffff);
  for (int i = 0; i < 30; ++i) {
    m.set_bit(static_cast<std::uint32_t>(rng.below(8 * 32)), false);
  }
  const Frame once = apply_mask(f, m);
  EXPECT_EQ(apply_mask(once, m), once);
}

// ----------------------------------------------------------------- Packets

TEST(Packets, WriterParserRoundTrip) {
  PacketWriter w;
  w.sync();
  w.noop(2);
  w.write_idcode(0x0424A093);
  w.cmd(CmdOp::kWcfg);
  w.write_far(fabric::FrameAddress{fabric::BlockType::kLogic, 1, 2, 3});
  const std::vector<std::uint32_t> payload(8, 0xdeadbeef);
  w.write_frames(payload);
  w.crc(stream_crc(payload));
  w.cmd(CmdOp::kDesync);

  auto parsed = parse_packets(w.words());
  ASSERT_TRUE(parsed.ok()) << parsed.message();
  const auto& ops = parsed.value();
  ASSERT_EQ(ops.size(), 9u);
  EXPECT_TRUE(std::holds_alternative<OpSync>(ops[0]));
  EXPECT_TRUE(std::holds_alternative<OpNoop>(ops[1]));
  EXPECT_TRUE(std::holds_alternative<OpNoop>(ops[2]));
  EXPECT_EQ(std::get<OpWriteIdcode>(ops[3]).idcode, 0x0424A093u);
  EXPECT_EQ(std::get<OpCmd>(ops[4]).op, CmdOp::kWcfg);
  EXPECT_EQ(std::get<OpWriteFar>(ops[5]).address,
            (fabric::FrameAddress{fabric::BlockType::kLogic, 1, 2, 3}));
  EXPECT_EQ(std::get<OpWriteFrames>(ops[6]).words, payload);
  EXPECT_TRUE(std::holds_alternative<OpCrc>(ops[7]));
  EXPECT_EQ(std::get<OpCmd>(ops[8]).op, CmdOp::kDesync);
}

TEST(Packets, LongBurstUsesType2) {
  PacketWriter w;
  w.sync();
  w.cmd(CmdOp::kWcfg);
  const std::vector<std::uint32_t> payload(5'000, 0xabcdef01);
  w.write_frames(payload);
  auto parsed = parse_packets(w.words());
  ASSERT_TRUE(parsed.ok()) << parsed.message();
  bool found = false;
  for (const auto& op : parsed.value()) {
    if (const auto* wr = std::get_if<OpWriteFrames>(&op)) {
      EXPECT_EQ(wr->words.size(), 5'000u);
      found = true;
    }
  }
  EXPECT_TRUE(found);
}

TEST(Packets, LongReadRequestUsesType2) {
  PacketWriter w;
  w.sync();
  w.read_request(100'000);
  auto parsed = parse_packets(w.words());
  ASSERT_TRUE(parsed.ok()) << parsed.message();
  ASSERT_EQ(parsed.value().size(), 2u);
  EXPECT_EQ(std::get<OpReadRequest>(parsed.value()[1]).word_count, 100'000u);
}

TEST(Packets, RejectsDataBeforeSync) {
  const std::vector<std::uint32_t> words = {0x12345678, kSyncWord};
  EXPECT_FALSE(parse_packets(words).ok());
}

TEST(Packets, RejectsTruncatedPayload) {
  PacketWriter w;
  w.sync();
  w.write_frames(std::vector<std::uint32_t>(8, 1));
  auto words = w.words();
  words.pop_back();  // drop one payload word
  EXPECT_FALSE(parse_packets(words).ok());
}

TEST(Packets, RejectsUnknownCmd) {
  // Hand-build a CMD write with an unsupported opcode value.
  std::vector<std::uint32_t> words = {kSyncWord,
                                      (0x1u << 29) | (0x2u << 27) | (4u << 13) | 1,
                                      0x7f};
  EXPECT_FALSE(parse_packets(words).ok());
}

TEST(Packets, RejectsUnknownRegisterWrite) {
  std::vector<std::uint32_t> words = {
      kSyncWord, (0x1u << 29) | (0x2u << 27) | (9u << 13) | 1, 0};
  EXPECT_FALSE(parse_packets(words).ok());
}

TEST(Packets, EmptyStreamParsesToNothing) {
  auto parsed = parse_packets(std::span<const std::uint32_t>{});
  ASSERT_TRUE(parsed.ok());
  EXPECT_TRUE(parsed.value().empty());
}

TEST(Packets, WordsFromBytesRejectsMisaligned) {
  EXPECT_FALSE(words_from_bytes(Bytes{1, 2, 3}).ok());
  EXPECT_TRUE(words_from_bytes(Bytes{1, 2, 3, 4}).ok());
}

TEST(Packets, StreamCrcDetectsChange) {
  std::vector<std::uint32_t> words = {1, 2, 3, 4};
  const std::uint32_t before = stream_crc(words);
  words[2] ^= 0x100;
  EXPECT_NE(before, stream_crc(words));
}

// ------------------------------------------------------------------ BitGen

TEST(BitGen, GenerateIsDeterministic) {
  const BitGen gen(test_device());
  const fabric::FrameRange range{4, 12};
  const DesignSpec spec{"app-v1", 7};
  EXPECT_EQ(gen.generate(range, spec), gen.generate(range, spec));
}

TEST(BitGen, DifferentDesignsDiffer) {
  const BitGen gen(test_device());
  const fabric::FrameRange range{0, 16};
  const auto a = gen.generate(range, {"app-v1", 7});
  const auto b = gen.generate(range, {"app-v2", 7});
  EXPECT_NE(a.frames, b.frames);
}

TEST(BitGen, DifferentSeedsDiffer) {
  const BitGen gen(test_device());
  const fabric::FrameRange range{0, 16};
  EXPECT_NE(gen.generate(range, {"app", 1}).frames,
            gen.generate(range, {"app", 2}).frames);
}

TEST(BitGen, MaskIsArchitecturalNotDesignSpecific) {
  const BitGen gen(test_device());
  const fabric::FrameRange range{0, 16};
  const auto a = gen.generate(range, {"app-v1", 7});
  const auto b = gen.generate(range, {"app-v2", 99});
  EXPECT_EQ(a.masks, b.masks);
  for (std::uint32_t i = 0; i < range.count; ++i) {
    EXPECT_EQ(a.masks[i], architectural_mask(test_device(), range.first + i));
  }
}

TEST(BitGen, MaskDensityIsRoughlyTwoPercent) {
  const auto dev = fabric::DeviceModel::xc6vlx240t();
  const FrameMask mask = architectural_mask(dev, 1'000);
  std::uint32_t zeros = 0;
  for (std::uint32_t b = 0; b < mask.bit_count(); ++b) zeros += !mask.get_bit(b);
  // 2% of 2,592 bits = ~52 positions (draws may collide, so <=).
  EXPECT_GT(zeros, 30u);
  EXPECT_LE(zeros, 52u);
}

TEST(BitGen, NonceFrameEmbedsNonce) {
  const BitGen gen(test_device());
  const ConfigImage image = gen.nonce_frame(0x0123456789abcdefULL);
  ASSERT_EQ(image.size(), 1u);
  EXPECT_EQ(image.frames[0].word(0), 0x01234567u);
  EXPECT_EQ(image.frames[0].word(1), 0x89abcdefu);
  // Nonce bits are configuration bits: the mask keeps them all.
  EXPECT_EQ(image.masks[0], FrameMask(test_device().geometry().words_per_frame(),
                                      0xffffffff));
}

TEST(BitGen, AssembleParsesBack) {
  const BitGen gen(test_device());
  const fabric::FrameRange range{4, 3};
  const ConfigImage image = gen.generate(range, {"app", 1});
  const auto words = gen.assemble(image, range.first, 0x1234);
  auto parsed = parse_packets(words);
  ASSERT_TRUE(parsed.ok()) << parsed.message();
  // The payload must contain all three frames back to back.
  for (const auto& op : parsed.value()) {
    if (const auto* wr = std::get_if<OpWriteFrames>(&op)) {
      ASSERT_EQ(wr->words.size(), 3u * 8u);
      for (std::uint32_t f = 0; f < 3; ++f) {
        for (std::uint32_t w = 0; w < 8; ++w) {
          EXPECT_EQ(wr->words[f * 8 + w], image.frames[f].word(w));
        }
      }
    }
  }
}

TEST(BitGen, SingleFrameStreamIsSelfContained) {
  const BitGen gen(test_device());
  Rng rng(5);
  const Frame frame = random_frame(rng, 8);
  const auto words = gen.assemble_single_frame(frame, 9, 0x1234);
  auto parsed = parse_packets(words);
  ASSERT_TRUE(parsed.ok()) << parsed.message();
  bool saw_far = false, saw_frame = false;
  for (const auto& op : parsed.value()) {
    if (const auto* far = std::get_if<OpWriteFar>(&op)) {
      EXPECT_EQ(test_device().geometry().linear_index(far->address), 9u);
      saw_far = true;
    }
    if (const auto* wr = std::get_if<OpWriteFrames>(&op)) {
      EXPECT_EQ(wr->words, frame.words());
      saw_frame = true;
    }
  }
  EXPECT_TRUE(saw_far);
  EXPECT_TRUE(saw_frame);
}

TEST(Fnv1a, KnownValuesAndSeparation) {
  EXPECT_EQ(fnv1a(""), 0xcbf29ce484222325ULL);
  EXPECT_NE(fnv1a("a"), fnv1a("b"));
  EXPECT_NE(fnv1a("ab"), fnv1a("ba"));
}

// Property sweep: bitgen images always shape-match their range.
class BitGenRangeSweep : public ::testing::TestWithParam<std::uint32_t> {};

TEST_P(BitGenRangeSweep, ImageShapeMatchesRange) {
  const BitGen gen(test_device());
  const fabric::FrameRange range{0, GetParam()};
  const ConfigImage image = gen.generate(range, {"shape", 3});
  EXPECT_EQ(image.frames.size(), GetParam());
  EXPECT_EQ(image.masks.size(), GetParam());
  for (const Frame& f : image.frames) EXPECT_EQ(f.size(), 8u);
}

INSTANTIATE_TEST_SUITE_P(Sizes, BitGenRangeSweep,
                         ::testing::Values(1u, 2u, 5u, 12u, 16u));

}  // namespace
}  // namespace sacha::bitstream
