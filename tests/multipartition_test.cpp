// Tests for multi-dynamic-partition floorplans (§2.1.2: "there can be one
// or more run-time configurable partitions"): the application spans every
// dynamic region, the nonce keeps its own slot, and the protocol covers
// and protects all regions.
#include <gtest/gtest.h>

#include "attacks/env.hpp"
#include "core/session.hpp"

namespace sacha::core {
namespace {

/// Small device split as: static [0,4), dynA [4,9), static island [9,10),
/// dynB [10,16). Two dynamic regions separated by static frames.
fabric::Floorplan split_plan() {
  fabric::Floorplan plan(fabric::DeviceModel::small_test_device());
  plan.add_partition({"StatPart",
                      fabric::PartitionKind::kStatic,
                      fabric::FrameRange{0, 4},
                      {.clb = 18, .bram18 = 2, .iob = 4, .dcm = 1, .icap = 1}});
  plan.add_partition({"DynA",
                      fabric::PartitionKind::kDynamic,
                      fabric::FrameRange{4, 5},
                      {.clb = 40, .bram18 = 3, .iob = 6}});
  plan.add_partition({"StatIsland",
                      fabric::PartitionKind::kStatic,
                      fabric::FrameRange{9, 1},
                      {.clb = 2}});
  plan.add_partition({"DynB",
                      fabric::PartitionKind::kDynamic,
                      fabric::FrameRange{10, 6},
                      {.clb = 40, .bram18 = 3, .iob = 6, .dcm = 1}});
  return plan;
}

crypto::AesKey key() {
  crypto::AesKey k{};
  k.fill(0x44);
  return k;
}

struct Rig {
  Rig()
      : verifier(split_plan(), {"static-v1", 1}, {"app-v1", 1}, key(), 1),
        prover(fabric::DeviceModel::small_test_device(), "split-dev", key()) {
    // BootMem covers the base static region; the static island belongs to
    // the static design too and is provisioned the same way.
    prover.boot(verifier.static_image());
    for (std::uint32_t f = 9; f < 10; ++f) {
      prover.memory().write_frame(f, verifier.golden_frame(f));
    }
  }
  SachaVerifier verifier;
  SachaProver prover;
};

TEST(MultiPartition, PlanValidates) {
  EXPECT_TRUE(split_plan().validate().ok());
  EXPECT_EQ(split_plan().frames_of_kind(fabric::PartitionKind::kDynamic), 11u);
}

TEST(MultiPartition, NonceLivesInLastDynamicRegion) {
  Rig rig;
  EXPECT_EQ(rig.verifier.nonce_frame_index(), 15u);
}

TEST(MultiPartition, HonestDeviceAttests) {
  Rig rig;
  const AttestationReport report = run_attestation(rig.verifier, rig.prover);
  EXPECT_TRUE(report.verdict.ok()) << report.verdict.detail;
  // 5 (DynA) + 5 (DynB minus nonce) app configs + 1 nonce.
  EXPECT_EQ(report.ledger.count(actions::kA1), 11u);
  // Readback still covers every frame of the device.
  EXPECT_EQ(report.ledger.count(actions::kA3), 16u);
}

TEST(MultiPartition, BothRegionsAreConfigured) {
  Rig rig;
  ASSERT_TRUE(run_attestation(rig.verifier, rig.prover).verdict.ok());
  for (std::uint32_t f : {4u, 8u, 10u, 14u}) {
    EXPECT_EQ(rig.prover.memory().config_frame(f), rig.verifier.golden_frame(f))
        << "frame " << f;
  }
}

TEST(MultiPartition, TamperInEitherRegionDetected) {
  for (std::uint32_t target : {5u, 12u}) {
    Rig rig;
    SessionHooks hooks;
    hooks.after_config = [target](SachaProver& p) {
      bitstream::Frame f = p.memory().config_frame(target);
      f.flip_bit(7);
      p.memory().write_frame(target, f);
    };
    const AttestationReport report =
        run_attestation(rig.verifier, rig.prover, {}, hooks);
    EXPECT_FALSE(report.verdict.ok()) << "target " << target;
  }
}

TEST(MultiPartition, StaticIslandTamperDetected) {
  Rig rig;
  SessionHooks hooks;
  hooks.after_config = [](SachaProver& p) {
    bitstream::Frame f = p.memory().config_frame(9);  // the island
    f.flip_bit(2);
    p.memory().write_frame(9, f);
  };
  const AttestationReport report =
      run_attestation(rig.verifier, rig.prover, {}, hooks);
  EXPECT_FALSE(report.verdict.ok());
}

TEST(MultiPartition, ChunkedConfigNeverStraddlesRegions) {
  Rig rig;
  core::VerifierOptions options;
  options.frames_per_config = 4;
  SachaVerifier verifier(split_plan(), {"static-v1", 1}, {"app-v1", 1}, key(), 2,
                         options);
  SachaProver prover(fabric::DeviceModel::small_test_device(), "split", key());
  prover.boot(verifier.static_image());
  prover.memory().write_frame(9, verifier.golden_frame(9));
  const AttestationReport report = run_attestation(verifier, prover);
  EXPECT_TRUE(report.verdict.ok()) << report.verdict.detail;
  // DynA: ceil(5/4)=2 chunks; DynB-app: ceil(5/4)=2 chunks; +1 nonce.
  EXPECT_EQ(report.ledger.count(actions::kA1), 5u);
  // The static island at frame 9 must be untouched by configuration.
  EXPECT_EQ(prover.memory().config_frame(9), verifier.golden_frame(9));
}

TEST(MultiPartition, RefreshSessionsWork) {
  Rig rig;
  ASSERT_TRUE(run_attestation(rig.verifier, rig.prover).verdict.ok());
  rig.verifier.set_refresh_only(true);
  const AttestationReport refresh = run_attestation(rig.verifier, rig.prover);
  EXPECT_TRUE(refresh.verdict.ok()) << refresh.verdict.detail;
  EXPECT_EQ(refresh.ledger.count(actions::kA1), 1u);
}

}  // namespace
}  // namespace sacha::core
