// Tests for the state-attestation extension (§8 future work #1): honest
// runs pass, every class of application-state tampering is detected, and —
// the motivating limitation experiment — the same tampering is invisible
// to baseline SACHa.
#include <gtest/gtest.h>

#include "core/state_attest.hpp"
#include "softcore/assembler.hpp"

namespace sacha::core {
namespace {

namespace sc = sacha::softcore;

const char* kFirmware = R"(
    ldi r1, 1
    ldi r3, 1000
  loop:
    add r2, r2, r1
    addi r1, r1, 1
    st  r2, r0, 3
    bne r1, r3, loop
    halt
)";

struct Rig {
  Rig()
      : device(fabric::DeviceModel::softcore_test_device()),
        plan(make_plan(device)),
        map(sc::StateMap::build(device, fabric::FrameRange{6, 29}).take()),
        program(sc::assemble(kFirmware).take()),
        verifier(plan, bitstream::DesignSpec{"static-v1", 1},
                 bitstream::DesignSpec{"soc-app-v1", 1}, key(), 1),
        prover(device, "soc-1", key()) {
    prover.boot(verifier.static_image());
  }

  static fabric::Floorplan make_plan(const fabric::DeviceModel& device) {
    fabric::Floorplan plan(device);
    plan.add_partition({"StatPart",
                        fabric::PartitionKind::kStatic,
                        fabric::FrameRange{0, 6},
                        {.clb = 60, .bram18 = 4, .iob = 8, .dcm = 1, .icap = 1}});
    plan.add_partition({"DynPart",
                        fabric::PartitionKind::kDynamic,
                        fabric::FrameRange{6, 30},
                        {.clb = 340, .bram18 = 12, .iob = 24, .dcm = 1}});
    return plan;
  }

  static crypto::AesKey key() {
    crypto::AesKey k{};
    k.fill(0x5a);
    return k;
  }

  fabric::DeviceModel device;
  fabric::Floorplan plan;
  sc::StateMap map;
  sc::Program program;
  SachaVerifier verifier;
  SachaProver prover;
};

TEST(StateAttest, HonestDevicePasses) {
  Rig rig;
  sc::SoftCore device_cpu(rig.program);
  const StateAttestReport report = run_state_attestation(
      rig.verifier, rig.prover, device_cpu, rig.program, rig.map);
  EXPECT_TRUE(report.ok()) << report.detail;
  EXPECT_TRUE(report.base.verdict.ok());
  EXPECT_TRUE(report.state_ok);
  EXPECT_TRUE(report.state_mac_ok);
  EXPECT_GT(report.frames_checked, 0u);
}

TEST(StateAttest, ExpectedStateMatchesGoldenExecution) {
  Rig rig;
  sc::SoftCore device_cpu(rig.program);
  StateAttestOptions options;
  options.cpu_steps = 128;
  const StateAttestReport report = run_state_attestation(
      rig.verifier, rig.prover, device_cpu, rig.program, rig.map, options);
  ASSERT_TRUE(report.ok()) << report.detail;
  EXPECT_EQ(report.expected_state, device_cpu.state());
}

TEST(StateAttest, VariousStepCountsPass) {
  for (std::uint64_t steps : {0ull, 1ull, 17ull, 64ull, 5'000ull}) {
    Rig rig;
    sc::SoftCore device_cpu(rig.program);
    StateAttestOptions options;
    options.cpu_steps = steps;
    const StateAttestReport report = run_state_attestation(
        rig.verifier, rig.prover, device_cpu, rig.program, rig.map, options);
    EXPECT_TRUE(report.ok()) << "steps=" << steps << ": " << report.detail;
  }
}

TEST(StateAttest, HijackedPcDetected) {
  Rig rig;
  sc::SoftCore device_cpu(rig.program);
  device_cpu.run(10);
  device_cpu.mutable_state().pc = 0;  // control-flow hijack mid-run
  const StateAttestReport report = run_state_attestation(
      rig.verifier, rig.prover, device_cpu, rig.program, rig.map,
      StateAttestOptions{.cpu_steps = 20});
  EXPECT_TRUE(report.base.verdict.ok()) << "configuration itself is untouched";
  EXPECT_FALSE(report.state_ok) << "but the execution state diverged";
}

TEST(StateAttest, CorruptedRegisterDetected) {
  Rig rig;
  sc::SoftCore device_cpu(rig.program);
  const StateAttestReport honest = run_state_attestation(
      rig.verifier, rig.prover, device_cpu, rig.program, rig.map);
  ASSERT_TRUE(honest.ok());

  // A fault/glitch flips one register bit after the agreed execution; the
  // next capture must notice.
  Rig rig2;
  sc::SoftCore glitched(rig2.program);
  glitched.run(64);
  glitched.mutable_state().regs[2] ^= 0x0100;
  const StateAttestReport report = run_state_attestation(
      rig2.verifier, rig2.prover, glitched, rig2.program, rig2.map,
      StateAttestOptions{.cpu_steps = 0});  // state already advanced
  EXPECT_FALSE(report.state_ok);
}

TEST(StateAttest, WrongFirmwareDetectedByStatePhase) {
  Rig rig;
  const sc::Program evil = sc::assemble(R"(
    ldi r1, 0xdead
    halt
  )").take();
  sc::SoftCore device_cpu(evil);  // device runs different code
  const StateAttestReport report = run_state_attestation(
      rig.verifier, rig.prover, device_cpu, rig.program, rig.map);
  EXPECT_FALSE(report.state_ok);
}

TEST(StateAttest, LimitationExperiment_BaselineSachaMissesStateTamper) {
  // The gap this extension closes: baseline SACHa masks flip-flop bits, so
  // a pure state compromise passes; state attestation catches it.
  Rig rig;
  sc::SoftCore hijacked(rig.program);
  hijacked.run(64);
  hijacked.mutable_state().pc = 0;
  hijacked.mutable_state().regs[0] = 0xbeef;

  // Baseline: sync the compromised state into the device and run plain
  // SACHa — it passes, because Msk blanks every state bit.
  rig.map.sync_to_memory(hijacked.state(), rig.prover.memory());
  const AttestationReport base = run_attestation(rig.verifier, rig.prover);
  EXPECT_TRUE(base.verdict.ok()) << "baseline is blind to state";

  // Extension: the same compromise is caught.
  Rig rig2;
  sc::SoftCore hijacked2(rig2.program);
  hijacked2.run(64);
  hijacked2.mutable_state().pc = 0;
  hijacked2.mutable_state().regs[0] = 0xbeef;
  const StateAttestReport ext = run_state_attestation(
      rig2.verifier, rig2.prover, hijacked2, rig2.program, rig2.map,
      StateAttestOptions{.cpu_steps = 0});
  EXPECT_FALSE(ext.state_ok) << "extension sees the hijack";
}

TEST(StateAttest, FailedBaseShortCircuits) {
  Rig rig;
  rig.prover.set_key(Rig::key());  // fine
  sc::SoftCore device_cpu(rig.program);
  SessionHooks hooks;
  hooks.after_config = [](SachaProver& p) {
    bitstream::Frame f = p.memory().config_frame(8);
    f.flip_bit(2);
    p.memory().write_frame(8, f);
  };
  const StateAttestReport report = run_state_attestation(
      rig.verifier, rig.prover, device_cpu, rig.program, rig.map, {}, {}, hooks);
  EXPECT_FALSE(report.ok());
  EXPECT_FALSE(report.base.verdict.ok());
  EXPECT_EQ(report.frames_checked, 0u) << "no state phase after failed base";
}

TEST(StateAttest, SkipBaseRunsStatePhaseOnly) {
  Rig rig;
  // Without the base run the dynamic region is unconfigured, so imprint
  // references must come from the golden image anyway; configure manually.
  rig.verifier.begin();
  sc::SoftCore device_cpu(rig.program);
  StateAttestOptions options;
  options.skip_base = true;
  options.cpu_steps = 8;
  // Configure the dynamic region so golden compare has matching config bits.
  const bitstream::BitGen gen(rig.device);
  const auto app = gen.generate(fabric::FrameRange{6, 29}, {"soc-app-v1", 1});
  for (std::uint32_t i = 0; i < 29; ++i) {
    rig.prover.memory().write_frame(6 + i, app.frames[i]);
  }
  const StateAttestReport report = run_state_attestation(
      rig.verifier, rig.prover, device_cpu, rig.program, rig.map, options);
  EXPECT_TRUE(report.state_ok) << report.detail;
  EXPECT_TRUE(report.state_mac_ok);
}

}  // namespace
}  // namespace sacha::core
