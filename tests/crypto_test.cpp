// Tests for sacha_crypto against the official vectors:
//  - AES-128: FIPS-197 Appendix B/C.1
//  - AES-CMAC: RFC 4493 §4 examples 1-4
//  - SHA-256: FIPS 180-4 / NIST CAVP short messages
//  - HMAC-SHA256: RFC 4231 test cases
// plus structural property sweeps (streaming == one-shot, key separation,
// constant-time equality semantics, PRG determinism).
#include <gtest/gtest.h>

#include <cstdlib>

#include "common/rng.hpp"
#include "crypto/aes.hpp"
#include "crypto/cmac.hpp"
#include "crypto/ct.hpp"
#include "crypto/hmac.hpp"
#include "crypto/prg.hpp"
#include "crypto/sha256.hpp"

namespace sacha::crypto {
namespace {

Bytes hex(std::string_view h) {
  auto v = from_hex(h);
  EXPECT_TRUE(v.has_value()) << h;
  return *v;
}

std::string mac_hex(const AesBlock& m) { return to_hex(m); }
std::string digest_hex(const Sha256Digest& d) { return to_hex(d); }

// ---------------------------------------------------------------- AES-128

TEST(Aes128, Fips197AppendixB) {
  const Aes128 aes(to_aes_key(hex("2b7e151628aed2a6abf7158809cf4f3c")));
  AesBlock block{};
  const Bytes pt = hex("3243f6a8885a308d313198a2e0370734");
  std::copy(pt.begin(), pt.end(), block.begin());
  aes.encrypt_block(block);
  EXPECT_EQ(to_hex(block), "3925841d02dc09fbdc118597196a0b32");
}

TEST(Aes128, Fips197AppendixC1) {
  const Aes128 aes(to_aes_key(hex("000102030405060708090a0b0c0d0e0f")));
  AesBlock block{};
  const Bytes pt = hex("00112233445566778899aabbccddeeff");
  std::copy(pt.begin(), pt.end(), block.begin());
  aes.encrypt_block(block);
  EXPECT_EQ(to_hex(block), "69c4e0d86a7b0430d8cdb78070b4c55a");
}

TEST(Aes128, EncryptIsDeterministic) {
  const Aes128 aes(to_aes_key(hex("00000000000000000000000000000000")));
  AesBlock in{};
  EXPECT_EQ(aes.encrypt(in), aes.encrypt(in));
}

TEST(Aes128, DifferentKeysDifferentCiphertexts) {
  AesBlock in{};
  const auto c1 = Aes128(to_aes_key(hex("00000000000000000000000000000001"))).encrypt(in);
  const auto c2 = Aes128(to_aes_key(hex("00000000000000000000000000000002"))).encrypt(in);
  EXPECT_NE(c1, c2);
}

// ------------------------------------------------------- AES fast-path tiers

std::vector<AesImpl> fast_tiers() {
  std::vector<AesImpl> tiers = {AesImpl::kTtable};
  if (Aes128::aesni_supported()) tiers.push_back(AesImpl::kAesni);
  return tiers;
}

TEST(Aes128Tiers, AutoResolvesToARunnableTier) {
  const AesImpl resolved = Aes128::resolve(AesImpl::kAuto);
  EXPECT_NE(resolved, AesImpl::kAuto);
  // SACHA_AES_TIER redirects kAuto to the named tier (differential CI runs
  // pin the reference tier this way), so the fast-tier expectations below
  // only hold for an unpinned environment.
  const char* pin = std::getenv("SACHA_AES_TIER");
  const std::string_view pinned = pin != nullptr ? pin : "";
  if (pinned == "reference") {
    EXPECT_EQ(resolved, AesImpl::kReference);
    return;
  }
  if (pinned == "ttable") {
    EXPECT_EQ(resolved, AesImpl::kTtable);
    return;
  }
  EXPECT_NE(resolved, AesImpl::kReference);  // auto always picks a fast tier
  if (!Aes128::aesni_supported()) {
    EXPECT_EQ(resolved, AesImpl::kTtable);
  }
}

TEST(Aes128Tiers, Fips197VectorsOnEveryTier) {
  struct Vector {
    const char* key;
    const char* plaintext;
    const char* ciphertext;
  };
  const Vector vectors[] = {
      {"2b7e151628aed2a6abf7158809cf4f3c", "3243f6a8885a308d313198a2e0370734",
       "3925841d02dc09fbdc118597196a0b32"},
      {"000102030405060708090a0b0c0d0e0f", "00112233445566778899aabbccddeeff",
       "69c4e0d86a7b0430d8cdb78070b4c55a"},
  };
  for (AesImpl impl : fast_tiers()) {
    for (const Vector& v : vectors) {
      const Aes128 aes(to_aes_key(hex(v.key)), impl);
      ASSERT_EQ(aes.impl(), impl);
      AesBlock block{};
      const Bytes pt = hex(v.plaintext);
      std::copy(pt.begin(), pt.end(), block.begin());
      aes.encrypt_block(block);
      EXPECT_EQ(to_hex(block), v.ciphertext) << to_string(impl);
    }
  }
}

TEST(Aes128Tiers, MatchReferenceOn10kRandomBlocks) {
  Rng rng(4242);
  for (int trial = 0; trial < 100; ++trial) {
    const Bytes key_bytes = rng.bytes(kAesKeySize);
    const AesKey key = to_aes_key(key_bytes);
    const Aes128 reference(key, AesImpl::kReference);
    std::vector<Aes128> fast;
    for (AesImpl impl : fast_tiers()) fast.emplace_back(key, impl);
    for (int block_i = 0; block_i < 100; ++block_i) {
      const Bytes pt = rng.bytes(kAesBlockSize);
      AesBlock block{};
      std::copy(pt.begin(), pt.end(), block.begin());
      const AesBlock expected = reference.encrypt(block);
      for (const Aes128& aes : fast) {
        EXPECT_EQ(aes.encrypt(block), expected)
            << to_string(aes.impl()) << " key=" << to_hex(key_bytes)
            << " pt=" << to_hex(pt);
      }
    }
  }
}

TEST(Aes128Tiers, CbcMacAbsorbMatchesBlockwiseEncrypt) {
  Rng rng(777);
  const AesKey key = to_aes_key(rng.bytes(kAesKeySize));
  const Aes128 reference(key, AesImpl::kReference);
  for (AesImpl impl : fast_tiers()) {
    const Aes128 aes(key, impl);
    for (std::size_t nblocks : {1u, 2u, 5u, 32u}) {
      const Bytes msg = rng.bytes(nblocks * kAesBlockSize);
      AesBlock expected{};
      reference.cbc_mac_absorb(expected, msg.data(), nblocks);
      AesBlock got{};
      aes.cbc_mac_absorb(got, msg.data(), nblocks);
      EXPECT_EQ(got, expected) << to_string(impl) << " nblocks=" << nblocks;
    }
  }
}

// --------------------------------------------------------------- AES-CMAC

const char* kRfc4493Key = "2b7e151628aed2a6abf7158809cf4f3c";

struct CmacVector {
  const char* message_hex;
  const char* tag_hex;
};

class CmacRfc4493 : public ::testing::TestWithParam<CmacVector> {};

TEST_P(CmacRfc4493, MatchesVector) {
  const AesKey key = to_aes_key(hex(kRfc4493Key));
  const Bytes msg = hex(GetParam().message_hex);
  EXPECT_EQ(mac_hex(Cmac::compute(key, msg)), GetParam().tag_hex);
}

INSTANTIATE_TEST_SUITE_P(
    Vectors, CmacRfc4493,
    ::testing::Values(
        CmacVector{"", "bb1d6929e95937287fa37d129b756746"},
        CmacVector{"6bc1bee22e409f96e93d7e117393172a",
                   "070a16b46b4d4144f79bdd9dd04a287c"},
        CmacVector{"6bc1bee22e409f96e93d7e117393172aae2d8a571e03ac9c9eb76fac45af8e51"
                   "30c81c46a35ce411",
                   "dfa66747de9ae63030ca32611497c827"},
        CmacVector{"6bc1bee22e409f96e93d7e117393172aae2d8a571e03ac9c9eb76fac45af8e51"
                   "30c81c46a35ce411e5fbc1191a0a52eff69f2445df4f9b17ad2b417be66c3710",
                   "51f0bebf7e3b9d92fc49741779363cfe"}));

TEST(Cmac, StreamingMatchesOneShot) {
  const AesKey key = to_aes_key(hex(kRfc4493Key));
  Rng rng(21);
  for (int trial = 0; trial < 40; ++trial) {
    const Bytes msg = rng.bytes(static_cast<std::size_t>(rng.below(300)));
    Cmac streaming(key);
    std::size_t pos = 0;
    while (pos < msg.size()) {
      const std::size_t chunk =
          std::min<std::size_t>(1 + rng.below(40), msg.size() - pos);
      streaming.update(ByteSpan(msg).subspan(pos, chunk));
      pos += chunk;
    }
    EXPECT_EQ(streaming.finalize(), Cmac::compute(key, msg));
  }
}

TEST(Cmac, ResetRestartsCleanly) {
  const AesKey key = to_aes_key(hex(kRfc4493Key));
  Cmac cmac(key);
  cmac.update(hex("6bc1bee22e409f96e93d7e117393172a"));
  (void)cmac.finalize();
  cmac.reset();
  cmac.update(hex("6bc1bee22e409f96e93d7e117393172a"));
  EXPECT_EQ(mac_hex(cmac.finalize()), "070a16b46b4d4144f79bdd9dd04a287c");
}

TEST(Cmac, KeySeparation) {
  const Bytes msg = hex("00112233445566778899aabbccddeeff");
  const auto t1 = Cmac::compute(to_aes_key(hex("000102030405060708090a0b0c0d0e0f")), msg);
  const auto t2 = Cmac::compute(to_aes_key(hex("0f0102030405060708090a0b0c0d0e0f")), msg);
  EXPECT_NE(t1, t2);
}

TEST(Cmac, SingleBitFlipChangesTag) {
  const AesKey key = to_aes_key(hex(kRfc4493Key));
  Rng rng(22);
  Bytes msg = rng.bytes(324);  // one configuration frame
  const auto before = Cmac::compute(key, msg);
  msg[200] ^= 0x01;
  EXPECT_NE(before, Cmac::compute(key, msg));
}

TEST(Cmac, ChunkedUpdateAllSplitSizes) {
  // Property: feeding a 3-block message in fixed-size chunks of every split
  // size 1..33 gives the one-shot tag, on every tier — exercises the bulk
  // path, the staging buffer, and every interaction between them.
  const AesKey key = to_aes_key(hex(kRfc4493Key));
  Rng rng(31);
  const Bytes msg = rng.bytes(3 * kAesBlockSize);
  const Mac expected = Cmac::compute(key, msg);
  std::vector<AesImpl> tiers = {AesImpl::kReference, AesImpl::kTtable};
  if (Aes128::aesni_supported()) tiers.push_back(AesImpl::kAesni);
  for (AesImpl impl : tiers) {
    for (std::size_t split = 1; split <= 33; ++split) {
      Cmac streaming(key, impl);
      std::size_t pos = 0;
      while (pos < msg.size()) {
        const std::size_t chunk = std::min(split, msg.size() - pos);
        streaming.update(ByteSpan(msg).subspan(pos, chunk));
        pos += chunk;
      }
      EXPECT_EQ(streaming.finalize(), expected)
          << to_string(impl) << " split=" << split;
    }
  }
}

TEST(Cmac, TiersAgreeOnRfc4493Vectors) {
  const AesKey key = to_aes_key(hex(kRfc4493Key));
  const char* messages[] = {
      "", "6bc1bee22e409f96e93d7e117393172a",
      "6bc1bee22e409f96e93d7e117393172aae2d8a571e03ac9c9eb76fac45af8e51"
      "30c81c46a35ce411",
      "6bc1bee22e409f96e93d7e117393172aae2d8a571e03ac9c9eb76fac45af8e51"
      "30c81c46a35ce411e5fbc1191a0a52eff69f2445df4f9b17ad2b417be66c3710"};
  for (const char* m : messages) {
    const Bytes msg = hex(m);
    Cmac reference(key, AesImpl::kReference);
    reference.update(msg);
    const Mac expected = reference.finalize();
    for (AesImpl impl : {AesImpl::kTtable, AesImpl::kAesni}) {
      Cmac fast(key, impl);  // kAesni degrades to ttable when unsupported
      fast.update(msg);
      EXPECT_EQ(fast.finalize(), expected) << to_string(impl);
    }
  }
}

TEST(Cmac, BlockBoundaryLengths) {
  // Lengths straddling the 16-byte boundary exercise both padding paths.
  const AesKey key = to_aes_key(hex(kRfc4493Key));
  Rng rng(23);
  for (std::size_t len : {15u, 16u, 17u, 31u, 32u, 33u}) {
    const Bytes msg = rng.bytes(len);
    Cmac streaming(key);
    streaming.update(msg);
    EXPECT_EQ(streaming.finalize(), Cmac::compute(key, msg)) << len;
  }
}

TEST(Cmac, WordSpanMatchesByteSerialization) {
  // The word-span path (readback hot loop) must equal the byte path over
  // the big-endian serialization, on every tier, for every word-chunking —
  // including the frame size (81 words = 324 B), whose blocks straddle
  // update calls and keep the staging buffer at every word-aligned phase.
  const AesKey key = to_aes_key(hex(kRfc4493Key));
  Rng rng(41);
  std::vector<std::uint32_t> words(4 * 81);
  for (std::uint32_t& w : words) w = static_cast<std::uint32_t>(rng.next_u64());
  Bytes serialized;
  serialized.reserve(words.size() * 4);
  for (std::uint32_t w : words) put_u32be(serialized, w);

  std::vector<AesImpl> tiers = {AesImpl::kReference, AesImpl::kTtable};
  if (Aes128::aesni_supported()) tiers.push_back(AesImpl::kAesni);
  for (AesImpl impl : tiers) {
    Cmac byte_path(key, impl);
    byte_path.update(serialized);
    const Mac expected = byte_path.finalize();
    for (std::size_t split : {1u, 2u, 3u, 4u, 5u, 7u, 64u, 81u, 324u}) {
      Cmac word_path(key, impl);
      std::size_t pos = 0;
      while (pos < words.size()) {
        const std::size_t chunk = std::min(split, words.size() - pos);
        word_path.update(
            std::span<const std::uint32_t>(words.data() + pos, chunk));
        pos += chunk;
      }
      EXPECT_EQ(word_path.finalize(), expected)
          << to_string(impl) << " split=" << split;
    }
  }
}

TEST(Cmac, MixedByteAndWordUpdates) {
  // Byte updates can leave the staging buffer off a word boundary; word
  // updates arriving next must serialize through the fallback and still
  // match the one-shot byte tag.
  const AesKey key = to_aes_key(hex(kRfc4493Key));
  Rng rng(42);
  std::vector<std::uint32_t> words(81);
  for (std::uint32_t& w : words) w = static_cast<std::uint32_t>(rng.next_u64());
  Bytes word_bytes;
  for (std::uint32_t w : words) put_u32be(word_bytes, w);

  for (std::size_t prefix_len : {1u, 3u, 5u, 15u, 16u, 17u, 21u}) {
    const Bytes prefix = rng.bytes(prefix_len);
    Bytes full = prefix;
    full.insert(full.end(), word_bytes.begin(), word_bytes.end());
    Cmac mixed(key);
    mixed.update(prefix);
    mixed.update(std::span<const std::uint32_t>(words));
    EXPECT_EQ(mixed.finalize(), Cmac::compute(key, full))
        << "prefix=" << prefix_len;
  }
}

// ------------------------------------------- Multi-stream CBC-MAC absorber

std::vector<AesImpl> all_tiers() {
  std::vector<AesImpl> tiers = {AesImpl::kReference, AesImpl::kTtable};
  if (Aes128::aesni_supported()) tiers.push_back(AesImpl::kAesni);
  return tiers;
}

TEST(MultiStreamCbcMac, MatchesSingleStreamAcrossTiersAndRaggedLengths) {
  // The hard invariant of the batched verify lane: interleaving never
  // changes a chaining value. Mixed tiers in one batch, ragged lengths
  // (including empty lanes), random keys and starting states.
  Rng rng(2026);
  const auto tiers = all_tiers();
  for (int trial = 0; trial < 40; ++trial) {
    const auto nstreams = static_cast<std::size_t>(1 + rng.below(10));
    std::vector<Aes128> engines;
    engines.reserve(nstreams);
    std::vector<AesBlock> serial_states(nstreams);
    std::vector<AesBlock> multi_states(nstreams);
    std::vector<std::vector<std::uint32_t>> words(nstreams);
    for (std::size_t i = 0; i < nstreams; ++i) {
      engines.emplace_back(to_aes_key(rng.bytes(kAesKeySize)),
                           tiers[rng.below(tiers.size())]);
      words[i].resize(4 * static_cast<std::size_t>(rng.below(18)));
      for (auto& w : words[i]) w = static_cast<std::uint32_t>(rng.next_u64());
      const Bytes start = rng.bytes(kAesBlockSize);
      std::copy(start.begin(), start.end(), serial_states[i].begin());
      multi_states[i] = serial_states[i];
    }
    std::vector<CbcMacStream> lanes;
    for (std::size_t i = 0; i < nstreams; ++i) {
      engines[i].cbc_mac_absorb_words(serial_states[i], words[i].data(),
                                      words[i].size() / 4);
      lanes.push_back(
          {&engines[i], &multi_states[i], words[i].data(), words[i].size() / 4});
    }
    Aes128::cbc_mac_absorb_words_multi(lanes);
    for (std::size_t i = 0; i < nstreams; ++i) {
      EXPECT_EQ(mac_hex(multi_states[i]), mac_hex(serial_states[i]))
          << "trial=" << trial << " stream=" << i
          << " tier=" << to_string(engines[i].impl())
          << " nblocks=" << words[i].size() / 4;
    }
  }
}

TEST(CmacBatch, MatchesSequentialUpdatesAcrossWidthsAndTiers) {
  // Streams receive ragged chunk sequences (partial blocks everywhere, some
  // streams finish early, some get nothing); adds interleave round-robin
  // and the batch flushes at every width in {1,2,4,8}. Every tag must equal
  // the plain sequential Cmac::update oracle.
  Rng rng(2027);
  const auto tiers = all_tiers();
  for (const std::size_t width : {1u, 2u, 4u, 8u}) {
    const std::size_t nstreams = 7;
    std::vector<Cmac> streams;
    std::vector<Cmac> oracles;
    streams.reserve(nstreams);
    oracles.reserve(nstreams);
    std::vector<std::vector<std::vector<std::uint32_t>>> chunks(nstreams);
    for (std::size_t i = 0; i < nstreams; ++i) {
      const AesKey key = to_aes_key(rng.bytes(kAesKeySize));
      const AesImpl impl = tiers[rng.below(tiers.size())];
      streams.emplace_back(key, impl);
      oracles.emplace_back(key, impl);
      const auto nchunks = static_cast<std::size_t>(rng.below(5));
      chunks[i].resize(nchunks);
      for (auto& c : chunks[i]) {
        c.resize(static_cast<std::size_t>(rng.below(40)));
        for (auto& w : c) w = static_cast<std::uint32_t>(rng.next_u64());
      }
    }
    CmacBatch batch(width);
    EXPECT_EQ(batch.width(), std::min<std::size_t>(width, 8));
    for (std::size_t c = 0;; ++c) {
      bool any = false;
      for (std::size_t i = 0; i < nstreams; ++i) {
        if (c >= chunks[i].size()) continue;
        any = true;
        oracles[i].update(std::span<const std::uint32_t>(chunks[i][c]));
        batch.add(streams[i], std::vector<std::uint32_t>(chunks[i][c]));
      }
      if (!any) break;
    }
    batch.flush();
    EXPECT_EQ(batch.pending_streams(), 0u);
    for (std::size_t i = 0; i < nstreams; ++i) {
      EXPECT_EQ(mac_hex(streams[i].finalize()), mac_hex(oracles[i].finalize()))
          << "width=" << width << " stream=" << i
          << " tier=" << to_string(streams[i].impl());
    }
  }
}

TEST(CmacBatch, FlushTimingNeverChangesTags) {
  // Flushing after every add, once at the end, or at arbitrary points must
  // all produce the sequential tags — the engine flushes whenever a verify
  // batch closes, which is schedule-dependent.
  Rng rng(2028);
  const AesKey k1 = to_aes_key(rng.bytes(kAesKeySize));
  const AesKey k2 = to_aes_key(rng.bytes(kAesKeySize));
  std::vector<std::vector<std::uint32_t>> chunks(6);
  for (auto& c : chunks) {
    c.resize(static_cast<std::size_t>(1 + rng.below(25)));
    for (auto& w : c) w = static_cast<std::uint32_t>(rng.next_u64());
  }
  const auto tag_pair = [&](int flush_every) {
    Cmac a(k1), b(k2);
    CmacBatch batch(4);
    for (std::size_t c = 0; c < chunks.size(); ++c) {
      batch.add(a, std::vector<std::uint32_t>(chunks[c]));
      if (c % 2 == 0) batch.add(b, std::vector<std::uint32_t>(chunks[c]));
      if (flush_every > 0 && (c + 1) % static_cast<std::size_t>(flush_every) == 0) {
        batch.flush();
      }
    }
    batch.flush();
    return std::pair(mac_hex(a.finalize()), mac_hex(b.finalize()));
  };
  const auto expected = tag_pair(1);
  EXPECT_EQ(tag_pair(2), expected);
  EXPECT_EQ(tag_pair(3), expected);
  EXPECT_EQ(tag_pair(0), expected);  // single flush at the end
}

TEST(CmacBatch, ByteOffsetStagingFallsBackScalar) {
  // A byte-path prefix can leave the staging buffer off a word boundary;
  // batched word adds must still match the sequential mixed-update result.
  Rng rng(2029);
  const AesKey key = to_aes_key(hex(kRfc4493Key));
  for (std::size_t prefix_len : {1u, 3u, 7u, 15u, 17u}) {
    const Bytes prefix = rng.bytes(prefix_len);
    std::vector<std::uint32_t> words(33);
    for (auto& w : words) w = static_cast<std::uint32_t>(rng.next_u64());
    Cmac batched(key), oracle(key);
    batched.update(prefix);
    oracle.update(prefix);
    oracle.update(std::span<const std::uint32_t>(words));
    CmacBatch batch(4);
    batch.add(batched, std::vector<std::uint32_t>(words));
    batch.flush();
    EXPECT_EQ(mac_hex(batched.finalize()), mac_hex(oracle.finalize()))
        << "prefix=" << prefix_len;
  }
}

TEST(CmacBatch, OccupancyAccountingCountsLanes) {
  Rng rng(2030);
  const std::size_t nstreams = 7;
  std::vector<Cmac> streams;
  streams.reserve(nstreams);
  CmacBatch batch(4);
  for (std::size_t i = 0; i < nstreams; ++i) {
    streams.emplace_back(to_aes_key(rng.bytes(kAesKeySize)));
    std::vector<std::uint32_t> words(24);
    for (auto& w : words) w = static_cast<std::uint32_t>(rng.next_u64());
    batch.add(streams[i], std::move(words));
  }
  EXPECT_EQ(batch.pending_streams(), nstreams);
  batch.flush();
  // 7 streams at width 4 → one full group and one of three lanes.
  EXPECT_EQ(batch.absorb_calls(), 2u);
  EXPECT_EQ(batch.absorbed_streams(), nstreams);
  for (auto& s : streams) s.finalize();
}

// ---------------------------------------------------------------- SHA-256

TEST(Sha256, EmptyMessage) {
  EXPECT_EQ(digest_hex(Sha256::compute({})),
            "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855");
}

TEST(Sha256, Abc) {
  EXPECT_EQ(digest_hex(Sha256::compute(bytes_of("abc"))),
            "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad");
}

TEST(Sha256, TwoBlockMessage) {
  EXPECT_EQ(digest_hex(Sha256::compute(bytes_of(
                "abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq"))),
            "248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd419db06c1");
}

TEST(Sha256, MillionA) {
  Sha256 h;
  const Bytes chunk(1000, 'a');
  for (int i = 0; i < 1000; ++i) h.update(chunk);
  EXPECT_EQ(digest_hex(h.finalize()),
            "cdc76e5c9914fb9281a1c7e284d73e67f1809a48a497200e046d39ccc7112cd0");
}

TEST(Sha256, StreamingMatchesOneShot) {
  Rng rng(24);
  for (int trial = 0; trial < 30; ++trial) {
    const Bytes msg = rng.bytes(static_cast<std::size_t>(rng.below(500)));
    Sha256 streaming;
    std::size_t pos = 0;
    while (pos < msg.size()) {
      const std::size_t chunk =
          std::min<std::size_t>(1 + rng.below(70), msg.size() - pos);
      streaming.update(ByteSpan(msg).subspan(pos, chunk));
      pos += chunk;
    }
    EXPECT_EQ(streaming.finalize(), Sha256::compute(msg));
  }
}

TEST(Sha256, PaddingBoundaries) {
  // 55/56/57 and 63/64/65 bytes exercise the length-field overflow path.
  for (std::size_t len : {55u, 56u, 57u, 63u, 64u, 65u}) {
    const Bytes msg(len, 0x61);
    Sha256 a;
    a.update(msg);
    EXPECT_EQ(a.finalize(), Sha256::compute(msg)) << len;
  }
}

// ------------------------------------------------------------ HMAC-SHA256

TEST(HmacSha256, Rfc4231Case1) {
  const Bytes key(20, 0x0b);
  EXPECT_EQ(digest_hex(HmacSha256::compute(key, bytes_of("Hi There"))),
            "b0344c61d8db38535ca8afceaf0bf12b881dc200c9833da726e9376c2e32cff7");
}

TEST(HmacSha256, Rfc4231Case2) {
  EXPECT_EQ(digest_hex(HmacSha256::compute(
                bytes_of("Jefe"), bytes_of("what do ya want for nothing?"))),
            "5bdcc146bf60754e6a042426089575c75a003f089d2739839dec58b964ec3843");
}

TEST(HmacSha256, Rfc4231Case3) {
  const Bytes key(20, 0xaa);
  const Bytes msg(50, 0xdd);
  EXPECT_EQ(digest_hex(HmacSha256::compute(key, msg)),
            "773ea91e36800e46854db8ebd09181a72959098b3ef8c122d9635514ced565fe");
}

TEST(HmacSha256, Rfc4231Case6LongKey) {
  const Bytes key(131, 0xaa);
  EXPECT_EQ(digest_hex(HmacSha256::compute(
                key, bytes_of("Test Using Larger Than Block-Size Key - Hash Key First"))),
            "60e431591ee0b67f0d8a26aacbf5b77f8e0bc6213728c5140546040f0ee37f54");
}

TEST(HmacSha256, StreamingMatchesOneShot) {
  const Bytes key = bytes_of("frame-stream-key");
  Rng rng(25);
  const Bytes msg = rng.bytes(777);
  HmacSha256 streaming(key);
  streaming.update(ByteSpan(msg).subspan(0, 300));
  streaming.update(ByteSpan(msg).subspan(300));
  EXPECT_EQ(streaming.finalize(), HmacSha256::compute(key, msg));
}

// --------------------------------------------------------------------- PRG

TEST(Prg, DeterministicFromSeedAndLabel) {
  Prg a(99, "nonce"), b(99, "nonce");
  EXPECT_EQ(a.bytes(64), b.bytes(64));
}

TEST(Prg, LabelsAreDomainSeparated) {
  Prg a(99, "nonce"), b(99, "key");
  EXPECT_NE(a.bytes(32), b.bytes(32));
}

TEST(Prg, SeedsAreSeparated) {
  Prg a(1, "x"), b(2, "x");
  EXPECT_NE(a.bytes(32), b.bytes(32));
}

TEST(Prg, StreamIsConsistentAcrossCallSizes) {
  Prg a(7, "stream"), b(7, "stream");
  Bytes joined = a.bytes(10);
  append(joined, a.bytes(23));
  EXPECT_EQ(joined, b.bytes(33));
}

TEST(Prg, KeyHasAesSize) {
  Prg p(5, "k");
  EXPECT_EQ(p.key().size(), kAesKeySize);
}

// ---------------------------------------------------------------- ct_equal

TEST(CtEqual, EqualBuffers) {
  const Bytes a = {1, 2, 3};
  EXPECT_TRUE(ct_equal(a, a));
}

TEST(CtEqual, UnequalContent) {
  const Bytes a = {1, 2, 3}, b = {1, 2, 4};
  EXPECT_FALSE(ct_equal(a, b));
}

TEST(CtEqual, UnequalLength) {
  const Bytes a = {1, 2, 3}, b = {1, 2};
  EXPECT_FALSE(ct_equal(a, b));
}

TEST(CtEqual, EmptyBuffersAreEqual) { EXPECT_TRUE(ct_equal({}, {})); }

}  // namespace
}  // namespace sacha::crypto
