// Tests for SEU injection and readback scrubbing, plus the interaction
// with attestation: an upset device fails attestation exactly like a
// tampered one (fault and malice are indistinguishable to the verifier).
#include <gtest/gtest.h>

#include "attacks/env.hpp"
#include "bitstream/bitgen.hpp"
#include "config/seu.hpp"
#include "core/session.hpp"

namespace sacha::config {
namespace {

namespace bs = sacha::bitstream;

struct ScrubRig {
  ScrubRig()
      : device(fabric::DeviceModel::small_test_device()),
        gen(device),
        golden(gen.generate(fabric::FrameRange{0, device.total_frames()},
                            {"payload", 1})),
        memory(device),
        icap(memory, device_idcode(device)) {
    for (std::uint32_t i = 0; i < device.total_frames(); ++i) {
      memory.write_frame(i, golden.frames[i]);
    }
  }

  GoldenProvider provider() {
    return [this](std::uint32_t f) -> const bs::Frame& {
      return golden.frames[f];
    };
  }

  fabric::DeviceModel device;
  bs::BitGen gen;
  bs::ConfigImage golden;
  ConfigMemory memory;
  Icap icap;
};

TEST(SeuInjector, InjectFlipsRequestedCount) {
  ScrubRig rig;
  SeuInjector injector(1);
  const auto hits = injector.inject(rig.memory, 5);
  EXPECT_EQ(hits.size(), 5u);
  // At least one configuration word must now differ (duplicate strikes on
  // the same bit could cancel, but 5 draws over 4,096 bits rarely collide;
  // verify against the golden copy).
  bool any_changed = false;
  for (std::uint32_t f = 0; f < rig.device.total_frames(); ++f) {
    if (rig.memory.config_frame(f) != rig.golden.frames[f]) any_changed = true;
  }
  EXPECT_TRUE(any_changed);
}

TEST(SeuInjector, PreservesRegisterLayer) {
  ScrubRig rig;
  Rng rng(2);
  rig.memory.tick_registers(rng, 0.5);
  std::vector<bs::Frame> readbacks_before;
  for (std::uint32_t f = 0; f < rig.device.total_frames(); ++f) {
    readbacks_before.push_back(rig.memory.readback_frame(f));
  }
  SeuInjector injector(3);
  const auto hits = injector.inject_config_bits(rig.memory, 3);
  // Register (mask-0) positions of the readback must be unchanged.
  for (std::uint32_t f = 0; f < rig.device.total_frames(); ++f) {
    const bs::Frame after = rig.memory.readback_frame(f);
    const bs::FrameMask& msk = rig.memory.mask(f);
    for (std::uint32_t b = 0; b < after.bit_count(); ++b) {
      if (!msk.get_bit(b)) {
        EXPECT_EQ(after.get_bit(b), readbacks_before[f].get_bit(b));
      }
    }
  }
  EXPECT_EQ(hits.size(), 3u);
}

TEST(Scrubber, CleanMemoryScansWithoutFindings) {
  ScrubRig rig;
  Scrubber scrubber(rig.icap, rig.provider());
  const ScrubReport report =
      scrubber.scrub(fabric::FrameRange{0, rig.device.total_frames()});
  EXPECT_EQ(report.frames_scanned, rig.device.total_frames());
  EXPECT_EQ(report.frames_corrupted, 0u);
  EXPECT_EQ(report.frames_repaired, 0u);
  EXPECT_GT(report.icap_cycles, 0u);
}

TEST(Scrubber, DetectsAndRepairsConfigUpsets) {
  ScrubRig rig;
  SeuInjector injector(4);
  const auto hits = injector.inject_config_bits(rig.memory, 4);
  Scrubber scrubber(rig.icap, rig.provider());
  const ScrubReport report =
      scrubber.scrub(fabric::FrameRange{0, rig.device.total_frames()});
  EXPECT_GT(report.frames_corrupted, 0u);
  EXPECT_EQ(report.frames_repaired, report.frames_corrupted);
  // After the pass the configuration layer is golden again.
  for (std::uint32_t f = 0; f < rig.device.total_frames(); ++f) {
    EXPECT_TRUE(bs::masked_equal(rig.memory.config_frame(f), rig.golden.frames[f],
                                 rig.memory.mask(f)))
        << "frame " << f;
  }
  (void)hits;
}

TEST(Scrubber, DetectionOnlyModeLeavesCorruption) {
  ScrubRig rig;
  SeuInjector injector(5);
  injector.inject_config_bits(rig.memory, 3);
  Scrubber detector(rig.icap, rig.provider(), /*repair=*/false);
  const ScrubReport first =
      detector.scrub(fabric::FrameRange{0, rig.device.total_frames()});
  EXPECT_GT(first.frames_corrupted, 0u);
  EXPECT_EQ(first.frames_repaired, 0u);
  const ScrubReport second =
      detector.scrub(fabric::FrameRange{0, rig.device.total_frames()});
  EXPECT_EQ(second.frames_corrupted, first.frames_corrupted);
}

TEST(Scrubber, UpsetsAtRegisterBitsAreInvisible) {
  // A strike on a flip-flop shows up in the runtime state, not in the
  // masked compare — the mask exists precisely to ignore those positions.
  ScrubRig rig;
  // Find a register bit and flip the register layer there.
  const bs::FrameMask& msk = rig.memory.mask(3);
  for (std::uint32_t b = 0; b < msk.bit_count(); ++b) {
    if (!msk.get_bit(b)) {
      rig.memory.set_register_bit(3, b, !rig.memory.readback_frame(3).get_bit(b));
      break;
    }
  }
  Scrubber scrubber(rig.icap, rig.provider());
  const ScrubReport report =
      scrubber.scrub(fabric::FrameRange{0, rig.device.total_frames()});
  EXPECT_EQ(report.frames_corrupted, 0u);
}

TEST(Scrubber, PartialRangeOnlyTouchesRange) {
  ScrubRig rig;
  // Corrupt frame 12 (outside the scrub range [0, 8)).
  bs::Frame corrupted = rig.golden.frames[12];
  corrupted.flip_bit(1);
  rig.memory.write_frame_preserving_registers(12, corrupted);
  Scrubber scrubber(rig.icap, rig.provider());
  const ScrubReport report = scrubber.scrub(fabric::FrameRange{0, 8});
  EXPECT_EQ(report.frames_scanned, 8u);
  EXPECT_EQ(report.frames_corrupted, 0u);
  EXPECT_NE(rig.memory.config_frame(12), rig.golden.frames[12]);
}

class UpsetCountSweep : public ::testing::TestWithParam<std::uint32_t> {};

TEST_P(UpsetCountSweep, AllConfigUpsetsEventuallyRepaired) {
  ScrubRig rig;
  SeuInjector injector(100 + GetParam());
  injector.inject_config_bits(rig.memory, GetParam());
  Scrubber scrubber(rig.icap, rig.provider());
  (void)scrubber.scrub(fabric::FrameRange{0, rig.device.total_frames()});
  for (std::uint32_t f = 0; f < rig.device.total_frames(); ++f) {
    EXPECT_TRUE(bs::masked_equal(rig.memory.config_frame(f), rig.golden.frames[f],
                                 rig.memory.mask(f)));
  }
}

INSTANTIATE_TEST_SUITE_P(Counts, UpsetCountSweep,
                         ::testing::Values(1u, 2u, 8u, 32u, 128u));

TEST(SeuVsAttestation, UpsetDeviceFailsAttestationLikeTampering) {
  attacks::AttackEnv env = attacks::AttackEnv::small(60);
  auto verifier = env.make_verifier();
  auto prover = env.make_prover();
  core::SessionHooks hooks;
  hooks.after_config = [](core::SachaProver& p) {
    SeuInjector injector(61);
    injector.inject_config_bits(p.memory(), 2);
  };
  const auto report = core::run_attestation(verifier, prover, env.session_options,
                                            hooks);
  EXPECT_FALSE(report.verdict.ok());
  EXPECT_FALSE(report.verdict.config_ok)
      << "attestation flags radiation damage exactly like malice";
}

}  // namespace
}  // namespace sacha::config
