// Tests for the event-driven fleet engine: bit-identity of multiplexed
// reports against the serial and thread-per-member schedules (the engine's
// core invariant), across fleet sizes, pool sizes and a lossy fault plan;
// plus the virtual-time makespan model and supervisor interplay.
#include <gtest/gtest.h>

#include <deque>
#include <thread>

#include "attacks/env.hpp"
#include "core/fleet_engine.hpp"
#include "core/swarm.hpp"
#include "fault/injector.hpp"
#include "fault/plan.hpp"

namespace sacha::core {
namespace {

/// Owns the fleet's verifiers/provers (SwarmMember holds raw pointers).
struct Fleet {
  explicit Fleet(std::size_t n, std::uint64_t base_seed = 650) {
    for (std::size_t i = 0; i < n; ++i) {
      envs.push_back(attacks::AttackEnv::small(base_seed + i));
      verifiers.push_back(envs.back().make_verifier());
      provers.push_back(envs.back().make_prover());
    }
    for (std::size_t i = 0; i < n; ++i) {
      members.push_back(SwarmMember{"node-" + std::to_string(i), &verifiers[i],
                                    &provers[i], {}});
    }
  }

  /// Tampers members `indices` post-configuration so failing verdicts are
  /// part of the comparison too.
  void tamper(std::initializer_list<std::size_t> indices) {
    for (const std::size_t i : indices) {
      members[i].hooks.after_config = [](SachaProver& p) {
        bitstream::Frame f = p.memory().config_frame(5);
        f.flip_bit(7);
        p.memory().write_frame(5, f);
      };
    }
  }

  std::deque<attacks::AttackEnv> envs;
  std::deque<SachaVerifier> verifiers;
  std::deque<SachaProver> provers;
  std::vector<SwarmMember> members;
};

/// Every scheduling-independent field of every member result must match:
/// verdicts, typed failures, MACs, durations, transport totals, trace ids.
/// (host_ns is the one scheduling-dependent field, as documented.)
void expect_bit_identical(const SwarmReport& actual,
                          const SwarmReport& expected) {
  ASSERT_EQ(actual.members.size(), expected.members.size());
  EXPECT_EQ(actual.attested, expected.attested);
  EXPECT_EQ(actual.quarantined, expected.quarantined);
  EXPECT_EQ(actual.healed, expected.healed);
  EXPECT_EQ(actual.reattempts, expected.reattempts);
  EXPECT_EQ(actual.total_work, expected.total_work);
  EXPECT_EQ(actual.messages_lost, expected.messages_lost);
  EXPECT_EQ(actual.retransmissions, expected.retransmissions);
  EXPECT_EQ(actual.backoff_wait, expected.backoff_wait);
  EXPECT_EQ(actual.failed_ids(), expected.failed_ids());
  EXPECT_EQ(actual.quarantined_ids(), expected.quarantined_ids());
  for (std::size_t i = 0; i < expected.members.size(); ++i) {
    const SwarmMemberResult& a = actual.members[i];
    const SwarmMemberResult& e = expected.members[i];
    EXPECT_EQ(a.id, e.id) << i;
    EXPECT_EQ(a.verdict.ok(), e.verdict.ok()) << i;
    EXPECT_EQ(a.verdict.kind, e.verdict.kind) << i;
    EXPECT_EQ(a.failure, e.failure) << i;
    EXPECT_EQ(a.attempts, e.attempts) << i;
    EXPECT_EQ(a.quarantined, e.quarantined) << i;
    EXPECT_EQ(a.healed, e.healed) << i;
    EXPECT_EQ(a.duration, e.duration) << i;
    EXPECT_EQ(a.messages_lost, e.messages_lost) << i;
    EXPECT_EQ(a.retransmissions, e.retransmissions) << i;
    EXPECT_EQ(a.backoff_wait, e.backoff_wait) << i;
    EXPECT_EQ(a.trace_id, e.trace_id) << i;
    ASSERT_EQ(a.mac.has_value(), e.mac.has_value()) << i;
    if (e.mac.has_value()) {
      EXPECT_EQ(*a.mac, *e.mac) << i;
    }
  }
}

SwarmReport run_schedule(Fleet& fleet, SwarmSchedule schedule,
                         std::size_t pool = 0) {
  SwarmOptions options;
  options.schedule = schedule;
  options.retry_budget = 0;
  options.engine.pool_size = pool;
  return attest_swarm(fleet.members, options);
}

TEST(FleetEngine, MultiplexedMatchesSerialAndParallelAcrossSizes) {
  for (const std::size_t n : {1u, 3u, 16u, 64u}) {
    Fleet serial_fleet(n);
    Fleet parallel_fleet(n);
    Fleet mux_fleet(n);
    if (n >= 4) {
      for (Fleet* f : {&serial_fleet, &parallel_fleet, &mux_fleet}) {
        f->tamper({1, 3});
      }
    }
    const SwarmReport serial =
        run_schedule(serial_fleet, SwarmSchedule::kSerial);
    const SwarmReport parallel =
        run_schedule(parallel_fleet, SwarmSchedule::kParallel);
    const SwarmReport mux =
        run_schedule(mux_fleet, SwarmSchedule::kMultiplexed);
    SCOPED_TRACE("fleet size " + std::to_string(n));
    expect_bit_identical(parallel, serial);
    expect_bit_identical(mux, serial);
    EXPECT_GT(mux.engine.drive_slices, 0u);
  }
}

TEST(FleetEngine, PoolSizeDoesNotChangeReports) {
  constexpr std::size_t kFleetSize = 16;
  Fleet baseline_fleet(kFleetSize);
  baseline_fleet.tamper({2, 9});
  const SwarmReport baseline =
      run_schedule(baseline_fleet, SwarmSchedule::kSerial);
  const std::size_t cores =
      std::max(1u, std::thread::hardware_concurrency());
  for (const std::size_t pool : {std::size_t{1}, std::size_t{2}, cores}) {
    Fleet fleet(kFleetSize);
    fleet.tamper({2, 9});
    const SwarmReport mux =
        run_schedule(fleet, SwarmSchedule::kMultiplexed, pool);
    SCOPED_TRACE("pool " + std::to_string(pool));
    expect_bit_identical(mux, baseline);
    EXPECT_EQ(mux.engine.pool_size, pool);
    EXPECT_GT(mux.engine.verify_batches, 0u);
  }
}

TEST(FleetEngine, LossyFaultPlanStaysBitIdenticalAcrossSchedules) {
  // An 8-member fleet under correlated burst loss + reliable transport +
  // supervisor retries: the engine must reproduce the exact retransmission,
  // backoff and healing trajectory of the serial schedule. Each fleet gets
  // its own injector set with the same seeds (injector RNG state advances
  // per session, keyed only by the member's own stream).
  constexpr std::size_t kFleetSize = 8;
  const auto plan = fault::FaultPlan::parse("burst=0.05:0.5:1");
  ASSERT_TRUE(plan.ok());

  const auto run = [&](SwarmSchedule schedule) {
    Fleet fleet(kFleetSize);
    std::deque<fault::FaultInjector> injectors;
    for (std::size_t i = 0; i < fleet.members.size(); ++i) {
      injectors.emplace_back(plan.value(), 800 + i);
      fault::FaultInjector& injector = injectors.back();
      fleet.members[i].configure = [&injector](SessionOptions& options,
                                               SessionHooks& hooks,
                                               std::uint32_t) {
        injector.arm(options, hooks);
      };
    }
    SwarmOptions options;
    options.schedule = schedule;
    options.session.reliable = true;
    options.session.max_retries = 8;
    options.retry_budget = 2;
    return attest_swarm(fleet.members, options);
  };

  const SwarmReport serial = run(SwarmSchedule::kSerial);
  const SwarmReport parallel = run(SwarmSchedule::kParallel);
  const SwarmReport mux = run(SwarmSchedule::kMultiplexed);
  EXPECT_GT(serial.messages_lost, 0u);
  EXPECT_GT(serial.retransmissions, 0u);
  expect_bit_identical(parallel, serial);
  expect_bit_identical(mux, serial);
}

TEST(FleetEngine, SupervisorQuarantinesPersistentTamperUnderEngine) {
  Fleet serial_fleet(5);
  Fleet mux_fleet(5);
  for (Fleet* f : {&serial_fleet, &mux_fleet}) f->tamper({2});
  SwarmOptions options;
  options.retry_budget = 3;
  options.schedule = SwarmSchedule::kSerial;
  const SwarmReport serial = attest_swarm(serial_fleet.members, options);
  options.schedule = SwarmSchedule::kMultiplexed;
  const SwarmReport mux = attest_swarm(mux_fleet.members, options);
  expect_bit_identical(mux, serial);
  EXPECT_TRUE(mux.converged());
  EXPECT_EQ(mux.quarantined, 1u);
  EXPECT_EQ(mux.members[2].attempts, 4u);  // budget fully spent
}

TEST(FleetEngine, SessionDeadlineAbortsIdenticallyUnderEngine) {
  Fleet serial_fleet(3);
  Fleet mux_fleet(3);
  SwarmOptions options;
  options.retry_budget = 0;
  options.session.channel = net::ChannelParams::lab();
  options.session.deadline = 2 * sim::kMillisecond;
  options.schedule = SwarmSchedule::kSerial;
  const SwarmReport serial = attest_swarm(serial_fleet.members, options);
  options.schedule = SwarmSchedule::kMultiplexed;
  const SwarmReport mux = attest_swarm(mux_fleet.members, options);
  EXPECT_EQ(serial.attested, 0u);
  for (const SwarmMemberResult& m : mux.members) {
    EXPECT_EQ(m.failure, FailureKind::kDeadlineExceeded);
  }
  expect_bit_identical(mux, serial);
}

TEST(FleetEngine, MakespanModelOverlapsLatencyAcrossMembers) {
  // 16 members on the lab channel with a pool of 4: every session spends
  // almost all its simulated time parked on channel latency, so the
  // multiplexed makespan collapses toward the slowest member while the
  // thread-per-member baseline stacks ~4 sessions per port.
  constexpr std::size_t kFleetSize = 16;
  Fleet fleet(kFleetSize);
  SwarmOptions options;
  options.schedule = SwarmSchedule::kMultiplexed;
  options.session.channel = net::ChannelParams::lab();
  options.engine.pool_size = 4;
  const SwarmReport report = attest_swarm(fleet.members, options);
  ASSERT_TRUE(report.all_attested());

  sim::SimDuration slowest = 0;
  for (const SwarmMemberResult& m : report.members) {
    slowest = std::max(slowest, m.duration);
  }
  const FleetEngineStats& engine = report.engine;
  // The multiplexed schedule can never beat the slowest member, and the
  // thread-per-member baseline can never beat ceil(N/pool) stacked
  // sessions of the fastest member.
  EXPECT_GE(engine.makespan, slowest);
  EXPECT_GT(engine.thread_per_member_makespan, engine.makespan);
  // ≥2x latency hiding at N=16, pool=4 (the bench gates N=64 at ≥2x too).
  EXPECT_GE(static_cast<double>(engine.thread_per_member_makespan),
            2.0 * static_cast<double>(engine.makespan));
  EXPECT_GT(engine.overlap_efficiency, 2.0);
  EXPECT_EQ(engine.total_work, report.total_work);
  EXPECT_GT(engine.channel_busy, 0u);
  EXPECT_GT(engine.verify_busy, 0u);
}

TEST(FleetEngine, BatchedVerifyBitIdenticalAcrossWidthsAndFleets) {
  // The tentpole invariant: interleaving several members' CMAC folds through
  // one multi-stream absorb (plus work stealing across verify lanes) never
  // changes a single report bit. Swept across fleet sizes × batch widths
  // under a lossy plan + reliable transport, against the kParallel oracle.
  const auto plan = fault::FaultPlan::parse("burst=0.05:0.5:1");
  ASSERT_TRUE(plan.ok());
  const auto run = [&](std::size_t n, SwarmSchedule schedule,
                       std::size_t width) {
    Fleet fleet(n);
    if (n >= 4) fleet.tamper({1, 3});
    std::deque<fault::FaultInjector> injectors;
    for (std::size_t i = 0; i < fleet.members.size(); ++i) {
      injectors.emplace_back(plan.value(), 800 + i);
      fault::FaultInjector& injector = injectors.back();
      fleet.members[i].configure = [&injector](SessionOptions& options,
                                               SessionHooks& hooks,
                                               std::uint32_t) {
        injector.arm(options, hooks);
      };
    }
    SwarmOptions options;
    options.schedule = schedule;
    options.session.reliable = true;
    options.session.max_retries = 8;
    options.retry_budget = 1;
    options.engine.verify_batch_width = width;
    return attest_swarm(fleet.members, options);
  };

  for (const std::size_t n : {1u, 3u, 16u, 64u}) {
    const SwarmReport parallel = run(n, SwarmSchedule::kParallel, 4);
    for (const std::size_t width : {1u, 4u, 8u}) {
      SCOPED_TRACE("fleet " + std::to_string(n) + " width " +
                   std::to_string(width));
      const SwarmReport mux = run(n, SwarmSchedule::kMultiplexed, width);
      expect_bit_identical(mux, parallel);
      EXPECT_GT(mux.engine.verify_batches, 0u);
      if (width > 1) {
        // Every absorb call carried at least one stream; multi-lane calls
        // only exist when the batch actually interleaved.
        EXPECT_GE(mux.engine.multi_absorb_streams,
                  mux.engine.multi_absorb_calls);
      }
    }
  }
}

TEST(FleetEngine, AdaptiveSliceStaysBitIdenticalAndReportsSlice) {
  // Adaptive slicing is scheduling-only: reports match the fixed-slice
  // serial oracle bit-for-bit, and the engine reports where the slice
  // length landed (always within [1, min(64, high_water)]).
  constexpr std::size_t kFleetSize = 12;
  Fleet baseline_fleet(kFleetSize);
  baseline_fleet.tamper({2, 9});
  const SwarmReport baseline =
      run_schedule(baseline_fleet, SwarmSchedule::kSerial);

  Fleet fleet(kFleetSize);
  fleet.tamper({2, 9});
  SwarmOptions options;
  options.schedule = SwarmSchedule::kMultiplexed;
  options.retry_budget = 0;
  options.engine.adaptive_slice = true;
  options.engine.verify_batch_width = 8;
  options.engine.rounds_per_slice = 8;
  options.engine.inbox_high_water = 32;
  const SwarmReport mux = attest_swarm(fleet.members, options);
  expect_bit_identical(mux, baseline);
  EXPECT_GE(mux.engine.rounds_per_slice_last, 1u);
  EXPECT_LE(mux.engine.rounds_per_slice_last, 32u);
  EXPECT_GT(mux.engine.multi_absorb_calls, 0u);
}

TEST(FleetEngine, BatchWidthOneRestoresSingleStreamAbsorbs) {
  // Width 1 is the PR-5 behaviour: every absorb call carries exactly one
  // stream, and the reports still match the oracle (covered above); here we
  // pin the occupancy accounting itself.
  Fleet fleet(6);
  SwarmOptions options;
  options.schedule = SwarmSchedule::kMultiplexed;
  options.retry_budget = 0;
  options.engine.verify_batch_width = 1;
  const SwarmReport report = attest_swarm(fleet.members, options);
  ASSERT_TRUE(report.all_attested());
  EXPECT_EQ(report.engine.multi_absorb_streams,
            report.engine.multi_absorb_calls);
}

TEST(FleetEngine, BackpressureBoundsInboxBacklog) {
  Fleet fleet(8);
  SwarmOptions options;
  options.schedule = SwarmSchedule::kMultiplexed;
  options.engine.pool_size = 2;
  options.engine.rounds_per_slice = 4;
  options.engine.inbox_high_water = 8;
  const SwarmReport report = attest_swarm(fleet.members, options);
  ASSERT_TRUE(report.all_attested());
  // A member's undelivered backlog can exceed the high-water mark by at
  // most the slices that land while its verify strand is scheduled.
  EXPECT_LE(report.engine.peak_inbox_rounds,
            options.engine.inbox_high_water +
                2 * options.engine.rounds_per_slice);
}

TEST(FleetEngine, RunFleetMatchesRunAttestationPerJob) {
  // Direct engine API: one job's report equals a standalone session run
  // field-for-field (host_ns excluded).
  attacks::AttackEnv env_a = attacks::AttackEnv::small(660);
  SachaVerifier verifier_a = env_a.make_verifier();
  SachaProver prover_a = env_a.make_prover();
  SessionOptions options;
  options.seed = 42;
  options.channel.jitter_max = 50'000;
  const AttestationReport solo =
      run_attestation(verifier_a, prover_a, options);

  attacks::AttackEnv env_b = attacks::AttackEnv::small(660);
  SachaVerifier verifier_b = env_b.make_verifier();
  SachaProver prover_b = env_b.make_prover();
  std::vector<FleetSessionJob> jobs;
  jobs.push_back(FleetSessionJob{&verifier_b, &prover_b, options, {}, "solo"});
  const FleetRunResult run = run_fleet(jobs);
  ASSERT_EQ(run.reports.size(), 1u);
  const AttestationReport& mux = run.reports[0];
  EXPECT_EQ(mux.verdict.ok(), solo.verdict.ok());
  EXPECT_EQ(mux.verdict.kind, solo.verdict.kind);
  EXPECT_EQ(mux.failure, solo.failure);
  EXPECT_EQ(mux.total_time, solo.total_time);
  EXPECT_EQ(mux.theoretical_time, solo.theoretical_time);
  EXPECT_EQ(mux.channel_time, solo.channel_time);
  EXPECT_EQ(mux.commands_sent, solo.commands_sent);
  EXPECT_EQ(mux.retransmissions, solo.retransmissions);
  EXPECT_EQ(mux.messages_lost, solo.messages_lost);
  EXPECT_EQ(mux.bytes_to_prover, solo.bytes_to_prover);
  EXPECT_EQ(mux.bytes_to_verifier, solo.bytes_to_verifier);
  EXPECT_EQ(mux.trace_id, solo.trace_id);
}

TEST(FleetEngine, EmptyFleetIsVacuous) {
  std::vector<FleetSessionJob> jobs;
  const FleetRunResult run = run_fleet(jobs);
  EXPECT_TRUE(run.reports.empty());
  EXPECT_EQ(run.stats.makespan, 0u);

  std::vector<SwarmMember> empty;
  SwarmOptions options;
  options.schedule = SwarmSchedule::kMultiplexed;
  const SwarmReport report = attest_swarm(empty, options);
  EXPECT_TRUE(report.all_attested());
  EXPECT_EQ(report.makespan, 0u);
}

}  // namespace
}  // namespace sacha::core
