// Tests for the signature extension: Lamport OTS, Merkle aggregation, and
// the signed attestation flow (future work #2) — including forgery
// attempts, leaf reuse, exhaustion, and transcript binding.
#include <gtest/gtest.h>

#include "attacks/env.hpp"
#include "core/signed_attest.hpp"
#include "crypto/merkle.hpp"

namespace sacha::crypto {
namespace {

Sha256Digest digest_of(std::string_view text) {
  return Sha256::compute(bytes_of(text));
}

// ----------------------------------------------------------------- Lamport

TEST(Lamport, SignVerifyRoundTrip) {
  const LamportSecretKey sk = lamport_keygen(1, 0);
  const LamportPublicKey pk = lamport_public(sk);
  const Sha256Digest digest = digest_of("attestation evidence");
  EXPECT_TRUE(lamport_verify(pk, digest, lamport_sign(sk, digest)));
}

TEST(Lamport, WrongMessageRejected) {
  const LamportSecretKey sk = lamport_keygen(2, 0);
  const LamportPublicKey pk = lamport_public(sk);
  const LamportSignature sig = lamport_sign(sk, digest_of("message A"));
  EXPECT_FALSE(lamport_verify(pk, digest_of("message B"), sig));
}

TEST(Lamport, WrongKeyRejected) {
  const LamportSecretKey sk1 = lamport_keygen(3, 0);
  const LamportPublicKey pk2 = lamport_public(lamport_keygen(3, 1));
  const Sha256Digest digest = digest_of("msg");
  EXPECT_FALSE(lamport_verify(pk2, digest, lamport_sign(sk1, digest)));
}

TEST(Lamport, TamperedSignatureRejected) {
  const LamportSecretKey sk = lamport_keygen(4, 0);
  const LamportPublicKey pk = lamport_public(sk);
  const Sha256Digest digest = digest_of("msg");
  LamportSignature sig = lamport_sign(sk, digest);
  sig.revealed[100][5] ^= 1;
  EXPECT_FALSE(lamport_verify(pk, digest, sig));
}

TEST(Lamport, KeygenIsDeterministic) {
  EXPECT_EQ(lamport_public(lamport_keygen(5, 7)).fingerprint(),
            lamport_public(lamport_keygen(5, 7)).fingerprint());
  EXPECT_NE(lamport_public(lamport_keygen(5, 7)).fingerprint(),
            lamport_public(lamport_keygen(5, 8)).fingerprint());
}

TEST(Lamport, MalformedInputsRejected) {
  LamportPublicKey short_pk;
  short_pk.hashes.resize(10);
  LamportSignature short_sig;
  short_sig.revealed.resize(10);
  EXPECT_FALSE(lamport_verify(short_pk, digest_of("x"), short_sig));
}

// ------------------------------------------------------------------ Merkle

TEST(Merkle, SignVerifyAcrossAllLeaves) {
  HashSigner signer(10, /*height=*/3);
  for (int i = 0; i < 8; ++i) {
    const Sha256Digest digest = digest_of("session " + std::to_string(i));
    const auto sig = signer.sign(digest);
    ASSERT_TRUE(sig.has_value()) << i;
    EXPECT_EQ(sig->leaf_index, static_cast<std::uint32_t>(i));
    EXPECT_TRUE(merkle_verify(signer.root(), 3, digest, *sig)) << i;
  }
}

TEST(Merkle, ExhaustionRefusesToSign) {
  HashSigner signer(11, 1);  // 2 leaves
  EXPECT_TRUE(signer.sign(digest_of("a")).has_value());
  EXPECT_TRUE(signer.sign(digest_of("b")).has_value());
  EXPECT_FALSE(signer.sign(digest_of("c")).has_value());
  EXPECT_EQ(signer.remaining(), 0u);
}

TEST(Merkle, WrongRootRejected) {
  HashSigner signer(12, 2);
  HashSigner other(13, 2);
  const Sha256Digest digest = digest_of("msg");
  const auto sig = signer.sign(digest);
  ASSERT_TRUE(sig.has_value());
  EXPECT_FALSE(merkle_verify(other.root(), 2, digest, *sig));
}

TEST(Merkle, TamperedPathRejected) {
  HashSigner signer(14, 3);
  const Sha256Digest digest = digest_of("msg");
  auto sig = signer.sign(digest);
  ASSERT_TRUE(sig.has_value());
  sig->auth_path[1][0] ^= 1;
  EXPECT_FALSE(merkle_verify(signer.root(), 3, digest, *sig));
}

TEST(Merkle, WrongHeightRejected) {
  HashSigner signer(15, 3);
  const Sha256Digest digest = digest_of("msg");
  const auto sig = signer.sign(digest);
  ASSERT_TRUE(sig.has_value());
  EXPECT_FALSE(merkle_verify(signer.root(), 2, digest, *sig));
  EXPECT_FALSE(merkle_verify(signer.root(), 4, digest, *sig));
}

TEST(Merkle, SubstitutedLeafKeyRejected) {
  // An attacker cannot swap in their own OTS key: the fingerprint no longer
  // chains to the root.
  HashSigner signer(16, 2);
  const Sha256Digest digest = digest_of("msg");
  auto sig = signer.sign(digest);
  ASSERT_TRUE(sig.has_value());
  const LamportSecretKey evil_sk = lamport_keygen(999, 0);
  sig->leaf_public = lamport_public(evil_sk);
  sig->ots = lamport_sign(evil_sk, digest);
  EXPECT_FALSE(merkle_verify(signer.root(), 2, digest, *sig));
}

}  // namespace
}  // namespace sacha::crypto

namespace sacha::core {
namespace {

struct SignedRig {
  SignedRig()
      : env(attacks::AttackEnv::small(21)),
        verifier(env.make_verifier()),
        prover(env.make_prover()),
        signer(0x51671, 3) {}

  attacks::AttackEnv env;
  SachaVerifier verifier;
  SachaProver prover;
  crypto::HashSigner signer;
  LeafPolicy policy;
};

TEST(SignedAttest, HonestDevicePasses) {
  SignedRig rig;
  const SignedAttestReport report =
      run_signed_attestation(rig.verifier, rig.prover, rig.signer,
                             rig.signer.root(), 3, rig.policy);
  EXPECT_TRUE(report.ok()) << report.detail;
  EXPECT_TRUE(report.signature_ok);
  EXPECT_TRUE(report.leaf_fresh);
  EXPECT_TRUE(report.binds_transcript);
}

TEST(SignedAttest, LeafAdvancesPerSession) {
  SignedRig rig;
  const auto r1 = run_signed_attestation(rig.verifier, rig.prover, rig.signer,
                                         rig.signer.root(), 3, rig.policy);
  const auto r2 = run_signed_attestation(rig.verifier, rig.prover, rig.signer,
                                         rig.signer.root(), 3, rig.policy);
  EXPECT_TRUE(r1.ok());
  EXPECT_TRUE(r2.ok());
  EXPECT_NE(r1.leaf_index, r2.leaf_index);
}

TEST(SignedAttest, WrongRootRejected) {
  SignedRig rig;
  crypto::HashSigner other(0xbad, 3);
  const auto report = run_signed_attestation(
      rig.verifier, rig.prover, rig.signer, other.root(), 3, rig.policy);
  EXPECT_FALSE(report.ok());
  EXPECT_FALSE(report.signature_ok);
}

TEST(SignedAttest, ExhaustedSignerFailsLoudly) {
  SignedRig rig;
  crypto::HashSigner tiny(0x7, 0);  // a single leaf
  const auto r1 = run_signed_attestation(rig.verifier, rig.prover, tiny,
                                         tiny.root(), 0, rig.policy);
  EXPECT_TRUE(r1.ok()) << r1.detail;
  const auto r2 = run_signed_attestation(rig.verifier, rig.prover, tiny,
                                         tiny.root(), 0, rig.policy);
  EXPECT_FALSE(r2.ok());
  EXPECT_NE(r2.detail.find("exhausted"), std::string::npos) << r2.detail;
}

TEST(SignedAttest, LeafReuseRejectedByPolicy) {
  // Two verifier-side policies sharing one device would each accept leaf 0
  // once; a single policy must reject the second occurrence. Simulate by
  // re-verifying the same leaf index.
  LeafPolicy policy;
  EXPECT_TRUE(policy.accept(0));
  EXPECT_FALSE(policy.accept(0));
  EXPECT_TRUE(policy.accept(1));
  EXPECT_EQ(policy.used(), 2u);
}

TEST(SignedAttest, TamperedDeviceFailsBeforeSigning) {
  SignedRig rig;
  SessionHooks hooks;
  hooks.after_config = [](SachaProver& p) {
    bitstream::Frame f = p.memory().config_frame(5);
    f.flip_bit(9);
    p.memory().write_frame(5, f);
  };
  const auto report = run_signed_attestation(rig.verifier, rig.prover,
                                             rig.signer, rig.signer.root(), 3,
                                             rig.policy, {}, hooks);
  EXPECT_FALSE(report.ok());
  EXPECT_FALSE(report.base.verdict.config_ok);
}

TEST(SignedAttest, WorksWithPublicSessionKey) {
  // The point of signature mode: the session key may be public (here: the
  // all-zero key on both sides) and attestation authenticity still holds
  // through the signature chain.
  attacks::AttackEnv env = attacks::AttackEnv::small(22);
  env.key = crypto::AesKey{};  // public/known key
  auto verifier = env.make_verifier();
  auto prover = env.make_prover();
  crypto::HashSigner signer(0xabc, 2);
  LeafPolicy policy;
  const auto report = run_signed_attestation(verifier, prover, signer,
                                             signer.root(), 2, policy);
  EXPECT_TRUE(report.ok()) << report.detail;
}

TEST(SignedAttest, AttestationDigestBindsMac) {
  crypto::Mac a{}, b{};
  b[0] = 1;
  EXPECT_NE(attestation_digest(a), attestation_digest(b));
  EXPECT_EQ(attestation_digest(a), attestation_digest(a));
}

}  // namespace
}  // namespace sacha::core
