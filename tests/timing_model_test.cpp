// The timing model as executable derivations: every constant behind the
// Table 3 / Table 4 reproduction is recomputed here from first principles
// (wire arithmetic, ICAP cycle decomposition, protocol counting), so a
// change that silently shifts the reproduction fails a named test rather
// than a bench eyeball.
#include <gtest/gtest.h>

#include "core/session.hpp"
#include "net/ethernet.hpp"
#include "sim/clock.hpp"

namespace sacha {
namespace {

// ----------------------------------------------------------- wire model

TEST(WireDerivation, GigabitByteTime) {
  // 1 Gbit/s => 8 ns per byte; overhead = 20 preamble/IFG + 14 header + 4 FCS.
  const net::WireModel wire;
  EXPECT_EQ(wire.frame_bytes(46), 84u);
  EXPECT_EQ(wire.frame_time(46), 84u * 8);
}

TEST(WireDerivation, A1PacketSize) {
  // ICAP_config command: 4 B header + 266 words (91 effective + padding).
  const std::size_t payload = 4 + 266 * 4;
  EXPECT_EQ(payload, 1'068u);
  EXPECT_EQ(net::WireModel().frame_time(payload), 8'848u);
}

TEST(WireDerivation, A3PacketSizeNeedsOversizeMtu) {
  // ICAP_readback command: 4 + 4 + 414 words = 1,664 B payload — above the
  // standard 1,500 B MTU, single frame on the PoC link (MTU 2,000).
  const std::size_t payload = 4 + 4 + 414 * 4;
  EXPECT_EQ(payload, 1'664u);
  EXPECT_GT(payload, std::size_t{1'500});
  EXPECT_EQ(net::WireModel().frame_time(payload), 13'616u);
  // A standard-MTU link would fragment and cost one extra overhead block.
  EXPECT_EQ(net::WireModel(8, 1'500).frame_time(payload), 13'616u + 38 * 8);
}

TEST(WireDerivation, A8PacketSize) {
  // Frame response: 4 B header + 324 B frame.
  EXPECT_EQ(net::WireModel().frame_time(4 + 324), 2'928u);
}

// ------------------------------------------------------------ ICAP model

TEST(IcapDerivation, A2CycleDecomposition) {
  // 91 stream words x 1 port cycle + 81 data x 1 extra + 11 commit = 183.
  const std::uint32_t stream_words = 1 + 2 + 2 + 2 + 1 + 81 + 2;
  EXPECT_EQ(stream_words, 91u);
  const std::uint32_t cycles = stream_words + 81 + 11;
  EXPECT_EQ(cycles, 183u);
  EXPECT_EQ(sim::icap_domain().cycles_to_time(cycles), 1'830u);
}

TEST(IcapDerivation, A4CycleDecomposition) {
  // 10 stream words + 2,232 flush + (81 pad + 81 data) output = 2,404.
  const std::uint32_t stream_words = 1 + 2 + 2 + 2 + 1 + 2;
  EXPECT_EQ(stream_words, 10u);
  const std::uint32_t cycles = stream_words + 2'232 + 81 + 81;
  EXPECT_EQ(cycles, 2'404u);
  EXPECT_EQ(sim::icap_domain().cycles_to_time(cycles), 24'040u);
}

TEST(MacDerivation, A5A6A7AtTxClock) {
  const sim::ClockDomain tx = sim::tx_domain();
  EXPECT_EQ(tx.cycles_to_time(15), 120u);  // A5
  EXPECT_EQ(tx.cycles_to_time(16), 128u);  // A6
  EXPECT_EQ(tx.cycles_to_time(17), 136u);  // A7
}

// ------------------------------------------------------- protocol counts

TEST(CountDerivation, Virtex6CommandArithmetic) {
  // 26,400 dynamic frames (26,399 application + 1 nonce), 28,488 readbacks.
  EXPECT_EQ(fabric::kVirtex6TotalFrames - fabric::kVirtex6DynamicFrames, 2'088u);
  const std::uint64_t commands = 26'400ull + 28'488ull + 1ull;
  EXPECT_EQ(commands, 54'889u);
  // Messages: config commands are one-way; readbacks and the checksum are
  // request/response pairs.
  const std::uint64_t messages = 26'400ull + 2ull * 28'488ull + 2ull;
  EXPECT_EQ(messages, 83'378u);
}

TEST(CountDerivation, TheoreticalDurationFormula) {
  // Sum of counts x modeled action times lands within 1 ms of 1.443 s.
  const double total_ns = 26'400.0 * (8'848 + 1'830) +
                          28'488.0 * (13'616 + 24'040 + 128 + 2'928) +
                          120 + 136 + 672 + 672;
  EXPECT_NEAR(total_ns / 1e9, 1.443, 0.002);
}

TEST(CountDerivation, LabLatencyCalibration) {
  // (28.5 s - theoretical) / 83,378 messages ~ 324.5 us.
  const double theoretical = 1.4417;
  const double per_message_us = (28.5 - theoretical) / 83'378 * 1e6;
  EXPECT_NEAR(per_message_us, 324.5, 1.0);
  EXPECT_EQ(net::ChannelParams::lab().per_command_latency, 324'500u);
}

TEST(CountDerivation, BoundedMemoryMargin) {
  // Partial bitstream vs total device BRAM: > 4x margin.
  const auto device = fabric::DeviceModel::xc6vlx240t();
  const double partial =
      static_cast<double>(device.bitstream_bytes(fabric::kVirtex6DynamicFrames));
  const double bram =
      static_cast<double>(fabric::bram_capacity_bytes(device.totals()));
  EXPECT_GT(partial / bram, 4.0);
}

}  // namespace
}  // namespace sacha
