// Tests for the adversary library: every §7.2 threat must be detected or
// structurally prevented on a fresh environment, and the honest control run
// must still pass under the same harness.
#include <gtest/gtest.h>

#include "attacks/library.hpp"

namespace sacha::attacks {
namespace {

TEST(AttackEnv, HonestControlRunAttests) {
  const AttackEnv env = AttackEnv::small();
  auto verifier = env.make_verifier();
  auto prover = env.make_prover();
  const auto report = core::run_attestation(verifier, prover, env.session_options);
  EXPECT_TRUE(report.verdict.ok()) << report.verdict.detail;
}

TEST(AttackEnv, NonGenuineKeyDiffersFromProvisioned) {
  const AttackEnv env = AttackEnv::small();
  auto genuine = env.make_prover(true);
  auto fake = env.make_prover(false);
  // Indirect check: the fake prover fails attestation, the genuine passes.
  auto v1 = env.make_verifier();
  EXPECT_TRUE(core::run_attestation(v1, genuine).verdict.ok());
  auto v2 = env.make_verifier();
  EXPECT_FALSE(core::run_attestation(v2, fake).verdict.ok());
}

struct SuiteCase {
  std::size_t index;
  const char* expected_name;
  AttackResult expected_result;
};

class StandardSuite : public ::testing::TestWithParam<SuiteCase> {};

TEST_P(StandardSuite, OutcomeMatchesSecurityArgument) {
  const auto suite = standard_suite();
  ASSERT_LT(GetParam().index, suite.size());
  const Attack& attack = *suite[GetParam().index];
  EXPECT_EQ(attack.name(), GetParam().expected_name);
  const AttackEnv env = AttackEnv::small(17 + GetParam().index);
  const AttackOutcome outcome = attack.run(env);
  EXPECT_EQ(outcome.result, GetParam().expected_result)
      << attack.name() << ": " << outcome.evidence;
  EXPECT_NE(outcome.result, AttackResult::kUndetected)
      << "no attack in the suite may go unnoticed";
}

INSTANTIATE_TEST_SUITE_P(
    AllAttacks, StandardSuite,
    ::testing::Values(
        SuiteCase{0, "dynpart-tamper", AttackResult::kDetected},
        SuiteCase{1, "statpart-tamper", AttackResult::kDetected},
        SuiteCase{2, "impersonation", AttackResult::kDetected},
        SuiteCase{3, "proxy-mac", AttackResult::kDetected},
        SuiteCase{4, "replay", AttackResult::kDetected},
        SuiteCase{5, "nonce-freeze", AttackResult::kDetected},
        SuiteCase{6, "bram-staging", AttackResult::kPrevented},
        SuiteCase{7, "hidden-module", AttackResult::kPrevented},
        SuiteCase{8, "update-injection", AttackResult::kDetected},
        SuiteCase{9, "external-tap", AttackResult::kDetected}),
    [](const ::testing::TestParamInfo<SuiteCase>& info) {
      std::string name = info.param.expected_name;
      for (char& c : name) {
        if (c == '-') c = '_';
      }
      return name;
    });

TEST(StandardSuiteSweep, RobustAcrossSeeds) {
  // The detection arguments are structural, not probabilistic: they must
  // hold for every seed, not just a lucky one.
  const auto suite = standard_suite();
  for (std::uint64_t seed : {101u, 202u, 303u}) {
    for (const auto& attack : suite) {
      const AttackOutcome outcome = attack->run(AttackEnv::small(seed));
      EXPECT_NE(outcome.result, AttackResult::kUndetected)
          << attack->name() << " seed " << seed << ": " << outcome.evidence;
    }
  }
}

TEST(StandardSuiteSweep, RobustAcrossReadbackOrders) {
  const auto suite = standard_suite();
  for (const core::ReadbackOrder order :
       {core::ReadbackOrder::kSequentialFromZero,
        core::ReadbackOrder::kSequentialFromOffset,
        core::ReadbackOrder::kRandomPermutation}) {
    AttackEnv env = AttackEnv::small(55);
    env.verifier_options.order = order;
    for (const auto& attack : suite) {
      const AttackOutcome outcome = attack->run(env);
      EXPECT_NE(outcome.result, AttackResult::kUndetected)
          << attack->name() << " order " << static_cast<int>(order);
    }
  }
}

TEST(AttackDescriptions, AreNonEmptyAndUnique) {
  const auto suite = standard_suite();
  std::set<std::string> names;
  for (const auto& attack : suite) {
    EXPECT_FALSE(attack->name().empty());
    EXPECT_FALSE(attack->description().empty());
    EXPECT_TRUE(names.insert(attack->name()).second) << attack->name();
  }
  EXPECT_EQ(names.size(), 10u);
}

TEST(ToString, CoversAllResults) {
  EXPECT_STREQ(to_string(AttackResult::kDetected), "DETECTED");
  EXPECT_STREQ(to_string(AttackResult::kPrevented), "PREVENTED");
  EXPECT_STREQ(to_string(AttackResult::kUndetected), "UNDETECTED");
}

}  // namespace
}  // namespace sacha::attacks
