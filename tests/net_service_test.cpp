// Attestation-service tests: loopback smoke, verdict + MAC bit-identity
// against the in-process SwarmSchedule::kMultiplexed oracle, the
// quarantine path for abrupt disconnects, the Prometheus endpoint, the
// poll(2) fallback, the OTA offer handshake (signed manifests offered
// after passing sessions only), and graceful drain.
#include <gtest/gtest.h>

#include <atomic>
#include <deque>
#include <filesystem>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include "bitstream/golden_model.hpp"
#include "core/signed_attest.hpp"
#include "core/swarm.hpp"
#include "crypto/merkle.hpp"
#include "net/attest_client.hpp"
#include "net/attest_server.hpp"
#include "net/provision.hpp"
#include "net/tcp.hpp"
#include "obs/export.hpp"
#include "obs/metrics.hpp"
#include "update/manifest.hpp"

using namespace sacha;

namespace {

/// The in-process oracle: the same fleet attested by the multiplexed
/// engine, no sockets. The service must match this run verdict-for-verdict
/// and MAC-for-MAC.
core::SwarmReport oracle_run(const net::FleetSpec& spec, std::size_t members,
                             const std::set<std::size_t>& tampered) {
  std::deque<attacks::AttackEnv> envs;
  std::deque<core::SachaVerifier> verifiers;
  std::deque<core::SachaProver> provers;
  std::vector<core::SwarmMember> swarm;
  for (std::size_t i = 0; i < members; ++i) {
    envs.push_back(
        net::member_env(net::member_scale(spec, i), spec.base_seed + i));
    verifiers.push_back(envs.back().make_verifier());
    provers.push_back(envs.back().make_prover());
  }
  for (std::size_t i = 0; i < members; ++i) {
    core::SwarmMember member{net::member_id(i), &verifiers[i], &provers[i],
                             {}};
    if (tampered.count(i) > 0) {
      member.hooks.after_config = [](core::SachaProver& p) {
        bitstream::Frame f = p.memory().config_frame(5);
        f.flip_bit(7);
        p.memory().write_frame(5, f);
      };
    }
    swarm.push_back(std::move(member));
  }
  core::SwarmOptions options;
  options.session = envs.front().session_options;
  options.session.seed = spec.session_seed;
  options.schedule = core::SwarmSchedule::kMultiplexed;
  options.retry_budget = 0;
  return core::attest_swarm(swarm, options);
}

/// One blocking HTTP exchange against the server's port: sends `request`
/// verbatim, reads to EOF (the server closes after each response).
std::string http_exchange(std::uint16_t port, const std::string& request) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return {};
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr) != 1 ||
      ::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    ::close(fd);
    return {};
  }
  if (::send(fd, request.data(), request.size(), 0) !=
      static_cast<ssize_t>(request.size())) {
    ::close(fd);
    return {};
  }
  std::string reply;
  char buf[4096];
  for (;;) {
    const ssize_t n = ::recv(fd, buf, sizeof(buf), 0);
    if (n <= 0) break;
    reply.append(buf, static_cast<std::size_t>(n));
  }
  ::close(fd);
  return reply;
}

std::string http_get(std::uint16_t port, const std::string& path) {
  return http_exchange(port, "GET " + path + " HTTP/1.1\r\nHost: x\r\n\r\n");
}

net::LoadOptions loopback_load(const net::AttestServer& server,
                               const net::FleetSpec& spec,
                               std::size_t members) {
  net::LoadOptions load;
  load.host = "127.0.0.1";
  load.port = server.port();
  load.fleet = spec;
  load.members = members;
  load.timeout_ms = 60000;
  return load;
}

TEST(NetService, LoopbackSmoke) {
  net::AttestServer server;
  ASSERT_TRUE(server.start().ok());
  ASSERT_NE(server.port(), 0);

  net::FleetSpec spec;
  const net::LoadResult result = net::run_load(loopback_load(server, spec, 4));
  EXPECT_EQ(result.completed, 4u);
  EXPECT_EQ(result.attested, 4u);
  const net::AttestServerStats stats = server.stats();
  EXPECT_EQ(stats.sessions_completed, 4u);
  EXPECT_EQ(stats.sessions_attested, 4u);
  EXPECT_EQ(stats.quarantined, 0u);
  server.stop();
}

TEST(NetService, MixedFleetBitIdenticalToMultiplexedOracle) {
  net::FleetSpec spec;
  spec.mixed = true;
  const std::set<std::size_t> tampered = {1, 3};
  constexpr std::size_t kMembers = 16;

  const core::SwarmReport oracle = oracle_run(spec, kMembers, tampered);
  ASSERT_EQ(oracle.members.size(), kMembers);
  EXPECT_EQ(oracle.attested, kMembers - tampered.size());

  net::AttestServer server;
  ASSERT_TRUE(server.start().ok());
  net::LoadOptions load = loopback_load(server, spec, kMembers);
  load.tampered = tampered;
  const net::LoadResult result = net::run_load(load);
  server.stop();

  ASSERT_TRUE(result.all_completed());
  EXPECT_EQ(result.attested, oracle.attested);
  for (std::size_t i = 0; i < kMembers; ++i) {
    const core::SwarmMemberResult& want = oracle.members[i];
    const net::MemberOutcome& got = result.members[i];
    SCOPED_TRACE("member " + std::to_string(i));
    EXPECT_EQ(got.report.protocol_ok, want.verdict.protocol_ok);
    EXPECT_EQ(got.report.mac_ok, want.verdict.mac_ok);
    EXPECT_EQ(got.report.config_ok, want.verdict.config_ok);
    EXPECT_EQ(got.report.failure, want.failure);
    // MAC-for-MAC: the device evidence over the socket equals the
    // in-process engine's evidence, bitwise.
    ASSERT_TRUE(got.client_mac.has_value());
    ASSERT_TRUE(want.mac.has_value());
    EXPECT_EQ(*got.client_mac, *want.mac);
    if (want.verdict.mac_ok) {
      ASSERT_TRUE(got.report.mac_present);
      EXPECT_EQ(got.report.mac, *want.mac);
    }
  }
}

TEST(NetService, AbruptDisconnectQuarantinesNotCrashes) {
  net::AttestServerOptions options;
  options.session_timeout_ms = 60000;
  net::AttestServer server(options);
  ASSERT_TRUE(server.start().ok());

  net::FleetSpec spec;
  net::LoadOptions load = loopback_load(server, spec, 6);
  load.disconnect_after[2] = 3;  // member 2 vanishes mid-session
  const net::LoadResult result = net::run_load(load);

  EXPECT_EQ(result.completed, 5u);
  EXPECT_EQ(result.attested, 5u);
  EXPECT_FALSE(result.members[2].completed);

  // The server stays serviceable after the quarantine: run another fleet.
  const net::LoadResult second = net::run_load(loopback_load(server, spec, 3));
  EXPECT_EQ(second.completed, 3u);

  // The loop can notice the dead socket a beat after the clients finished;
  // wait for the teardown to land before asserting the final counters.
  net::AttestServerStats stats = server.stats();
  for (int spin = 0;
       spin < 200 && (stats.quarantined < 1 || stats.active_connections > 0);
       ++spin) {
    ::usleep(10000);
    stats = server.stats();
  }
  EXPECT_EQ(stats.quarantined, 1u);
  EXPECT_EQ(stats.sessions_completed, 8u);
  EXPECT_EQ(stats.active_connections, 0u);
  server.stop();
}

TEST(NetService, MetricsEndpointServesPrometheusText) {
  obs::set_enabled(true);
  net::AttestServer server;
  ASSERT_TRUE(server.start().ok());

  // One real session so the counters move.
  net::FleetSpec spec;
  ASSERT_TRUE(net::run_load(loopback_load(server, spec, 1)).all_completed());

  // Plain blocking HTTP GET against the same port.
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  ASSERT_GE(fd, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(server.port());
  ASSERT_EQ(inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr), 1);
  ASSERT_EQ(::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)),
            0);
  const std::string request = "GET /metrics HTTP/1.1\r\nHost: x\r\n\r\n";
  ASSERT_EQ(::send(fd, request.data(), request.size(), 0),
            static_cast<ssize_t>(request.size()));
  std::string reply;
  char buf[4096];
  for (;;) {
    const ssize_t n = ::recv(fd, buf, sizeof(buf), 0);
    if (n <= 0) break;
    reply.append(buf, static_cast<std::size_t>(n));
  }
  ::close(fd);
  EXPECT_EQ(server.stats().http_requests, 1u);
  server.stop();
  obs::set_enabled(false);

  EXPECT_NE(reply.find("200 OK"), std::string::npos);
  EXPECT_NE(reply.find("sacha_session_attested"), std::string::npos);
  EXPECT_NE(reply.find("sacha_attestd_accepted"), std::string::npos);
}

TEST(NetService, MetricsContentTypeAndHelpLines) {
  obs::set_enabled(true);
  // Instruments are process-global: zero them so the exact-value assertions
  // below do not depend on which tests ran earlier in this binary.
  obs::MetricsRegistry::global().reset_values();
  net::AttestServer server;
  ASSERT_TRUE(server.start().ok());
  net::FleetSpec spec;
  ASSERT_TRUE(net::run_load(loopback_load(server, spec, 1)).all_completed());
  const std::string reply = http_get(server.port(), "/metrics");
  server.stop();
  obs::set_enabled(false);
  EXPECT_NE(reply.find("200 OK"), std::string::npos);
  // The Prometheus text exposition content type, version pinned.
  EXPECT_NE(reply.find("Content-Type: text/plain; version=0.0.4"),
            std::string::npos);
  EXPECT_NE(reply.find("# HELP sacha_attestd_accepted "), std::string::npos);
  EXPECT_NE(reply.find("# TYPE sacha_attestd_accepted counter"),
            std::string::npos);
  EXPECT_NE(reply.find("sacha_attestd_hello_accepted 1"), std::string::npos);
  EXPECT_NE(reply.find("sacha_net_bytes_rx"), std::string::npos);
  EXPECT_NE(reply.find("sacha_net_bytes_tx"), std::string::npos);
  // The session latency histogram moved to the quantile bucket layout.
  EXPECT_NE(reply.find("sacha_attestd_session_ns_bucket{le=\""),
            std::string::npos);
}

TEST(NetService, OperabilityEndpointsServeJson) {
  obs::set_enabled(true);
  obs::MetricsRegistry::global().reset_values();
  net::AttestServer server;
  ASSERT_TRUE(server.start().ok());
  net::FleetSpec spec;
  ASSERT_TRUE(net::run_load(loopback_load(server, spec, 2)).all_completed());

  const std::string health = http_get(server.port(), "/healthz");
  EXPECT_NE(health.find("200 OK"), std::string::npos);
  EXPECT_NE(health.find("Content-Type: application/json"), std::string::npos);
  EXPECT_NE(health.find("\"status\":\"ok\""), std::string::npos);
  EXPECT_NE(health.find("\"loop_tick_age_ms\":"), std::string::npos);
  EXPECT_NE(health.find("\"lane_depths\":["), std::string::npos);

  const std::string status = http_get(server.port(), "/statusz");
  EXPECT_NE(status.find("200 OK"), std::string::npos);
  EXPECT_NE(status.find("\"wire_version\":4"), std::string::npos);
  EXPECT_NE(status.find("\"completed\":2"), std::string::npos);
  EXPECT_NE(status.find("\"attested\":2"), std::string::npos);
  EXPECT_NE(status.find("\"slo\":{\"latency_objective_ms\":250"),
            std::string::npos);
  EXPECT_NE(status.find("\"budget_remaining_ppm\":"), std::string::npos);
  EXPECT_NE(status.find("\"session_latency_ns\":{\"count\":2"),
            std::string::npos);
  EXPECT_NE(status.find("\"connections\":["), std::string::npos);
  EXPECT_NE(status.find("\"recent_quarantines\":[]"), std::string::npos);

  // Full tracing by default in tests: both sessions' timelines are kept.
  const std::string trace = http_get(server.port(), "/tracez");
  server.stop();
  obs::set_enabled(false);
  EXPECT_NE(trace.find("200 OK"), std::string::npos);
  EXPECT_NE(trace.find("\"capacity\":32"), std::string::npos);
  EXPECT_NE(trace.find("\"timelines\":["), std::string::npos);
  EXPECT_NE(trace.find("\"attested\":true"), std::string::npos);
  EXPECT_NE(trace.find("cmac.finish"), std::string::npos);
}

TEST(NetService, HttpHygieneNotFoundHeadAndBadMethod) {
  net::AttestServer server;
  ASSERT_TRUE(server.start().ok());

  const std::string missing = http_get(server.port(), "/nope");
  EXPECT_NE(missing.find("HTTP/1.1 404 Not Found"), std::string::npos);
  EXPECT_NE(missing.find("served paths are /metrics /healthz /statusz"),
            std::string::npos);

  // HEAD gets the same status line and headers, no body.
  const std::string head = http_exchange(
      server.port(), "HEAD /metrics HTTP/1.1\r\nHost: x\r\n\r\n");
  EXPECT_NE(head.find("200 OK"), std::string::npos);
  EXPECT_NE(head.find("text/plain; version=0.0.4"), std::string::npos);
  const auto header_end = head.find("\r\n\r\n");
  ASSERT_NE(header_end, std::string::npos);
  EXPECT_EQ(head.size(), header_end + 4) << "HEAD reply must omit the body";

  // Unknown method ("G..." so the sniffer still routes it to HTTP): 405.
  const std::string bad_method = http_exchange(
      server.port(), "GRAB /metrics HTTP/1.1\r\nHost: x\r\n\r\n");
  EXPECT_NE(bad_method.find("405 Method Not Allowed"), std::string::npos);
  server.stop();
}

TEST(NetService, ConcurrentScrapesDuringFleetLoad) {
  obs::set_enabled(true);
  obs::MetricsRegistry::global().reset_values();
  net::AttestServer server;
  ASSERT_TRUE(server.start().ok());

  net::FleetSpec spec;
  spec.mixed = true;
  net::LoadOptions load = loopback_load(server, spec, 16);
  load.tampered = {1, 3};

  // Scrape /metrics and /healthz continuously while the mixed fleet runs:
  // the endpoints share the event loop with the wire sessions, so every
  // scrape must come back 200 with no effect on the fleet's verdicts.
  std::atomic<bool> done{false};
  net::LoadResult result;
  std::thread fleet([&] {
    result = net::run_load(load);
    done.store(true);
  });
  std::size_t scrapes = 0;
  std::size_t good = 0;
  while (!done.load()) {
    for (const char* path : {"/metrics", "/healthz"}) {
      const std::string reply = http_get(server.port(), path);
      ++scrapes;
      if (reply.find("200 OK") != std::string::npos) ++good;
    }
  }
  fleet.join();
  const std::string after = http_get(server.port(), "/metrics");
  server.stop();
  obs::set_enabled(false);

  EXPECT_TRUE(result.all_completed());
  EXPECT_EQ(result.attested, 14u) << "scrapes must not disturb verdicts";
  EXPECT_EQ(good, scrapes) << "every mid-load scrape must succeed";
  EXPECT_NE(after.find("sacha_attestd_hello_accepted 16"), std::string::npos);
}

TEST(NetService, PollFallbackServesSessions) {
  net::AttestServerOptions options;
  options.prefer_epoll = false;
  net::AttestServer server(options);
  ASSERT_TRUE(server.start().ok());
  EXPECT_FALSE(server.using_epoll());

  net::FleetSpec spec;
  net::LoadOptions load = loopback_load(server, spec, 4);
  load.prefer_epoll = false;  // both sides on the poll(2) path
  const net::LoadResult result = net::run_load(load);
  server.stop();
  EXPECT_EQ(result.completed, 4u);
  EXPECT_EQ(result.attested, 4u);
}

TEST(NetService, DroppedResponsesHitTheServerTimeout) {
  net::AttestServerOptions options;
  options.session_timeout_ms = 300;  // fast idle cut-off for the test
  net::AttestServer server(options);
  ASSERT_TRUE(server.start().ok());

  net::FleetSpec spec;
  net::LoadOptions load = loopback_load(server, spec, 2);
  load.drop_probability = 1.0;  // every response evaporates
  load.timeout_ms = 5000;
  const net::LoadResult result = net::run_load(load);
  // The second quarantine can land a beat after the clients saw their
  // ERROR frames; give the server loop a moment to finish the teardown.
  net::AttestServerStats stats = server.stats();
  for (int spin = 0; spin < 100 && stats.quarantined < 2; ++spin) {
    ::usleep(10000);
    stats = server.stats();
  }
  server.stop();

  EXPECT_EQ(result.completed, 0u);
  EXPECT_EQ(stats.quarantined, 2u);
}

/// A staged signed OTA artifact: arbitrary manifest contents (the wire
/// handshake only checks the signature chain), signed with the operator
/// identity derived from `signer_seed`.
Bytes staged_offer(std::uint64_t signer_seed) {
  update::UpdateManifest manifest;
  manifest.version = 3;
  manifest.app = {"app-v2", 9};
  crypto::HashSigner signer(signer_seed, /*height=*/3);
  auto signed_manifest = update::sign_manifest(manifest, signer);
  EXPECT_TRUE(signed_manifest.ok());
  return signed_manifest.value().encode();
}

/// The device-side offer handler attest_load installs: decode, verify the
/// signature against the trusted root, answer Staged/Idle. Fresh leaf
/// policy per offer — each member is an independent device seeing the
/// operator's leaf for the first time.
std::function<net::UpdateStatusMsg(const net::UpdateOfferMsg&)>
trusting_handler(std::uint64_t signer_seed) {
  crypto::HashSigner trust(signer_seed, /*height=*/3);
  const crypto::Sha256Digest root = trust.root();
  return [root](const net::UpdateOfferMsg& offer) -> net::UpdateStatusMsg {
    net::UpdateStatusMsg status;
    status.version = offer.version;
    auto signed_manifest = update::SignedManifest::decode(offer.manifest);
    if (!signed_manifest.ok()) {
      status.state = "Idle";
      status.detail = "manifest decode failed";
      return status;
    }
    core::LeafPolicy device_policy;
    const update::ManifestCheck check = update::verify_manifest(
        signed_manifest.value(), root, device_policy, /*device_type=*/"");
    status.accepted = check.ok();
    status.state = check.ok() ? "Staged" : "Idle";
    status.detail = check.ok() ? "manifest verified" : check.detail;
    return status;
  };
}

TEST(NetService, UpdateOfferFollowsPassingSessionsOnly) {
  net::AttestServerOptions options;
  options.update_offer = staged_offer(/*signer_seed=*/31);
  options.update_version = 3;
  net::AttestServer server(options);
  ASSERT_TRUE(server.start().ok());

  net::FleetSpec spec;
  net::LoadOptions load = loopback_load(server, spec, 4);
  load.tampered = {1};  // member 1 fails attestation: no offer for it
  load.on_update_offer = trusting_handler(31);
  const net::LoadResult result = net::run_load(load);

  EXPECT_EQ(result.completed, 4u);
  EXPECT_EQ(result.attested, 3u);
  EXPECT_EQ(result.updates_offered, 3u);
  EXPECT_EQ(result.updates_accepted, 3u);
  for (const net::MemberOutcome& m : result.members) {
    if (m.index == 1) {
      EXPECT_FALSE(m.update_offered) << "offer after a FAILING session";
      continue;
    }
    ASSERT_TRUE(m.update_offered);
    EXPECT_TRUE(m.update_status.accepted);
    EXPECT_EQ(m.update_status.state, "Staged");
    EXPECT_EQ(m.update_status.version, 3u);
  }

  net::AttestServerStats stats = server.stats();
  for (int spin = 0; spin < 100 && stats.updates_accepted < 3; ++spin) {
    ::usleep(10000);
    stats = server.stats();
  }
  EXPECT_EQ(stats.updates_offered, 3u);
  EXPECT_EQ(stats.updates_accepted, 3u);
  EXPECT_EQ(stats.updates_rejected, 0u);
  server.stop();
}

TEST(NetService, TamperedOfferIsRefusedByTheFleet) {
  net::AttestServerOptions options;
  options.update_offer = staged_offer(/*signer_seed=*/31);
  options.update_offer.back() ^= 0x01;  // corrupt the signature bytes
  options.update_version = 3;
  net::AttestServer server(options);
  ASSERT_TRUE(server.start().ok());

  net::FleetSpec spec;
  net::LoadOptions load = loopback_load(server, spec, 2);
  load.on_update_offer = trusting_handler(31);
  const net::LoadResult result = net::run_load(load);

  EXPECT_EQ(result.completed, 2u);
  EXPECT_EQ(result.updates_offered, 2u);
  EXPECT_EQ(result.updates_accepted, 0u);
  for (const net::MemberOutcome& m : result.members) {
    ASSERT_TRUE(m.update_offered);
    EXPECT_FALSE(m.update_status.accepted);
    EXPECT_FALSE(m.update_status.detail.empty());
  }

  // A client with no handler refuses too (default-deny, never a hang).
  net::LoadOptions bare = loopback_load(server, spec, 1);
  const net::LoadResult bare_result = net::run_load(bare);
  EXPECT_EQ(bare_result.completed, 1u);
  ASSERT_EQ(bare_result.updates_offered, 1u);
  EXPECT_EQ(bare_result.updates_accepted, 0u);
  EXPECT_EQ(bare_result.members[0].update_status.detail, "no update handler");

  net::AttestServerStats stats = server.stats();
  for (int spin = 0; spin < 100 && stats.updates_rejected < 3; ++spin) {
    ::usleep(10000);
    stats = server.stats();
  }
  EXPECT_EQ(stats.updates_offered, 3u);
  EXPECT_EQ(stats.updates_accepted, 0u);
  EXPECT_EQ(stats.updates_rejected, 3u);
  server.stop();
}

TEST(NetService, DrainFinishesInFlightAndRefusesNewHellos) {
  net::AttestServer server;
  ASSERT_TRUE(server.start().ok());

  // Slow fleet: every response is held 100 ms client-side, so the sessions
  // are still in flight when the drain begins.
  net::FleetSpec spec;
  net::LoadOptions load = loopback_load(server, spec, 2);
  load.delay_us = 100000;
  net::LoadResult result;
  std::thread fleet([&] { result = net::run_load(load); });
  net::AttestServerStats stats = server.stats();
  for (int spin = 0; spin < 200 && stats.active_connections < 2; ++spin) {
    ::usleep(5000);
    stats = server.stats();
  }
  ASSERT_GE(stats.active_connections, 2u) << "fleet never connected";

  server.begin_drain(/*drain_ms=*/30000);
  EXPECT_TRUE(server.draining());
  const std::string health = http_get(server.port(), "/healthz");
  EXPECT_NE(health.find("\"status\":\"draining\""), std::string::npos)
      << health;

  // In-flight sessions run to completion...
  fleet.join();
  EXPECT_EQ(result.completed, 2u);
  EXPECT_EQ(result.attested, 2u);

  // ...new sessions are refused with a typed ERROR...
  net::LoadOptions late = loopback_load(server, spec, 1);
  const net::LoadResult late_result = net::run_load(late);
  EXPECT_EQ(late_result.completed, 0u);
  ASSERT_EQ(late_result.members.size(), 1u);
  EXPECT_NE(late_result.members[0].error.find("draining"), std::string::npos)
      << late_result.members[0].error;

  // ...and once the stragglers are gone the server reports drained.
  for (int spin = 0; spin < 200 && !server.drained(); ++spin) {
    ::usleep(5000);
  }
  EXPECT_TRUE(server.drained());
  stats = server.stats();
  EXPECT_TRUE(stats.draining);
  EXPECT_EQ(stats.drain_refusals, 1u);
  EXPECT_EQ(stats.sessions_completed, 2u);
  server.stop();
}

TEST(NetService, DrainDeadlineQuarantinesStragglers) {
  net::AttestServerOptions options;
  options.session_timeout_ms = 0;  // only the drain bound cuts them off
  net::AttestServer server(options);
  ASSERT_TRUE(server.start().ok());

  // A member that answers nothing: the session can never finish, so only
  // the drain deadline reclaims it.
  net::FleetSpec spec;
  net::LoadOptions load = loopback_load(server, spec, 1);
  load.drop_probability = 1.0;
  load.timeout_ms = 20000;
  net::LoadResult result;
  std::thread fleet([&] { result = net::run_load(load); });
  net::AttestServerStats stats = server.stats();
  for (int spin = 0; spin < 200 && stats.active_connections < 1; ++spin) {
    ::usleep(5000);
    stats = server.stats();
  }
  ASSERT_GE(stats.active_connections, 1u);

  server.begin_drain(/*drain_ms=*/200);
  for (int spin = 0; spin < 400 && !server.drained(); ++spin) {
    ::usleep(10000);
  }
  EXPECT_TRUE(server.drained());
  stats = server.stats();
  EXPECT_EQ(stats.quarantined, 1u);
  fleet.join();
  EXPECT_EQ(result.completed, 0u);
  server.stop();
}

TEST(NetService, RejectsBadHello) {
  net::AttestServer server;
  ASSERT_TRUE(server.start().ok());

  auto channel = net::TcpChannel::connect("127.0.0.1", server.port());
  ASSERT_TRUE(channel.ok());
  net::TcpChannel conn = std::move(channel).take();
  // Garbage HELLO payload: the server answers ERROR and closes.
  ASSERT_TRUE(conn.send_frame_blocking({net::FrameKind::kHello, Bytes{1, 2, 3}},
                                       5000)
                  .ok());
  auto reply = conn.recv_frame_blocking(5000);
  ASSERT_TRUE(reply.ok()) << reply.message();
  EXPECT_EQ(reply.value().kind, net::FrameKind::kError);
  auto error = net::ErrorMsg::decode(reply.value().payload);
  ASSERT_TRUE(error.ok());
  EXPECT_EQ(error.value().failure, core::FailureKind::kDecodeError);
  server.stop();
}

TEST(NetService, ReuseportSplitsOneListeningPortAcrossProcessesWorthOfServers) {
  // Two independent servers sharing one port via SO_REUSEPORT — the kernel
  // balances incoming connections between them (the shard deployment's
  // same-port scale-out). The second bind succeeds only with the flag on.
  net::AttestServerOptions options;
  options.reuseport = true;
  net::AttestServer a(options);
  ASSERT_TRUE(a.start().ok());
  options.port = a.port();
  net::AttestServer b(options);
  ASSERT_TRUE(b.start().ok()) << "second SO_REUSEPORT bind must succeed";
  ASSERT_EQ(b.port(), a.port());

  // Without the flag, the same bind collides.
  net::AttestServerOptions plain;
  plain.port = a.port();
  net::AttestServer c(plain);
  EXPECT_FALSE(c.start().ok());

  net::FleetSpec spec;
  net::LoadOptions load;
  load.host = "127.0.0.1";
  load.port = a.port();
  load.fleet = spec;
  load.members = 32;
  load.timeout_ms = 60000;
  const net::LoadResult result = net::run_load(load);
  EXPECT_TRUE(result.all_completed());
  EXPECT_EQ(result.attested, 32u);
  const std::uint64_t on_a = a.stats().sessions_completed;
  const std::uint64_t on_b = b.stats().sessions_completed;
  EXPECT_EQ(on_a + on_b, 32u)
      << "every session must land on exactly one of the two listeners";
  a.stop();
  b.stop();
}

TEST(NetService, StatuszReportsGoldenModelCacheSources) {
  const std::string dir = ::testing::TempDir() + "sacha_svc_model_cache";
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);

  net::AttestServerOptions options;
  options.model_cache_dir = dir;
  options.model_map = true;
  {
    net::AttestServer server(options);
    ASSERT_TRUE(server.start().ok());
    net::FleetSpec spec;  // one device type: one build, then intern hits
    const net::LoadResult result =
        net::run_load(loopback_load(server, spec, 4));
    ASSERT_TRUE(result.all_completed());
    const net::AttestServerStats stats = server.stats();
    EXPECT_EQ(stats.models_built, 1u);
    EXPECT_EQ(stats.models_interned, 3u);
    EXPECT_EQ(stats.models_mapped + stats.models_loaded, 0u);
    const std::string status = http_get(server.port(), "/statusz");
    EXPECT_NE(status.find("\"golden_models\":{\"interned\":3"),
              std::string::npos)
        << status;
    EXPECT_NE(status.find("\"audit\":{\"entries\":4"), std::string::npos);
    server.stop();
  }
  // A restarted server warm-starts from the .sgm the first one persisted:
  // the first HELLO maps (or heap-loads under SACHA_PORTABLE) from disk.
  {
    net::AttestServer server(options);
    ASSERT_TRUE(server.start().ok());
    net::FleetSpec spec;
    const net::LoadResult result =
        net::run_load(loopback_load(server, spec, 2));
    ASSERT_TRUE(result.all_completed());
    const net::AttestServerStats stats = server.stats();
    EXPECT_EQ(stats.models_built, 0u);
    if (bitstream::GoldenModel::mapping_supported()) {
      EXPECT_EQ(stats.models_mapped, 1u);
    } else {
      EXPECT_EQ(stats.models_loaded, 1u);
    }
    EXPECT_EQ(stats.models_interned, 1u);
    server.stop();
  }
  std::filesystem::remove_all(dir);
}

TEST(NetService, AuditChainCoversSessionsAndVerifies) {
  net::AttestServer server;
  ASSERT_TRUE(server.start().ok());
  net::FleetSpec spec;
  net::LoadOptions load = loopback_load(server, spec, 6);
  load.tampered = {2};
  const net::LoadResult result = net::run_load(load);
  ASSERT_TRUE(result.all_completed());
  const net::AttestServerStats stats = server.stats();
  EXPECT_EQ(stats.audit_entries, 6u);
  EXPECT_TRUE(server.audit_verify())
      << "hash chain must verify over passing and failing sessions alike";
  EXPECT_NE(server.audit_head(), crypto::Sha256Digest{});
  server.stop();
}

}  // namespace
