// Telemetry layer: registry concurrency, histogram bucket edges, span
// nesting/ordering (including under the parallel swarm schedule), exporter
// golden outputs, and the report/audit wiring that links every verdict to
// its timeline.
#include <gtest/gtest.h>

#include <algorithm>
#include <deque>
#include <thread>

#include "attacks/env.hpp"
#include "core/audit.hpp"
#include "core/swarm.hpp"
#include "obs/export.hpp"
#include "obs/metrics.hpp"
#include "obs/slo.hpp"
#include "obs/trace.hpp"

using namespace sacha;

namespace {

/// Every test starts with telemetry on, a drained tracer, and zeroed
/// instruments, and leaves telemetry off (the library default) behind.
class ObsTest : public ::testing::Test {
 protected:
  void SetUp() override {
    obs::set_enabled(true);
    obs::Tracer::global().clear();
    obs::MetricsRegistry::global().reset_values();
  }
  void TearDown() override {
    obs::Tracer::global().clear();
    obs::MetricsRegistry::global().reset_values();
    obs::set_enabled(false);
  }
};

TEST_F(ObsTest, CounterIdentityAndBasics) {
  auto& registry = obs::MetricsRegistry::global();
  obs::Counter& a = registry.counter("test.identity");
  obs::Counter& b = registry.counter("test.identity");
  EXPECT_EQ(&a, &b) << "same name must resolve to the same instrument";
  a.add(3);
  b.add(4);
  EXPECT_EQ(a.value(), 7u);
}

TEST_F(ObsTest, CountersFromManyThreadsSumExactly) {
  auto& registry = obs::MetricsRegistry::global();
  constexpr int kThreads = 8;
  constexpr int kIncrements = 50'000;
  std::vector<std::thread> pool;
  for (int t = 0; t < kThreads; ++t) {
    pool.emplace_back([&registry] {
      // Deliberately re-resolve by name per thread: registration must be
      // thread-safe and return the one shared instrument.
      obs::Counter& c = registry.counter("test.concurrent");
      obs::Histogram& h = registry.histogram("test.concurrent_hist");
      for (int i = 0; i < kIncrements; ++i) {
        c.add(1);
        h.observe(1'000);
      }
    });
  }
  for (auto& t : pool) t.join();
  EXPECT_EQ(registry.counter("test.concurrent").value(),
            static_cast<std::uint64_t>(kThreads) * kIncrements);
  EXPECT_EQ(registry.histogram("test.concurrent_hist").count(),
            static_cast<std::uint64_t>(kThreads) * kIncrements);
}

TEST_F(ObsTest, DisabledInstrumentsDoNotCount) {
  auto& registry = obs::MetricsRegistry::global();
  obs::Counter& c = registry.counter("test.disabled");
  obs::Histogram& h = registry.histogram("test.disabled_hist");
  obs::set_enabled(false);
  c.add(5);
  h.observe(123);
  EXPECT_EQ(c.value(), 0u);
  EXPECT_EQ(h.count(), 0u);
  obs::set_enabled(true);
  c.add(5);
  EXPECT_EQ(c.value(), 5u);
}

TEST_F(ObsTest, HistogramBucketEdges) {
  const std::uint64_t bounds[] = {10, 100, 1000};
  obs::Histogram h{std::span<const std::uint64_t>(bounds)};
  // `le` semantics: v <= bound lands in that bucket.
  h.observe(0);     // -> le=10
  h.observe(10);    // -> le=10 (edge inclusive)
  h.observe(11);    // -> le=100
  h.observe(100);   // -> le=100
  h.observe(101);   // -> le=1000
  h.observe(1000);  // -> le=1000
  h.observe(1001);  // -> overflow
  const std::vector<std::uint64_t> counts = h.bucket_counts();
  ASSERT_EQ(counts.size(), 4u);
  EXPECT_EQ(counts[0], 2u);
  EXPECT_EQ(counts[1], 2u);
  EXPECT_EQ(counts[2], 2u);
  EXPECT_EQ(counts[3], 1u);
  EXPECT_EQ(h.count(), 7u);
  EXPECT_EQ(h.sum(), 0u + 10 + 11 + 100 + 101 + 1000 + 1001);
}

TEST_F(ObsTest, TraceIdDerivation) {
  const obs::TraceId a = obs::make_trace_id("device-1", 42);
  const obs::TraceId b = obs::make_trace_id("device-1", 42);
  const obs::TraceId c = obs::make_trace_id("device-2", 42);
  const obs::TraceId d = obs::make_trace_id("device-1", 43);
  EXPECT_EQ(a, b);
  EXPECT_NE(a, c);
  EXPECT_NE(a, d);
  EXPECT_TRUE(a.valid());
  EXPECT_EQ(obs::to_string(a).size(), 32u);
}

TEST_F(ObsTest, SpanNestingDepthAndContainment) {
  const obs::TraceId id = obs::make_trace_id("nest", 1);
  {
    obs::Span outer("outer", id);
    {
      obs::Span inner("inner", id);
      obs::Span sibling_after_inner_ends("ignored", {});
      // `inner` still open here: depth of this span is outer+2.
    }
    obs::Span second("second", id);
  }
  const auto records = obs::Tracer::global().drain();
  ASSERT_EQ(records.size(), 4u);
  const auto find = [&](const std::string& name) -> const obs::SpanRecord& {
    for (const auto& r : records) {
      if (r.name == name) return r;
    }
    ADD_FAILURE() << "missing span " << name;
    static obs::SpanRecord none;
    return none;
  };
  const auto& outer = find("outer");
  const auto& inner = find("inner");
  const auto& second = find("second");
  EXPECT_EQ(inner.depth, outer.depth + 1);
  EXPECT_EQ(second.depth, outer.depth + 1);
  // Containment: children start no earlier and end no later than the parent.
  EXPECT_GE(inner.start_ns, outer.start_ns);
  EXPECT_LE(inner.start_ns + inner.duration_ns,
            outer.start_ns + outer.duration_ns);
  // Ordering: spans are recorded in end order, so inner precedes outer.
  EXPECT_LT(&inner - records.data(), &outer - records.data());
  // Sibling ordering within the parent.
  EXPECT_GE(second.start_ns, inner.start_ns + inner.duration_ns);
}

TEST_F(ObsTest, DisabledSpansRecordNothing) {
  obs::set_enabled(false);
  {
    obs::Span span("invisible", obs::make_trace_id("x", 1));
  }
  EXPECT_EQ(obs::Tracer::global().size(), 0u);
}

TEST_F(ObsTest, SessionTimelinePhasesAndCoverage) {
  attacks::AttackEnv env = attacks::AttackEnv::small(7);
  core::SachaVerifier verifier = env.make_verifier();
  core::SachaProver prover = env.make_prover();
  const auto report =
      core::run_attestation(verifier, prover, env.session_options);
  ASSERT_TRUE(report.verdict.ok());
  EXPECT_TRUE(report.trace_id.valid());
  EXPECT_GT(report.host_ns, 0u);

  const auto records = obs::Tracer::global().records();
  std::size_t rounds = 0;
  bool saw_configure = false, saw_nonce = false, saw_readback = false,
       saw_cmac = false, saw_verdict = false, saw_session = false;
  for (const auto& r : records) {
    if (r.trace != report.trace_id) continue;
    if (r.name == "configure.stream_in") saw_configure = true;
    if (r.name == "nonce.inject") saw_nonce = true;
    if (r.name == "readback.absorb") saw_readback = true;
    if (r.name == "cmac.finish") saw_cmac = true;
    if (r.name == "compare.verdict") saw_verdict = true;
    if (r.name == "session") saw_session = true;
    if (r.name == "readback.round") ++rounds;
  }
  EXPECT_TRUE(saw_configure);
  EXPECT_TRUE(saw_nonce);
  EXPECT_TRUE(saw_readback);
  EXPECT_TRUE(saw_cmac);
  EXPECT_TRUE(saw_verdict);
  EXPECT_TRUE(saw_session);
  EXPECT_EQ(rounds, verifier.readback_steps().size());
  // The phase spans tile the session: >= 95% of its wall-clock is covered.
  EXPECT_GE(obs::timeline_coverage(records, report.trace_id), 0.95);

  // Hot-path instruments moved with the session: the prover read exactly
  // the frames the verifier absorbed, and the MAC engine hashed exactly the
  // words the verifier streamed.
  const auto snap = obs::MetricsRegistry::global().snapshot();
  const std::uint64_t frames =
      snap.counter_value("sacha.verifier.frames_absorbed");
  EXPECT_GT(frames, 0u);
  EXPECT_EQ(snap.counter_value("sacha.prover.icap_frames_read"), frames);
  EXPECT_EQ(snap.counter_value("sacha.prover.mac_update_bytes"),
            snap.counter_value("sacha.verifier.words_absorbed") * 4);
  EXPECT_EQ(snap.counter_value("sacha.session.attested"), 1u);
  EXPECT_GT(snap.counter_value("sacha.net.messages"), 0u);
}

TEST_F(ObsTest, ParallelSwarmTimelineMergesAllMembers) {
  constexpr std::size_t kMembers = 8;
  // Coverage is a wall-clock property: on an oversubscribed host the OS can
  // preempt a worker between two back-to-back phase spans and the gap reads
  // as uncovered session time. The structural checks are asserted on every
  // attempt; only the 95% coverage bar gets retried before failing.
  double min_coverage = 0.0;
  for (int attempt = 0; attempt < 3 && min_coverage < 0.95; ++attempt) {
    obs::Tracer::global().clear();
    obs::MetricsRegistry::global().reset_values();
    std::deque<attacks::AttackEnv> envs;
    std::deque<core::SachaVerifier> verifiers;
    std::deque<core::SachaProver> provers;
    std::vector<core::SwarmMember> members;
    for (std::size_t i = 0; i < kMembers; ++i) {
      envs.push_back(attacks::AttackEnv::small(300 + i));
      verifiers.push_back(envs.back().make_verifier());
      provers.push_back(envs.back().make_prover());
    }
    for (std::size_t i = 0; i < kMembers; ++i) {
      members.push_back(core::SwarmMember{"node-" + std::to_string(i),
                                          &verifiers[i], &provers[i], {}});
    }
    const core::SwarmReport report =
        core::attest_swarm(members, core::SwarmSchedule::kParallel);
    ASSERT_TRUE(report.all_attested());
    EXPECT_TRUE(report.fleet_trace.valid());
    EXPECT_GT(report.host_ns, 0u);
    EXPECT_FALSE(report.metrics.empty())
        << "enabled runs must snapshot the registry into the report";
    EXPECT_EQ(report.metrics.counter_value("sacha.session.attested"),
              kMembers);

    const auto records = obs::Tracer::global().records();
    // One merged timeline: every member's session spans are present, each
    // with its own trace id, and each session's phase spans cover >= 95% of
    // that member's wall-clock (the acceptance bar for the fleet timeline).
    std::size_t member_spans = 0;
    for (const auto& r : records) {
      if (r.name == "swarm.member" && r.trace == report.fleet_trace) {
        ++member_spans;
      }
    }
    EXPECT_EQ(member_spans, kMembers);
    min_coverage = 1.0;
    for (const auto& m : report.members) {
      ASSERT_TRUE(m.trace_id.valid()) << m.id;
      EXPECT_GT(m.host_ns, 0u) << m.id;
      min_coverage =
          std::min(min_coverage, obs::timeline_coverage(records, m.trace_id));
    }
    // Member trace ids are distinct — the merged stream stays separable.
    for (std::size_t i = 0; i < kMembers; ++i) {
      for (std::size_t j = i + 1; j < kMembers; ++j) {
        EXPECT_NE(report.members[i].trace_id, report.members[j].trace_id);
      }
    }
    // The Chrome export of the merged timeline is one well-formed JSON
    // object containing every member's lane.
    const std::string chrome = obs::chrome_trace_json(records);
    EXPECT_NE(chrome.find("\"traceEvents\""), std::string::npos);
    for (const auto& m : report.members) {
      EXPECT_NE(chrome.find(obs::to_string(m.trace_id)), std::string::npos)
          << m.id;
    }
  }
  EXPECT_GE(min_coverage, 0.95);
}

TEST_F(ObsTest, AuditEntryLinksVerdictToTimeline) {
  attacks::AttackEnv env = attacks::AttackEnv::small(21);
  core::SachaVerifier verifier = env.make_verifier();
  core::SachaProver prover = env.make_prover();
  const auto report =
      core::run_attestation(verifier, prover, env.session_options);

  core::AuditLog log;
  log.append(prover.device_id(), verifier.nonce(), report);
  ASSERT_EQ(log.size(), 1u);
  EXPECT_EQ(log.entries()[0].trace_id, report.trace_id);
  EXPECT_TRUE(log.verify_chain());

  // The trace id is covered by the hash chain: rewriting which timeline a
  // verdict claims to have is tamper-evident.
  core::AuditLog tampered = log;
  const_cast<core::AuditEntry&>(tampered.entries()[0]).trace_id.lo ^= 1;
  EXPECT_FALSE(tampered.verify_chain());
}

TEST_F(ObsTest, MetricsJsonGolden) {
  obs::MetricsSnapshot snap;
  snap.counters.push_back({"sacha.a", 3});
  snap.gauges.push_back({"sacha.g", -2});
  snap.histograms.push_back({"sacha.h", {10, 20}, {1, 0, 2}, 3, 52});
  const std::string expected =
      "{\n"
      "  \"counters\": {\n"
      "    \"sacha.a\": 3\n"
      "  },\n"
      "  \"gauges\": {\n"
      "    \"sacha.g\": -2\n"
      "  },\n"
      "  \"histograms\": {\n"
      "    \"sacha.h\": {\"count\": 3, \"sum\": 52, \"bounds\": [10,20], "
      "\"buckets\": [1,0,2]}\n"
      "  }\n"
      "}\n";
  EXPECT_EQ(obs::metrics_json(snap), expected);
}

TEST_F(ObsTest, PrometheusTextGolden) {
  obs::MetricsSnapshot snap;
  snap.counters.push_back({"sacha.verifier.frames_absorbed", 16});
  snap.gauges.push_back({"sacha.fleet.size", 4});
  snap.histograms.push_back({"sacha.net.transfer_sim_ns", {10, 20}, {1, 0, 2},
                             3, 52});
  const std::string expected =
      "# HELP sacha_verifier_frames_absorbed SACHa counter "
      "sacha.verifier.frames_absorbed\n"
      "# TYPE sacha_verifier_frames_absorbed counter\n"
      "sacha_verifier_frames_absorbed 16\n"
      "# HELP sacha_fleet_size SACHa gauge sacha.fleet.size\n"
      "# TYPE sacha_fleet_size gauge\n"
      "sacha_fleet_size 4\n"
      "# HELP sacha_net_transfer_sim_ns SACHa histogram "
      "sacha.net.transfer_sim_ns\n"
      "# TYPE sacha_net_transfer_sim_ns histogram\n"
      "sacha_net_transfer_sim_ns_bucket{le=\"10\"} 1\n"
      "sacha_net_transfer_sim_ns_bucket{le=\"20\"} 1\n"
      "sacha_net_transfer_sim_ns_bucket{le=\"+Inf\"} 3\n"
      "sacha_net_transfer_sim_ns_sum 52\n"
      "sacha_net_transfer_sim_ns_count 3\n";
  EXPECT_EQ(obs::prometheus_text(snap), expected);
}

TEST_F(ObsTest, ChromeTraceGolden) {
  obs::SpanRecord r;
  r.name = "session";
  r.category = "phase";
  r.trace = obs::TraceId{0x1122334455667788ULL, 0x99aabbccddeeff00ULL};
  r.thread_id = 0xdeadbeef;
  r.start_ns = 1'500;
  r.duration_ns = 2'250;
  r.args.emplace_back("device", "node-0");
  const std::string expected =
      "{\"traceEvents\": [\n"
      " {\"name\": \"session\", \"cat\": \"phase\", \"ph\": \"X\", "
      "\"pid\": 1, \"tid\": 0, \"ts\": 1.500, \"dur\": 2.250, \"args\": "
      "{\"trace_id\": \"112233445566778899aabbccddeeff00\", "
      "\"device\": \"node-0\"}}\n"
      "]}\n";
  EXPECT_EQ(obs::chrome_trace_json({r}), expected);
}

TEST_F(ObsTest, PrometheusNameSanitization) {
  // Dots (and anything else outside [a-zA-Z0-9_:]) become underscores.
  EXPECT_EQ(obs::prometheus_name("sacha.phase.configure.stream_in_ns"),
            "sacha_phase_configure_stream_in_ns");
  EXPECT_EQ(obs::prometheus_name("sacha.net.bytes-rx"), "sacha_net_bytes_rx");
  // Colons and underscores are legal and pass through.
  EXPECT_EQ(obs::prometheus_name("ns:metric_name"), "ns:metric_name");
  // A leading digit gets a prefix (names must start with [a-zA-Z_:]).
  EXPECT_EQ(obs::prometheus_name("9lives"), "_9lives");
  EXPECT_EQ(obs::prometheus_name(""), "");
}

TEST_F(ObsTest, PrometheusLabelEscaping) {
  EXPECT_EQ(obs::prometheus_label_escape("plain"), "plain");
  EXPECT_EQ(obs::prometheus_label_escape("a\\b"), "a\\\\b");
  EXPECT_EQ(obs::prometheus_label_escape("say \"hi\""), "say \\\"hi\\\"");
  EXPECT_EQ(obs::prometheus_label_escape("line\nbreak"), "line\\nbreak");
}

TEST_F(ObsTest, SamplerDecisionIsDeterministicPerTraceId) {
  // The keep/drop decision is a pure function of (id, rate): two unrelated
  // sampler instances at the same rate must agree on every id — this is
  // what lets the prover-side client and the verifier-side service sample
  // the same sessions with no coordination.
  obs::Sampler a(0.37);
  obs::Sampler b(0.37);
  for (std::uint64_t n = 0; n < 512; ++n) {
    const obs::TraceId id = obs::make_trace_id("det-device", n);
    EXPECT_EQ(a.should_sample(id), b.should_sample(id)) << n;
  }
  // Invalid (all-zero) ids are never sampled, at any rate.
  EXPECT_FALSE(obs::Sampler(1.0).should_sample(obs::TraceId{}));
}

TEST_F(ObsTest, SamplerRateBoundsAndFraction) {
  obs::Sampler none(0.0);
  obs::Sampler all(1.0);
  std::size_t kept_half = 0;
  constexpr std::size_t kIds = 4'096;
  obs::Sampler half(0.5);
  for (std::uint64_t n = 0; n < kIds; ++n) {
    const obs::TraceId id = obs::make_trace_id("frac-device", n);
    EXPECT_FALSE(none.should_sample(id));
    EXPECT_TRUE(all.should_sample(id));
    if (half.should_sample(id)) ++kept_half;
  }
  // The hash is uniform enough that 0.5 keeps roughly half (±10%).
  EXPECT_GT(kept_half, kIds * 2 / 5);
  EXPECT_LT(kept_half, kIds * 3 / 5);
  // Rate round-trips through the 2^64 threshold encoding.
  obs::Sampler s(0.01);
  EXPECT_NEAR(s.rate(), 0.01, 1e-9);
  s.set_rate(7.0);  // clamped
  EXPECT_EQ(s.rate(), 1.0);
  s.set_rate(-1.0);
  EXPECT_EQ(s.rate(), 0.0);
}

TEST_F(ObsTest, QuantileHistogramExtraction) {
  obs::QuantileHistogram h;
  EXPECT_EQ(h.quantile(0.5), 0.0) << "no observations -> 0";
  // 1000 observations of ~1 ms: every quantile interpolates inside the
  // bucket holding 1e6 ns, so the estimate is within the bucket ratio
  // (~1.58) of the true value.
  for (int i = 0; i < 1000; ++i) h.observe(1'000'000);
  const double p50 = h.quantile(0.50);
  const double p99 = h.quantile(0.99);
  EXPECT_GT(p50, 1'000'000.0 / 1.6);
  EXPECT_LT(p50, 1'000'000.0 * 1.6);
  EXPECT_LE(p50, p99) << "quantiles are monotone in q";
  // Observations past the last bound clamp to it instead of inventing a
  // value beyond the tracked range.
  obs::QuantileHistogram over;
  over.observe(~0ULL);
  EXPECT_LE(over.quantile(1.0),
            static_cast<double>(obs::log_latency_buckets_ns().back()));

  // quantile_from_sample is the offline counterpart: feeding it the
  // snapshot of the same histogram yields the same estimate.
  obs::HistogramSample sample;
  sample.name = "q";
  const auto bounds = obs::log_latency_buckets_ns();
  sample.upper_bounds.assign(bounds.begin(), bounds.end());
  sample.bucket_counts = h.bucket_counts();
  sample.count = h.count();
  sample.sum = h.sum();
  EXPECT_DOUBLE_EQ(obs::quantile_from_sample(sample, 0.5), p50);
}

TEST_F(ObsTest, ObservePhaseDurationFeedsQuantileHistograms) {
  obs::observe_phase_duration("cmac.finish", 2'000'000);
  obs::observe_phase_duration("cmac.finish", 4'000'000);
  const auto snap = obs::MetricsRegistry::global().snapshot();
  const obs::HistogramSample* found = nullptr;
  for (const auto& h : snap.histograms) {
    if (h.name == "sacha.phase.cmac.finish_ns") found = &h;
  }
  ASSERT_NE(found, nullptr);
  EXPECT_EQ(found->count, 2u);
  EXPECT_EQ(found->sum, 6'000'000u);
  const double p50 = obs::quantile_from_sample(*found, 0.5);
  EXPECT_GT(p50, 0.0);
  // Disabled telemetry drops the observation entirely.
  obs::set_enabled(false);
  obs::observe_phase_duration("cmac.finish", 8'000'000);
  obs::set_enabled(true);
  EXPECT_EQ(obs::MetricsRegistry::global()
                .quantile_histogram("sacha.phase.cmac.finish_ns")
                .count(),
            2u);
}

TEST_F(ObsTest, SloTrackerBudgetAndBurn) {
  // Target 0.9 -> 10% error budget. Nine fast successes and one slow
  // success: the slow one misses the latency clause, so the budget is
  // exactly exhausted and the burn rate is exactly 1.0 (1000 milli).
  obs::SloTracker slo({.latency_objective_ns = 1'000'000, .target = 0.9});
  for (int i = 0; i < 9; ++i) slo.record(100'000, true);
  slo.record(2'000'000, true);  // attested but over the objective
  EXPECT_EQ(slo.total(), 10u);
  EXPECT_EQ(slo.good(), 9u);
  EXPECT_EQ(slo.budget_remaining_ppm(), 0);
  EXPECT_EQ(slo.burn_rate_milli(), 1000);

  // All-good stream: untouched budget, zero burn.
  obs::SloTracker clean({.latency_objective_ns = 1'000'000, .target = 0.9});
  for (int i = 0; i < 5; ++i) clean.record(100, true);
  EXPECT_EQ(clean.budget_remaining_ppm(), 1'000'000);
  EXPECT_EQ(clean.burn_rate_milli(), 0);

  // Failures burn budget regardless of latency; a 0 objective disables the
  // latency clause so only failures count as bad.
  obs::SloTracker failures({.latency_objective_ns = 0, .target = 0.9});
  failures.record(999'999'999'999ULL, true);  // slow but ok: still good
  failures.record(1, false);                  // failed: bad
  EXPECT_EQ(failures.total(), 2u);
  EXPECT_EQ(failures.good(), 1u);

  // The gauges ride the registry so /metrics exports them.
  const auto snap = obs::MetricsRegistry::global().snapshot();
  bool saw_burn = false;
  for (const auto& g : snap.gauges) {
    if (g.name == "sacha.slo.burn_rate_milli") saw_burn = true;
  }
  EXPECT_TRUE(saw_burn);
}

TEST_F(ObsTest, ExportersHandleEmptyState) {
  obs::MetricsSnapshot empty;
  EXPECT_EQ(obs::metrics_json(empty),
            "{\n  \"counters\": {},\n  \"gauges\": {},\n  \"histograms\": "
            "{}\n}\n");
  EXPECT_EQ(obs::prometheus_text(empty), "");
  EXPECT_EQ(obs::chrome_trace_json({}), "{\"traceEvents\": [\n]}\n");
}

TEST_F(ObsTest, HistogramMergeSampleAddsBucketsAndRejectsShape) {
  const std::uint64_t bounds[] = {10, 100, 1000};
  obs::Histogram hist{std::span<const std::uint64_t>(bounds)};
  hist.observe(5);
  hist.observe(500);

  obs::HistogramSample sample;
  sample.upper_bounds = {10, 100, 1000};
  sample.bucket_counts = {1, 2, 0, 3};  // + overflow
  sample.count = 6;
  sample.sum = 12345;
  ASSERT_TRUE(hist.merge_sample(sample));
  EXPECT_EQ(hist.count(), 8u);
  const auto counts = hist.bucket_counts();
  ASSERT_EQ(counts.size(), 4u);
  EXPECT_EQ(counts[0], 2u);  // own 5 + sample's 1
  EXPECT_EQ(counts[1], 2u);
  EXPECT_EQ(counts[2], 1u);  // own 500
  EXPECT_EQ(counts[3], 3u);

  // Mismatched shapes must refuse and leave the histogram untouched.
  obs::HistogramSample wrong = sample;
  wrong.upper_bounds = {10, 100};
  wrong.bucket_counts = {1, 1, 1};
  EXPECT_FALSE(hist.merge_sample(wrong));
  EXPECT_EQ(hist.count(), 8u);
}

TEST_F(ObsTest, MergeIntoSumsByNameAcrossShards) {
  obs::MetricsSnapshot fleet;
  fleet.counters.push_back({"sacha_net_sessions_total", 10});
  fleet.gauges.push_back({"sacha_net_active", 2});
  fleet.histograms.push_back({"sacha_net_session_ns", {10, 100}, {1, 0, 1}, 2,
                              150});

  obs::MetricsSnapshot shard;
  shard.counters.push_back({"sacha_net_sessions_total", 5});
  shard.counters.push_back({"sacha_net_errors_total", 1});  // new to dst
  shard.gauges.push_back({"sacha_net_active", 3});
  shard.histograms.push_back({"sacha_net_session_ns", {10, 100}, {2, 1, 0}, 3,
                              60});

  obs::merge_into(fleet, shard);
  EXPECT_EQ(fleet.counter_value("sacha_net_sessions_total"), 15u);
  EXPECT_EQ(fleet.counter_value("sacha_net_errors_total"), 1u);
  ASSERT_EQ(fleet.gauges.size(), 1u);
  EXPECT_EQ(fleet.gauges[0].value, 5);
  ASSERT_EQ(fleet.histograms.size(), 1u);
  const obs::HistogramSample& merged = fleet.histograms[0];
  EXPECT_EQ(merged.count, 5u);
  EXPECT_EQ(merged.sum, 210u);
  EXPECT_EQ(merged.bucket_counts, (std::vector<std::uint64_t>{3, 1, 1}));
}

TEST_F(ObsTest, PrometheusTextParsesBackAndRoundTrips) {
  auto& registry = obs::MetricsRegistry::global();
  registry.counter("sacha.net.sessions_total").add(7);
  registry.gauge("sacha.net.active").set(3);
  const std::uint64_t bounds[] = {10, 100};
  auto& hist = registry.histogram("sacha.net.session_ns",
                                  std::span<const std::uint64_t>(bounds));
  hist.observe(5);
  hist.observe(50);
  hist.observe(5000);  // overflow bucket

  const std::string text = obs::prometheus_text(registry.snapshot());
  const obs::MetricsSnapshot parsed = obs::parse_prometheus_text(text);
  EXPECT_EQ(parsed.counter_value("sacha_net_sessions_total"), 7u);
  ASSERT_FALSE(parsed.histograms.empty());
  const obs::HistogramSample* sample = nullptr;
  for (const auto& h : parsed.histograms) {
    if (h.name == "sacha_net_session_ns") sample = &h;
  }
  ASSERT_NE(sample, nullptr);
  // `le` buckets un-cumulate back to per-bucket counts, overflow recovered
  // from _count.
  EXPECT_EQ(sample->upper_bounds, (std::vector<std::uint64_t>{10, 100}));
  EXPECT_EQ(sample->bucket_counts, (std::vector<std::uint64_t>{1, 1, 1}));
  EXPECT_EQ(sample->count, 3u);

  // Sanitized names are stable: re-emitting the parsed snapshot is a
  // fixed point.
  const std::string again = obs::prometheus_text(parsed);
  EXPECT_EQ(obs::prometheus_text(obs::parse_prometheus_text(again)), again);
}

}  // namespace
