// Tests for the SACHa core: wire protocol codec, MAC engine timing, prover
// behaviour, and full verifier<->prover sessions on the small test device —
// honest runs, every readback order, tampering, impersonation, lossy
// channels, and the PUF-keyed variants.
#include <gtest/gtest.h>

#include "core/prover.hpp"
#include "core/session.hpp"
#include "core/verifier.hpp"
#include "puf/enrollment.hpp"

namespace sacha::core {
namespace {

namespace bs = sacha::bitstream;

fabric::Floorplan small_plan() {
  fabric::Floorplan plan(fabric::DeviceModel::small_test_device());
  plan.add_partition({"StatPart",
                      fabric::PartitionKind::kStatic,
                      fabric::FrameRange{0, 4},
                      {.clb = 20, .bram18 = 2, .iob = 4, .dcm = 1, .icap = 1}});
  plan.add_partition({"DynPart",
                      fabric::PartitionKind::kDynamic,
                      fabric::FrameRange{4, 12},
                      {.clb = 80, .bram18 = 6, .iob = 12, .dcm = 1, .icap = 0}});
  return plan;
}

crypto::AesKey test_key(std::uint8_t fill = 0x5a) {
  crypto::AesKey key{};
  key.fill(fill);
  return key;
}

struct Rig {
  explicit Rig(VerifierOptions options = {}, std::uint64_t seed = 1)
      : verifier(small_plan(), bs::DesignSpec{"static-v1", 1},
                 bs::DesignSpec{"app-v1", 1}, test_key(), seed, options),
        prover(fabric::DeviceModel::small_test_device(), "dev-1", test_key()) {
    prover.boot(verifier.static_image());
  }
  SachaVerifier verifier;
  SachaProver prover;
};

// ---------------------------------------------------------------- Protocol

TEST(Protocol, CommandRoundTrip) {
  const Command cmd{CommandType::kIcapReadback, 123, {0xAA995566, 0x20000000}};
  auto decoded = Command::decode(cmd.encode());
  ASSERT_TRUE(decoded.ok()) << decoded.message();
  EXPECT_EQ(decoded.value(), cmd);
}

TEST(Protocol, ConfigCommandHasNoFrameNb) {
  const Command cmd{CommandType::kIcapConfig, 0, {1, 2, 3}};
  EXPECT_EQ(cmd.wire_payload_bytes(), 4u + 12u);
  auto decoded = Command::decode(cmd.encode());
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded.value().stream, cmd.stream);
}

TEST(Protocol, ChecksumCommandIsHeaderOnly) {
  const Command cmd{CommandType::kMacChecksum, 0, {}};
  EXPECT_EQ(cmd.wire_payload_bytes(), 4u);
  EXPECT_TRUE(Command::decode(cmd.encode()).ok());
}

TEST(Protocol, CommandRejectsGarbage) {
  EXPECT_FALSE(Command::decode(Bytes{}).ok());
  EXPECT_FALSE(Command::decode(Bytes{9, 0, 0, 0}).ok());      // bad type
  EXPECT_FALSE(Command::decode(Bytes{1, 0, 0xff, 0xff}).ok());  // bad length
  EXPECT_FALSE(Command::decode(Bytes{1, 0, 0, 3, 1, 2, 3}).ok());  // misaligned
}

TEST(Protocol, FrameDataResponseRoundTrip) {
  Response resp{.type = ResponseType::kFrameData,
                .status = ProverStatus::kOk,
                .frame_words = {1, 2, 3, 4, 5, 6, 7, 8}};
  auto decoded = Response::decode(resp.encode());
  ASSERT_TRUE(decoded.ok()) << decoded.message();
  EXPECT_EQ(decoded.value(), resp);
}

TEST(Protocol, MacResponseRoundTrip) {
  Response resp{.type = ResponseType::kMacValue, .status = ProverStatus::kOk};
  for (std::size_t i = 0; i < resp.mac.size(); ++i) {
    resp.mac[i] = static_cast<std::uint8_t>(i);
  }
  auto decoded = Response::decode(resp.encode());
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded.value().mac, resp.mac);
}

TEST(Protocol, FrameResponseWireSizeMatchesTable3) {
  // On the Virtex-6 a frame response is 4 + 324 = 328 payload bytes, which
  // is the 366-byte wire frame behind Table 3's 2,928 ns A8 row.
  Response resp{.type = ResponseType::kFrameData,
                .status = ProverStatus::kOk,
                .frame_words = std::vector<std::uint32_t>(81, 0)};
  EXPECT_EQ(resp.wire_payload_bytes(), 328u);
}

TEST(Protocol, ResponseRejectsGarbage) {
  EXPECT_FALSE(Response::decode(Bytes{}).ok());
  EXPECT_FALSE(Response::decode(Bytes{7, 0, 0, 0}).ok());  // bad type
  Response mac_resp{.type = ResponseType::kMacValue};
  Bytes wire = mac_resp.encode();
  wire[3] = 5;  // claim a 5-byte MAC
  EXPECT_FALSE(Response::decode(ByteSpan(wire).subspan(0, 9)).ok());
}

// --------------------------------------------------------------- MacEngine

TEST(MacEngineTiming, MatchesTable3Rows) {
  MacEngine engine(test_key());
  EXPECT_EQ(engine.init(), 120u);                 // A5
  EXPECT_EQ(engine.update(Bytes(324, 1)), 128u);  // A6
  sim::SimDuration fin = 0;
  (void)engine.finalize(fin);
  EXPECT_EQ(fin, 136u);  // A7
}

TEST(MacEngine, MatchesPlainCmac) {
  MacEngine engine(test_key());
  const Bytes frame1(324, 0x11), frame2(324, 0x22);
  (void)engine.init();
  (void)engine.update(frame1);
  (void)engine.update(frame2);
  sim::SimDuration fin = 0;
  const crypto::Mac got = engine.finalize(fin);

  crypto::Cmac reference(test_key());
  reference.update(frame1);
  reference.update(frame2);
  EXPECT_EQ(got, reference.finalize());
}

TEST(MacEngine, RekeyChangesMac) {
  const Bytes frame(324, 0x33);
  MacEngine engine(test_key(0x01));
  (void)engine.init();
  (void)engine.update(frame);
  sim::SimDuration d = 0;
  const crypto::Mac mac1 = engine.finalize(d);

  engine.rekey(test_key(0x02));
  (void)engine.init();
  (void)engine.update(frame);
  const crypto::Mac mac2 = engine.finalize(d);
  EXPECT_NE(mac1, mac2);
}

// ------------------------------------------------------------------ Prover

TEST(Prover, BootLoadsStaticFrames) {
  Rig rig;
  for (std::uint32_t i = 0; i < 4; ++i) {
    EXPECT_EQ(rig.prover.memory().config_frame(i),
              rig.verifier.static_image().frames[i]);
  }
}

TEST(Prover, RejectsUndecodablePacket) {
  Rig rig;
  auto result = rig.prover.handle_packet(Bytes{0xff, 0xff});
  ASSERT_TRUE(result.response.has_value());
  EXPECT_EQ(result.response->type, ResponseType::kError);
  EXPECT_EQ(result.response->status, ProverStatus::kBadCommand);
}

TEST(Prover, RejectsChecksumBeforeReadback) {
  Rig rig;
  const Command cmd{CommandType::kMacChecksum, 0, {}};
  auto result = rig.prover.handle(cmd);
  ASSERT_TRUE(result.response.has_value());
  EXPECT_EQ(result.response->status, ProverStatus::kNoMacPending);
}

TEST(Prover, ConfigIsFireAndForget) {
  Rig rig;
  rig.verifier.begin();
  auto result = rig.prover.handle(rig.verifier.command(0));
  EXPECT_FALSE(result.response.has_value());
  EXPECT_GT(result.icap_time, 0u);
}

TEST(Prover, OversizedCommandRejectedByBoundedBuffer) {
  // A command stream larger than the BRAM staging buffer cannot be staged:
  // the bounded-memory property enforced at the implementation level.
  Rig rig;
  Command big{CommandType::kIcapConfig, 0,
              std::vector<std::uint32_t>(5'000, 0x12345678)};
  auto result = rig.prover.handle_packet(big.encode());
  ASSERT_TRUE(result.response.has_value());
  EXPECT_EQ(result.response->status, ProverStatus::kBadCommand);
}

TEST(Prover, NoopPaddingIsStrippedBeforeIcap) {
  Rig rig;
  rig.verifier.begin();
  const Command cmd = rig.verifier.command(0);  // padded to 266 words
  ASSERT_GE(cmd.stream.size(), 266u);
  const std::uint64_t cycles_before = rig.prover.icap().stats().cycles;
  auto result = rig.prover.handle(cmd);
  ASSERT_FALSE(result.response.has_value());
  // Effective single-frame stream on the test device: 18 stream words
  // (sync 1 + idcode 2 + wcfg 2 + far 2 + hdr 1 + 8 data + desync 2),
  // so cycles = 18 + 8 + 11 = 37, not hundreds.
  EXPECT_EQ(rig.prover.icap().stats().cycles - cycles_before, 37u);
}

TEST(Prover, KeyFromPufRoundTrip) {
  const std::uint32_t r = 15;
  const puf::SramPuf puf(99, puf::required_cells(r), 0.06);
  puf::EnrollmentDb db;
  Rng rng(100);
  const puf::HelperData helper = db.enroll("dev-1", "stat-puf", puf, rng, r);
  auto key = key_from_puf(puf, helper, rng);
  ASSERT_TRUE(key.ok()) << key.message();
  EXPECT_EQ(key.value(), *db.key_of("dev-1", "stat-puf"));
}

// ------------------------------------------------------------- Full session

TEST(Session, HonestDeviceAttests) {
  Rig rig;
  const AttestationReport report = run_attestation(rig.verifier, rig.prover);
  EXPECT_TRUE(report.verdict.ok()) << report.verdict.detail;
  EXPECT_TRUE(report.verdict.mac_ok);
  EXPECT_TRUE(report.verdict.config_ok);
  EXPECT_TRUE(report.verdict.protocol_ok);
}

TEST(Session, CommandCountMatchesStructure) {
  Rig rig;
  const AttestationReport report = run_attestation(rig.verifier, rig.prover);
  // 11 app config + 1 nonce + 16 readback + 1 checksum.
  EXPECT_EQ(report.commands_sent, 29u);
  EXPECT_EQ(report.ledger.count(actions::kA1), 12u);
  EXPECT_EQ(report.ledger.count(actions::kA3), 16u);
  EXPECT_EQ(report.ledger.count(actions::kA4), 16u);
  EXPECT_EQ(report.ledger.count(actions::kA5), 1u);
  EXPECT_EQ(report.ledger.count(actions::kA6), 16u);
  EXPECT_EQ(report.ledger.count(actions::kA7), 1u);
  EXPECT_EQ(report.ledger.count(actions::kA8), 16u);
  EXPECT_EQ(report.ledger.count(actions::kA9), 1u);
  EXPECT_EQ(report.ledger.count(actions::kA10), 1u);
}

TEST(Session, RegisterChurnDoesNotBreakAttestation) {
  Rig rig;
  SessionOptions options;
  options.register_flip_probability = 1.0;  // every FF flips
  const AttestationReport report = run_attestation(rig.verifier, rig.prover, options);
  EXPECT_TRUE(report.verdict.ok()) << report.verdict.detail;
}

TEST(Session, EveryReadbackOrderWorks) {
  for (const ReadbackOrder order :
       {ReadbackOrder::kSequentialFromZero, ReadbackOrder::kSequentialFromOffset,
        ReadbackOrder::kRandomPermutation}) {
    VerifierOptions options;
    options.order = order;
    Rig rig(options);
    const AttestationReport report = run_attestation(rig.verifier, rig.prover);
    EXPECT_TRUE(report.verdict.ok())
        << static_cast<int>(order) << ": " << report.verdict.detail;
  }
}

TEST(Session, MultiFrameConfigWorks) {
  VerifierOptions options;
  options.frames_per_config = 4;
  Rig rig(options);
  const AttestationReport report = run_attestation(rig.verifier, rig.prover);
  EXPECT_TRUE(report.verdict.ok()) << report.verdict.detail;
  // ceil(11/4) = 3 app config commands + 1 nonce.
  EXPECT_EQ(report.ledger.count(actions::kA1), 4u);
}

TEST(Session, MultiFrameReadbackWorks) {
  VerifierOptions options;
  options.frames_per_readback = 4;
  Rig rig(options);
  const AttestationReport report = run_attestation(rig.verifier, rig.prover);
  EXPECT_TRUE(report.verdict.ok()) << report.verdict.detail;
  EXPECT_EQ(report.ledger.count(actions::kA3), 4u);
}

TEST(Session, NonceChangesAcrossSessions) {
  Rig rig;
  rig.verifier.begin();
  const std::uint64_t nonce1 = rig.verifier.nonce();
  rig.verifier.begin();
  const std::uint64_t nonce2 = rig.verifier.nonce();
  EXPECT_NE(nonce1, nonce2);
}

TEST(Session, MacDiffersAcrossSessions) {
  // Fresh nonce + fresh readback order => fresh MAC every run.
  Rig rig;
  const AttestationReport r1 = run_attestation(rig.verifier, rig.prover);
  const AttestationReport r2 = run_attestation(rig.verifier, rig.prover);
  EXPECT_TRUE(r1.verdict.ok());
  EXPECT_TRUE(r2.verdict.ok());
  // The ledgers agree structurally but the sessions are distinct; compare
  // via the verifier's nonce history instead of MACs (not exposed): the
  // second run re-attested successfully, which requires the new nonce.
  EXPECT_EQ(r1.commands_sent, r2.commands_sent);
}

TEST(Session, TamperedDynamicFrameIsDetected) {
  Rig rig;
  SessionHooks hooks;
  hooks.after_config = [](SachaProver& prover) {
    // Remote adversary flips one configuration bit in the application area.
    bs::Frame frame = prover.memory().config_frame(7);
    frame.flip_bit(40);
    prover.memory().write_frame(7, frame);
  };
  const AttestationReport report = run_attestation(rig.verifier, rig.prover, {}, hooks);
  EXPECT_FALSE(report.verdict.ok());
  EXPECT_TRUE(report.verdict.mac_ok) << "MAC itself is honest over tampered data";
  EXPECT_FALSE(report.verdict.config_ok);
}

TEST(Session, TamperedStaticFrameIsDetected) {
  Rig rig;
  SessionHooks hooks;
  hooks.after_config = [](SachaProver& prover) {
    bs::Frame frame = prover.memory().config_frame(1);  // StatPart frame
    frame.flip_bit(3);
    prover.memory().write_frame(1, frame);
  };
  const AttestationReport report = run_attestation(rig.verifier, rig.prover, {}, hooks);
  EXPECT_FALSE(report.verdict.ok());
  EXPECT_FALSE(report.verdict.config_ok);
}

TEST(Session, ImpersonatorWithoutKeyFailsMac) {
  Rig rig;
  rig.prover.set_key(test_key(0x77));  // device lost/never had the real key
  const AttestationReport report = run_attestation(rig.verifier, rig.prover);
  EXPECT_FALSE(report.verdict.ok());
  EXPECT_FALSE(report.verdict.mac_ok);
}

TEST(Session, DroppedReadbackResponseIsDetected) {
  Rig rig;
  int dropped = 0;
  SessionHooks hooks;
  hooks.on_response = [&dropped](Bytes& reply) {
    auto decoded = Response::decode(reply);
    if (decoded.ok() && decoded.value().type == ResponseType::kFrameData &&
        dropped == 0) {
      ++dropped;
      return false;
    }
    return true;
  };
  const AttestationReport report = run_attestation(rig.verifier, rig.prover, {}, hooks);
  EXPECT_EQ(dropped, 1);
  EXPECT_FALSE(report.verdict.ok());
  EXPECT_FALSE(report.verdict.protocol_ok);
}

TEST(Session, LossyChannelFailsWithoutRetransmission) {
  Rig rig;
  SessionOptions options;
  options.channel.loss_probability = 0.2;
  options.seed = 5;
  const AttestationReport report = run_attestation(rig.verifier, rig.prover, options);
  EXPECT_FALSE(report.verdict.ok());
}

TEST(Session, LossyChannelSucceedsWithRetransmission) {
  Rig rig;
  SessionOptions options;
  options.channel.loss_probability = 0.2;
  options.seed = 5;
  options.reliable = true;
  options.max_retries = 20;
  const AttestationReport report = run_attestation(rig.verifier, rig.prover, options);
  EXPECT_TRUE(report.verdict.ok()) << report.verdict.detail;
  EXPECT_GT(report.retransmissions, 0u);
}

TEST(Session, LatencyDominatesWithLabChannel) {
  Rig rig;
  SessionOptions lab;
  lab.channel = net::ChannelParams::lab();
  const AttestationReport ideal_report = run_attestation(rig.verifier, rig.prover);
  const AttestationReport lab_report = run_attestation(rig.verifier, rig.prover, lab);
  EXPECT_TRUE(lab_report.verdict.ok()) << lab_report.verdict.detail;
  EXPECT_EQ(ideal_report.theoretical_time, lab_report.theoretical_time);
  EXPECT_GT(lab_report.total_time, 10 * lab_report.theoretical_time);
}

TEST(Session, SecureCodeUpdateAttestsNewApplication) {
  // Drimer-style secure update via SACHa: ship app-v2, attest, done. An
  // outdated device (still running app-v1's bitstream) would fail, but the
  // protocol *itself* installs the update, so the run must pass and the
  // device must now hold app-v2's frames.
  Rig rig;
  rig.verifier.set_app_spec(bs::DesignSpec{"app-v2", 9});
  const AttestationReport report = run_attestation(rig.verifier, rig.prover);
  EXPECT_TRUE(report.verdict.ok()) << report.verdict.detail;
  const bs::BitGen gen(fabric::DeviceModel::small_test_device());
  const auto v2 = gen.generate(fabric::FrameRange{4, 11}, {"app-v2", 9});
  EXPECT_EQ(rig.prover.memory().config_frame(4), v2.frames[0]);
}

TEST(Session, PufKeyedProverAttests) {
  const std::uint32_t r = 15;
  const puf::SramPuf puf(1234, puf::required_cells(r), 0.06);
  puf::EnrollmentDb db;
  Rng rng(77);
  const puf::HelperData helper = db.enroll("dev-1", "stat-puf", puf, rng, r);

  SachaVerifier verifier(small_plan(), bs::DesignSpec{"static-v1", 1},
                         bs::DesignSpec{"app-v1", 1},
                         *db.key_of("dev-1", "stat-puf"), 1);
  auto device_key = key_from_puf(puf, helper, rng);
  ASSERT_TRUE(device_key.ok());
  SachaProver prover(fabric::DeviceModel::small_test_device(), "dev-1",
                     device_key.value(),
                     ProverOptions{.key_source = KeySource::kStaticPuf});
  prover.boot(verifier.static_image());
  const AttestationReport report = run_attestation(verifier, prover);
  EXPECT_TRUE(report.verdict.ok()) << report.verdict.detail;
}

}  // namespace
}  // namespace sacha::core
