// Shard layer: consistent-hash ring properties (determinism, balance,
// bounded movement), coordinator routing (v4 redirects, v1-v3 proxying),
// shard-death repair driven by FaultPlan vocabulary, the fleet Merkle
// rollup, and the aggregated /metrics + /statusz endpoints.
#include <gtest/gtest.h>

#include <deque>
#include <map>
#include <set>
#include <string>
#include <vector>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include "core/swarm.hpp"
#include "crypto/merkle.hpp"
#include "fault/plan.hpp"
#include "net/attest_client.hpp"
#include "net/provision.hpp"
#include "net/wire.hpp"
#include "obs/export.hpp"
#include "obs/metrics.hpp"
#include "shard/coordinator.hpp"
#include "shard/hash_ring.hpp"

using namespace sacha;

namespace {

// ---- hash ring ------------------------------------------------------------

TEST(HashRing, OwnerIsDeterministicAndInsertionOrderIndependent) {
  shard::HashRing forward;
  shard::HashRing reverse;
  const std::vector<std::string> nodes = {"shard-0", "shard-1", "shard-2",
                                          "shard-3"};
  for (const auto& n : nodes) forward.add_node(n);
  for (auto it = nodes.rbegin(); it != nodes.rend(); ++it) {
    reverse.add_node(*it);
  }
  for (std::size_t i = 0; i < 512; ++i) {
    const std::string key = net::member_id(i);
    EXPECT_EQ(forward.owner(key), reverse.owner(key)) << key;
    EXPECT_EQ(forward.owner(key), forward.owner(key)) << key;
  }
}

TEST(HashRing, VirtualNodesSpreadKeysOverEveryNode) {
  shard::HashRing ring(/*vnodes=*/64);
  constexpr std::size_t kNodes = 4;
  for (std::size_t i = 0; i < kNodes; ++i) {
    ring.add_node("shard-" + std::to_string(i));
  }
  std::map<std::string, std::size_t> owned;
  constexpr std::size_t kKeys = 2000;
  for (std::size_t i = 0; i < kKeys; ++i) {
    ++owned[ring.owner(net::member_id(i))];
  }
  ASSERT_EQ(owned.size(), kNodes) << "every node must own some keys";
  for (const auto& [node, count] : owned) {
    // 64 vnodes keep the spread well inside [5%, 60%] of a fair share 25%.
    EXPECT_GT(count, kKeys / 20) << node;
    EXPECT_LT(count, (kKeys * 3) / 5) << node;
  }
}

TEST(HashRing, NodeLossMovesOnlyTheLostNodesKeys) {
  constexpr std::size_t kNodes = 4;
  constexpr std::size_t kKeys = 2000;
  shard::HashRing ring;
  for (std::size_t i = 0; i < kNodes; ++i) {
    ring.add_node("shard-" + std::to_string(i));
  }
  std::vector<std::string> before(kKeys);
  for (std::size_t i = 0; i < kKeys; ++i) {
    before[i] = ring.owner(net::member_id(i));
  }
  const std::string removed = "shard-2";
  ring.remove_node(removed);
  EXPECT_FALSE(ring.contains(removed));
  std::size_t moved = 0;
  for (std::size_t i = 0; i < kKeys; ++i) {
    const std::string& after = ring.owner(net::member_id(i));
    if (before[i] == removed) {
      EXPECT_NE(after, removed);
      ++moved;
    } else {
      // The consistent-hash contract: keys on surviving nodes never move.
      EXPECT_EQ(after, before[i]) << net::member_id(i);
    }
  }
  // Only the dead node's ~1/K of the keyspace relocates.
  EXPECT_GT(moved, 0u);
  EXPECT_LT(moved, kKeys / 2);
}

TEST(HashRing, EmptyRingHasNoOwner) {
  shard::HashRing ring;
  EXPECT_TRUE(ring.empty());
  EXPECT_EQ(ring.owner("anything"), "");
  ring.add_node("only");
  EXPECT_EQ(ring.owner("anything"), "only");
  ring.remove_node("only");
  EXPECT_TRUE(ring.empty());
}

// ---- coordinator ----------------------------------------------------------

/// The in-process oracle the routed fleet must match verdict-for-verdict
/// (same construction as the net-service bit-identity tests).
core::SwarmReport oracle_run(const net::FleetSpec& spec, std::size_t members,
                             const std::set<std::size_t>& tampered) {
  std::deque<attacks::AttackEnv> envs;
  std::deque<core::SachaVerifier> verifiers;
  std::deque<core::SachaProver> provers;
  std::vector<core::SwarmMember> swarm;
  for (std::size_t i = 0; i < members; ++i) {
    envs.push_back(
        net::member_env(net::member_scale(spec, i), spec.base_seed + i));
    verifiers.push_back(envs.back().make_verifier());
    provers.push_back(envs.back().make_prover());
  }
  for (std::size_t i = 0; i < members; ++i) {
    core::SwarmMember member{net::member_id(i), &verifiers[i], &provers[i],
                             {}};
    if (tampered.count(i) > 0) {
      member.hooks.after_config = [](core::SachaProver& p) {
        bitstream::Frame f = p.memory().config_frame(5);
        f.flip_bit(7);
        p.memory().write_frame(5, f);
      };
    }
    swarm.push_back(std::move(member));
  }
  core::SwarmOptions options;
  options.session = envs.front().session_options;
  options.session.seed = spec.session_seed;
  options.schedule = core::SwarmSchedule::kMultiplexed;
  options.retry_budget = 0;
  return core::attest_swarm(swarm, options);
}

std::string http_get(std::uint16_t port, const std::string& path) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return {};
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr) != 1 ||
      ::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    ::close(fd);
    return {};
  }
  const std::string request = "GET " + path + " HTTP/1.1\r\nHost: x\r\n\r\n";
  (void)!::send(fd, request.data(), request.size(), 0);
  std::string reply;
  char buf[4096];
  for (;;) {
    const ssize_t n = ::recv(fd, buf, sizeof(buf), 0);
    if (n <= 0) break;
    reply.append(buf, static_cast<std::size_t>(n));
  }
  ::close(fd);
  return reply;
}

net::LoadOptions coord_load(const shard::ShardCoordinator& coordinator,
                            std::size_t members) {
  net::LoadOptions load;
  load.host = "127.0.0.1";
  load.port = coordinator.port();
  load.members = members;
  load.timeout_ms = 60000;
  return load;
}

TEST(ShardCoordinator, RedirectRoutingIsBitIdenticalToOracle) {
  net::FleetSpec spec;
  spec.mixed = true;
  constexpr std::size_t kMembers = 8;
  const std::set<std::size_t> tampered = {1, 3};
  const core::SwarmReport oracle = oracle_run(spec, kMembers, tampered);

  shard::CoordinatorOptions options;
  options.shards = 2;
  shard::ShardCoordinator coordinator(options);
  ASSERT_TRUE(coordinator.start().ok());
  ASSERT_NE(coordinator.port(), 0);
  ASSERT_EQ(coordinator.shard_count(), 2u);
  ASSERT_EQ(coordinator.alive_shards(), 2u);

  net::LoadOptions load = coord_load(coordinator, kMembers);
  load.fleet = spec;
  load.tampered = tampered;
  const net::LoadResult result = net::run_load(load);

  EXPECT_TRUE(result.all_completed());
  EXPECT_EQ(result.redirects, kMembers)
      << "every v4 member must be routed via a redirect HELLO_ACK";
  EXPECT_EQ(result.attested, kMembers - tampered.size());
  for (std::size_t i = 0; i < kMembers; ++i) {
    const core::SwarmMemberResult& want = oracle.members[i];
    const net::MemberOutcome& got = result.members[i];
    EXPECT_TRUE(got.redirected) << i;
    EXPECT_EQ(got.report.protocol_ok, want.verdict.protocol_ok) << i;
    EXPECT_EQ(got.report.mac_ok, want.verdict.mac_ok) << i;
    EXPECT_EQ(got.report.config_ok, want.verdict.config_ok) << i;
    EXPECT_EQ(got.report.failure, want.failure) << i;
    ASSERT_TRUE(got.client_mac.has_value()) << i;
    ASSERT_TRUE(want.mac.has_value()) << i;
    EXPECT_EQ(*got.client_mac, *want.mac) << i;
  }
  const shard::CoordinatorStats stats = coordinator.stats();
  EXPECT_GE(stats.accepted, kMembers);
  EXPECT_EQ(stats.redirects, kMembers);
  EXPECT_EQ(stats.proxied, 0u);
  EXPECT_EQ(stats.shards_lost, 0u);

  // The router and the session layer agree on ownership: each member's
  // owner_index names a live shard.
  for (std::size_t i = 0; i < kMembers; ++i) {
    const std::size_t owner = coordinator.owner_index(net::member_id(i));
    ASSERT_LT(owner, coordinator.shard_count());
    EXPECT_TRUE(coordinator.shard(owner).alive);
  }
  coordinator.stop();
}

TEST(ShardCoordinator, LegacyPeersAreProxiedNotRedirected) {
  shard::CoordinatorOptions options;
  options.shards = 2;
  shard::ShardCoordinator coordinator(options);
  ASSERT_TRUE(coordinator.start().ok());

  // Hand-rolled v3 HELLO: pre-shard peers don't understand redirects, so
  // the coordinator must splice their bytes through to the owning shard.
  net::HelloMsg hello;
  hello.proto = 3;
  hello.device_id = net::member_id(0);
  hello.base_seed = net::FleetSpec{}.base_seed;
  hello.session_seed = net::FleetSpec{}.session_seed;
  net::Frame frame;
  frame.kind = net::FrameKind::kHello;
  frame.payload = hello.encode();
  frame.version = 3;
  const Bytes wire = net::encode_frame(frame);

  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  ASSERT_GE(fd, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(coordinator.port());
  ASSERT_EQ(inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr), 1);
  ASSERT_EQ(::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)),
            0);
  ASSERT_EQ(::send(fd, wire.data(), wire.size(), 0),
            static_cast<ssize_t>(wire.size()));

  // The shard's reply comes back through the proxy: a HELLO_ACK that
  // accepts the session here (no redirect tail), then COMMAND frames.
  net::FrameDecoder decoder;
  bool got_ack = false;
  char buf[4096];
  while (!got_ack) {
    const ssize_t n = ::recv(fd, buf, sizeof(buf), 0);
    ASSERT_GT(n, 0) << "proxied connection closed before HELLO_ACK";
    decoder.feed(ByteSpan(reinterpret_cast<const std::uint8_t*>(buf),
                          static_cast<std::size_t>(n)));
    for (;;) {
      auto next = decoder.next();
      ASSERT_TRUE(next.ok()) << next.message();
      if (!next.value().has_value()) break;
      const net::Frame& f = *next.value();
      ASSERT_EQ(f.kind, net::FrameKind::kHelloAck);
      auto ack = net::HelloAckMsg::decode(f.payload);
      ASSERT_TRUE(ack.ok());
      EXPECT_FALSE(ack.value().is_redirect());
      EXPECT_GT(ack.value().command_count, 0u);
      got_ack = true;
      break;
    }
  }
  ::close(fd);

  const shard::CoordinatorStats stats = coordinator.stats();
  EXPECT_EQ(stats.proxied, 1u);
  EXPECT_EQ(stats.redirects, 0u);
  coordinator.stop();
}

TEST(ShardCoordinator, ShardDeathRepairsRingAndKeepsServing) {
  shard::CoordinatorOptions options;
  options.shards = 3;
  options.health_interval_ms = 50;
  shard::ShardCoordinator coordinator(options);
  ASSERT_TRUE(coordinator.start().ok());
  ASSERT_EQ(coordinator.alive_shards(), 3u);

  constexpr std::size_t kMembers = 8;
  const net::LoadResult warm = net::run_load(coord_load(coordinator, kMembers));
  ASSERT_TRUE(warm.all_completed());

  // Ownership before the fault, to check bounded movement after repair.
  std::vector<std::size_t> owner_before(kMembers);
  for (std::size_t i = 0; i < kMembers; ++i) {
    owner_before[i] = coordinator.owner_index(net::member_id(i));
  }

  // The kill is spelled in FaultPlan vocabulary — the same "crash=<k>"
  // clause the session-level fault tests use, aimed at a shard index.
  const auto plan = fault::FaultPlan::parse("crash=1");
  ASSERT_TRUE(plan.ok());
  ASSERT_TRUE(plan.value().crash.has_value());
  const std::size_t victim = plan.value().crash->at_command;
  ASSERT_TRUE(coordinator.kill_shard(victim));

  // One synchronous control pass reaps the corpse and repairs the ring.
  for (int tries = 0; coordinator.alive_shards() == 3 && tries < 100;
       ++tries) {
    coordinator.refresh();
  }
  EXPECT_EQ(coordinator.alive_shards(), 2u);
  EXPECT_FALSE(coordinator.shard(victim).alive);
  EXPECT_EQ(coordinator.stats().shards_lost, 1u);

  // Bounded movement: members owned by survivors keep their shard; the
  // victim's members all land on live shards.
  for (std::size_t i = 0; i < kMembers; ++i) {
    const std::size_t owner = coordinator.owner_index(net::member_id(i));
    ASSERT_LT(owner, coordinator.shard_count());
    EXPECT_NE(owner, victim) << net::member_id(i);
    EXPECT_TRUE(coordinator.shard(owner).alive);
    if (owner_before[i] != victim) {
      EXPECT_EQ(owner, owner_before[i])
          << "survivor-owned key must not move when another shard dies";
    }
  }

  // The fleet keeps attesting over the repaired ring.
  const net::LoadResult after = net::run_load(coord_load(coordinator, kMembers));
  EXPECT_TRUE(after.all_completed());
  EXPECT_EQ(after.attested, kMembers);

  // The dead shard's last scraped audit head stays covered by the rollup.
  coordinator.refresh();
  const shard::FleetRollup rollup = coordinator.rollup();
  EXPECT_EQ(rollup.shards_covered, 3u);
  coordinator.stop();
}

TEST(ShardCoordinator, FleetMerkleRootFoldsPerShardAuditHeads) {
  shard::CoordinatorOptions options;
  options.shards = 2;
  shard::ShardCoordinator coordinator(options);
  ASSERT_TRUE(coordinator.start().ok());

  constexpr std::size_t kMembers = 16;
  const net::LoadResult result = net::run_load(coord_load(coordinator, kMembers));
  ASSERT_TRUE(result.all_completed());

  coordinator.refresh();
  const shard::FleetRollup rollup = coordinator.rollup();
  ASSERT_EQ(rollup.leaves.size(), 2u);
  EXPECT_EQ(rollup.shards_covered, 2u);
  EXPECT_EQ(rollup.audit_entries, kMembers)
      << "per-shard audit chains must jointly cover every session";
  EXPECT_NE(rollup.root, crypto::Sha256Digest{});

  // The root is exactly merkle_root over the per-shard heads in shard
  // order — independently recomputable by an external auditor.
  std::vector<crypto::Sha256Digest> leaves;
  std::uint64_t entries = 0;
  for (std::size_t i = 0; i < coordinator.shard_count(); ++i) {
    const shard::ShardInfo info = coordinator.shard(i);
    EXPECT_TRUE(info.scraped);
    leaves.push_back(info.audit_head);
    entries += info.audit_entries;
  }
  EXPECT_EQ(entries, kMembers);
  EXPECT_EQ(crypto::merkle_root(std::span<const crypto::Sha256Digest>(leaves)),
            rollup.root);
  // With sessions on both shards, both heads are live chains.
  for (const auto& leaf : leaves) {
    EXPECT_NE(leaf, crypto::Sha256Digest{});
  }
  coordinator.stop();
}

TEST(ShardCoordinator, AggregatedEndpointsMergeShardScrapes) {
  obs::set_enabled(true);  // inherited by the forked shards
  obs::MetricsRegistry::global().reset_values();

  shard::CoordinatorOptions options;
  options.shards = 2;
  shard::ShardCoordinator coordinator(options);
  ASSERT_TRUE(coordinator.start().ok());

  constexpr std::size_t kMembers = 8;
  const net::LoadResult result = net::run_load(coord_load(coordinator, kMembers));
  ASSERT_TRUE(result.all_completed());
  coordinator.refresh();

  // /metrics: coordinator routing counters plus the union of both shard
  // scrapes (counters summed, histogram buckets merged element-wise).
  const std::string metrics = http_get(coordinator.port(), "/metrics");
  ASSERT_NE(metrics.find("200 OK"), std::string::npos);
  const std::size_t body_at = metrics.find("\r\n\r\n");
  ASSERT_NE(body_at, std::string::npos);
  const obs::MetricsSnapshot merged =
      obs::parse_prometheus_text(metrics.substr(body_at + 4));
  EXPECT_GE(merged.counter_value("sacha_coord_accepted"), kMembers);
  EXPECT_EQ(merged.counter_value("sacha_coord_redirects"), kMembers);
  EXPECT_GE(merged.counter_value("sacha_attestd_hello_accepted"), kMembers)
      << "shard-side counters must be summed into the fleet export";
  const obs::HistogramSample* sessions = nullptr;
  for (const auto& h : merged.histograms) {
    if (h.name == "sacha_attestd_session_ns") sessions = &h;
  }
  ASSERT_NE(sessions, nullptr);
  EXPECT_GE(sessions->count, kMembers)
      << "per-shard latency histograms must merge, not average";

  // /statusz: shard table and fleet rollup.
  const std::string statusz = http_get(coordinator.port(), "/statusz");
  EXPECT_NE(statusz.find("\"role\":\"coordinator\""), std::string::npos);
  EXPECT_NE(statusz.find("\"shards\":["), std::string::npos);
  EXPECT_NE(statusz.find("\"merkle_root\":"), std::string::npos);

  // /healthz: alive while any shard lives.
  EXPECT_NE(http_get(coordinator.port(), "/healthz").find("200 OK"),
            std::string::npos);

  coordinator.stop();
  obs::MetricsRegistry::global().reset_values();
  obs::set_enabled(false);
}

}  // namespace
