// Tests for the audit log (hash-chained session history) and the
// pin-connectivity view behind the external-tap threat case.
#include <gtest/gtest.h>

#include "attacks/env.hpp"
#include "attacks/library.hpp"
#include "bitstream/pins.hpp"
#include "core/audit.hpp"

namespace sacha::core {
namespace {

AttestationReport run_once(std::uint64_t seed, bool tamper = false) {
  attacks::AttackEnv env = attacks::AttackEnv::small(seed);
  auto verifier = env.make_verifier();
  auto prover = env.make_prover();
  SessionHooks hooks;
  if (tamper) {
    hooks.after_config = [](SachaProver& p) {
      bitstream::Frame f = p.memory().config_frame(6);
      f.flip_bit(3);
      p.memory().write_frame(6, f);
    };
  }
  return run_attestation(verifier, prover, env.session_options, hooks);
}

TEST(AuditLog, RecordsOutcomesAndChains) {
  AuditLog log;
  log.append("dev-a", 111, run_once(1));
  log.append("dev-b", 222, run_once(2, /*tamper=*/true));
  log.append("dev-a", 333, run_once(3));
  EXPECT_EQ(log.size(), 3u);
  EXPECT_EQ(log.failures(), 1u);
  EXPECT_TRUE(log.verify_chain());
  EXPECT_TRUE(log.entries()[0].attested);
  EXPECT_FALSE(log.entries()[1].attested);
}

TEST(AuditLog, EmptyLogVerifies) {
  AuditLog log;
  EXPECT_TRUE(log.verify_chain());
  EXPECT_EQ(log.head(), crypto::Sha256Digest{});
}

TEST(AuditLog, ModifiedEntryBreaksChain) {
  AuditLog log;
  log.append("dev-a", 1, run_once(4));
  log.append("dev-a", 2, run_once(5));
  AuditLog tampered = log;
  const_cast<AuditEntry&>(tampered.entries()[0]).attested = false;
  EXPECT_FALSE(tampered.verify_chain());
}

TEST(AuditLog, ReorderedEntriesBreakChain) {
  AuditLog log;
  log.append("dev-a", 1, run_once(6));
  log.append("dev-b", 2, run_once(7));
  AuditLog tampered = log;
  auto& entries = const_cast<std::vector<AuditEntry>&>(tampered.entries());
  std::swap(entries[0], entries[1]);
  EXPECT_FALSE(tampered.verify_chain());
}

TEST(AuditLog, HeadChangesWithEveryAppend) {
  AuditLog log;
  const auto h0 = log.head();
  log.append("dev-a", 1, run_once(8));
  const auto h1 = log.head();
  log.append("dev-a", 2, run_once(9));
  EXPECT_NE(h0, h1);
  EXPECT_NE(h1, log.head());
}

TEST(AuditLog, CanonicalBytesDisambiguateFields) {
  // device_id/detail length prefixes prevent ambiguity attacks on the
  // canonical encoding ("ab" + "c" vs "a" + "bc").
  AuditEntry a, b;
  a.device_id = "ab";
  a.detail = "c";
  b.device_id = "a";
  b.detail = "bc";
  EXPECT_NE(a.canonical_bytes(), b.canonical_bytes());
}

}  // namespace
}  // namespace sacha::core

namespace sacha::bitstream {
namespace {

TEST(Pins, LocationsAreDeterministicAndValid) {
  const auto device = fabric::DeviceModel::small_test_device();
  const std::uint32_t logic_frames =
      device.geometry().block(fabric::BlockType::kLogic).frames();
  for (std::uint32_t pin = 0; pin < device.totals().iob; ++pin) {
    const PinBit a = pin_bit_location(device, pin);
    const PinBit b = pin_bit_location(device, pin);
    EXPECT_EQ(a.frame, b.frame);
    EXPECT_EQ(a.bit, b.bit);
    EXPECT_LT(a.frame, logic_frames);
    EXPECT_LT(a.bit, device.geometry().words_per_frame() * 32);
    // Pin enables are configuration bits, never flip-flop state.
    EXPECT_TRUE(architectural_mask(device, a.frame).get_bit(a.bit))
        << "pin " << pin;
  }
}

TEST(Pins, ExtractAndDiff) {
  const auto device = fabric::DeviceModel::small_test_device();
  std::vector<Frame> frames(device.total_frames(),
                            Frame(device.geometry().words_per_frame()));
  const auto view = [&frames](std::uint32_t f) -> const std::vector<std::uint32_t>& {
    return frames[f].words();
  };
  const BitVec all_off = extract_pin_map(device, view);
  EXPECT_EQ(all_off.popcount(), 0u);

  // Enable pin 3.
  const PinBit loc = pin_bit_location(device, 3);
  frames[loc.frame].set_bit(loc.bit, true);
  const BitVec one_on = extract_pin_map(device, view);
  EXPECT_TRUE(one_on.get(3));
  EXPECT_EQ(one_on.popcount(), 1u);

  const PinDiff diff = diff_pin_maps(all_off, one_on);
  EXPECT_EQ(diff.newly_enabled, std::vector<std::uint32_t>{3});
  EXPECT_TRUE(diff.newly_disabled.empty());
  EXPECT_NE(diff.to_string().find("pin(s): 3"), std::string::npos);

  const PinDiff reverse = diff_pin_maps(one_on, all_off);
  EXPECT_EQ(reverse.newly_disabled, std::vector<std::uint32_t>{3});
}

TEST(Pins, NoDiffIsEmpty) {
  BitVec a(8), b(8);
  a.set(2, true);
  b.set(2, true);
  const PinDiff diff = diff_pin_maps(a, b);
  EXPECT_TRUE(diff.empty());
  EXPECT_EQ(diff.to_string(), "no pin changes");
}

TEST(Pins, ExternalTapAttackNamesThePin) {
  const attacks::ExternalTapAttack attack;
  const auto outcome = attack.run(attacks::AttackEnv::small(70));
  EXPECT_EQ(outcome.result, attacks::AttackResult::kDetected)
      << outcome.evidence;
  EXPECT_NE(outcome.evidence.find("unexpected connections"), std::string::npos)
      << outcome.evidence;
}

}  // namespace
}  // namespace sacha::bitstream
