// Streaming verifier + shared GoldenModel: equivalence against the retained
// (seed) verifier across the attack library, golden-table regressions, model
// sharing semantics, and the zero-retention memory contract.
#include <gtest/gtest.h>

#include <deque>

#include "attacks/library.hpp"
#include "bitstream/golden_model.hpp"
#include "core/swarm.hpp"

namespace sacha {
namespace {

namespace bs = sacha::bitstream;

attacks::AttackEnv env_with_mode(core::VerifyMode mode,
                                 std::uint64_t seed = 77) {
  attacks::AttackEnv env = attacks::AttackEnv::small(seed);
  env.verifier_options.mode = mode;
  return env;
}

// ---- GoldenModel table regressions --------------------------------------

TEST(GoldenModel, MaskTableMatchesPerCallArchitecturalMask) {
  const attacks::AttackEnv env = attacks::AttackEnv::small();
  const auto model = bs::GoldenModel::shared(env.plan, env.static_spec,
                                             env.app_spec);
  const fabric::DeviceModel& device = env.plan.device();
  for (std::uint32_t f = 0; f < device.total_frames(); ++f) {
    const bs::FrameMask per_call = bs::architectural_mask(device, f);
    const auto table = model->mask_words(f);
    ASSERT_EQ(table.size(), per_call.words().size()) << "frame " << f;
    for (std::uint32_t w = 0; w < per_call.size(); ++w) {
      EXPECT_EQ(table[w], per_call.word(w)) << "frame " << f << " word " << w;
    }
  }
}

TEST(GoldenModel, MaskedGoldenTableMatchesApplyMask) {
  const attacks::AttackEnv env = attacks::AttackEnv::small();
  const auto model = bs::GoldenModel::shared(env.plan, env.static_spec,
                                             env.app_spec);
  const fabric::DeviceModel& device = env.plan.device();
  for (std::uint32_t f = 0; f < device.total_frames(); ++f) {
    if (f == model->nonce_frame()) {
      // Per-session content: the shared table holds zeros.
      for (const std::uint32_t w : model->masked_golden_words(f)) {
        EXPECT_EQ(w, 0u);
      }
      continue;
    }
    const bs::Frame expected = bs::apply_mask(
        model->golden_frame(f), bs::architectural_mask(device, f));
    const auto table = model->masked_golden_words(f);
    for (std::uint32_t w = 0; w < expected.size(); ++w) {
      EXPECT_EQ(table[w], expected.word(w)) << "frame " << f << " word " << w;
    }
  }
}

TEST(GoldenModel, RegionStructureMatchesVerifier) {
  const attacks::AttackEnv env = attacks::AttackEnv::small();
  const core::SachaVerifier verifier = env.make_verifier();
  const auto& model = verifier.golden_model();
  EXPECT_EQ(model->nonce_frame(), verifier.nonce_frame_index());
  EXPECT_EQ(model->static_image(), verifier.static_image());
  EXPECT_GT(model->app_frame_total(), 0u);
  EXPECT_GT(model->footprint_bytes(), 0u);
}

// ---- Sharing semantics ---------------------------------------------------

TEST(GoldenModel, IdenticallyProvisionedVerifiersShareOneModel) {
  const attacks::AttackEnv env_a = attacks::AttackEnv::small(100);
  const attacks::AttackEnv env_b = attacks::AttackEnv::small(200);  // same plan/specs
  const core::SachaVerifier a = env_a.make_verifier();
  const core::SachaVerifier b = env_b.make_verifier();
  EXPECT_EQ(a.golden_model().get(), b.golden_model().get())
      << "fleet members with one device type must intern one golden model";
}

TEST(GoldenModel, DifferentAppSpecGetsDifferentModel) {
  attacks::AttackEnv env = attacks::AttackEnv::small();
  core::SachaVerifier a = env.make_verifier();
  env.app_spec = bs::DesignSpec{"another-app", 3};
  const core::SachaVerifier b = env.make_verifier();
  EXPECT_NE(a.golden_model().get(), b.golden_model().get());

  // Secure code update re-interns: a now agrees with b.
  a.set_app_spec(bs::DesignSpec{"another-app", 3});
  EXPECT_EQ(a.golden_model().get(), b.golden_model().get());
}

TEST(GoldenModel, CacheEntriesDieWithTheirLastVerifier) {
  const std::size_t before = bs::GoldenModel::live_cache_entries();
  {
    attacks::AttackEnv unique_env = attacks::AttackEnv::small();
    unique_env.app_spec = bs::DesignSpec{"cache-lifetime-probe", 42};
    const core::SachaVerifier v = unique_env.make_verifier();
    EXPECT_GE(bs::GoldenModel::live_cache_entries(), before + 1);
  }
  EXPECT_EQ(bs::GoldenModel::live_cache_entries(), before)
      << "weak cache must not outlive the verifiers";
}

// ---- Streaming == retained, across the attack library -------------------

/// Every scenario in the §7.2 suite must produce the identical outcome,
/// verdict flags, and detail string under both verifier modes.
TEST(StreamingVerifier, AttackLibraryVerdictsBitIdenticalToRetained) {
  for (const auto& attack : attacks::standard_suite()) {
    const attacks::AttackOutcome streamed =
        attack->run(env_with_mode(core::VerifyMode::kStreaming));
    const attacks::AttackOutcome retained =
        attack->run(env_with_mode(core::VerifyMode::kRetained));
    EXPECT_EQ(streamed.result, retained.result) << attack->name();
    EXPECT_EQ(streamed.verdict.protocol_ok, retained.verdict.protocol_ok)
        << attack->name();
    EXPECT_EQ(streamed.verdict.mac_ok, retained.verdict.mac_ok)
        << attack->name();
    EXPECT_EQ(streamed.verdict.config_ok, retained.verdict.config_ok)
        << attack->name();
    EXPECT_EQ(streamed.verdict.detail, retained.verdict.detail)
        << attack->name();
    EXPECT_EQ(streamed.evidence, retained.evidence) << attack->name();
  }
}

/// One full session per mode with the same seeds: reports (times, byte
/// counts, MACs) must agree field for field; only the retained buffer
/// differs.
void expect_reports_identical(const core::AttestationReport& streamed,
                              const core::AttestationReport& retained) {
  EXPECT_EQ(streamed.verdict.protocol_ok, retained.verdict.protocol_ok);
  EXPECT_EQ(streamed.verdict.mac_ok, retained.verdict.mac_ok);
  EXPECT_EQ(streamed.verdict.config_ok, retained.verdict.config_ok);
  EXPECT_EQ(streamed.verdict.detail, retained.verdict.detail);
  EXPECT_EQ(streamed.theoretical_time, retained.theoretical_time);
  EXPECT_EQ(streamed.total_time, retained.total_time);
  EXPECT_EQ(streamed.commands_sent, retained.commands_sent);
  EXPECT_EQ(streamed.retransmissions, retained.retransmissions);
  EXPECT_EQ(streamed.bytes_to_prover, retained.bytes_to_prover);
  EXPECT_EQ(streamed.bytes_to_verifier, retained.bytes_to_verifier);
}

core::AttestationReport run_mode(core::VerifyMode mode,
                                 const core::SessionOptions& session,
                                 const core::SessionHooks& hooks = {},
                                 std::uint64_t seed = 321) {
  attacks::AttackEnv env = env_with_mode(mode, seed);
  env.session_options = session;
  core::SachaVerifier verifier = env.make_verifier();
  core::SachaProver prover = env.make_prover();
  return core::run_attestation(verifier, prover, env.session_options, hooks);
}

TEST(StreamingVerifier, HonestSessionMatchesRetained) {
  const core::SessionOptions session;
  const auto streamed = run_mode(core::VerifyMode::kStreaming, session);
  const auto retained = run_mode(core::VerifyMode::kRetained, session);
  ASSERT_TRUE(streamed.verdict.ok()) << streamed.verdict.detail;
  expect_reports_identical(streamed, retained);
  EXPECT_EQ(streamed.verifier_retained_bytes, 0u);
  EXPECT_GT(retained.verifier_retained_bytes, 0u);
}

TEST(StreamingVerifier, LossyReliableRetransmitRunMatchesRetained) {
  core::SessionOptions session;
  session.reliable = true;
  session.channel.loss_probability = 0.08;
  const auto streamed = run_mode(core::VerifyMode::kStreaming, session);
  const auto retained = run_mode(core::VerifyMode::kRetained, session);
  ASSERT_TRUE(streamed.verdict.ok()) << streamed.verdict.detail;
  EXPECT_GT(streamed.retransmissions, 0u)
      << "lossy channel should force retransmissions";
  expect_reports_identical(streamed, retained);
}

TEST(StreamingVerifier, DroppedReadbackResponseMatchesRetained) {
  core::SessionHooks hooks;
  int reply_count = 0;
  hooks.on_response = [&reply_count](Bytes&) { return ++reply_count != 9; };
  const core::SessionOptions session;
  const auto streamed =
      run_mode(core::VerifyMode::kStreaming, session, hooks);
  reply_count = 0;
  const auto retained =
      run_mode(core::VerifyMode::kRetained, session, hooks);
  EXPECT_FALSE(streamed.verdict.ok());
  expect_reports_identical(streamed, retained);
}

TEST(StreamingVerifier, TamperWindowMatchesRetained) {
  core::SessionHooks hooks;
  hooks.after_config = [](core::SachaProver& p) {
    bitstream::Frame f = p.memory().config_frame(6);
    f.flip_bit(2);  // a configuration-visible bit flip after config phase
    p.memory().write_frame(6, f);
  };
  const core::SessionOptions session;
  const auto streamed = run_mode(core::VerifyMode::kStreaming, session, hooks);
  const auto retained = run_mode(core::VerifyMode::kRetained, session, hooks);
  expect_reports_identical(streamed, retained);
}

/// Single-event upsets on *register* (mask=0) bits must stay invisible to
/// the masked compare while *configuration* bit flips are detected — in
/// both modes, with identical details.
TEST(StreamingVerifier, SeuOnRegisterBitIgnoredOnConfigBitDetected) {
  for (const bool flip_config_bit : {false, true}) {
    core::SessionHooks hooks;
    hooks.after_config = [flip_config_bit](core::SachaProver& p) {
      const fabric::DeviceModel& device = p.memory().device();
      const bs::FrameMask mask = bs::architectural_mask(device, 5);
      // Find a bit of the wanted kind: config (mask=1) or register (mask=0).
      for (std::uint32_t b = 0; b < mask.bit_count(); ++b) {
        if (mask.get_bit(b) == flip_config_bit) {
          bitstream::Frame f = p.memory().config_frame(5);
          f.flip_bit(b);
          p.memory().write_frame(5, f);
          return;
        }
      }
      FAIL() << "no bit of the requested kind in frame 5";
    };
    const core::SessionOptions session;
    const auto streamed =
        run_mode(core::VerifyMode::kStreaming, session, hooks);
    const auto retained =
        run_mode(core::VerifyMode::kRetained, session, hooks);
    expect_reports_identical(streamed, retained);
    if (flip_config_bit) {
      EXPECT_FALSE(streamed.verdict.config_ok);
    } else {
      // A register-bit SEU changes the raw words (and thus the MAC input on
      // both sides consistently) but not the masked compare.
      EXPECT_TRUE(streamed.verdict.ok()) << streamed.verdict.detail;
    }
  }
}

TEST(StreamingVerifier, RefreshSessionMatchesRetained) {
  for (const core::VerifyMode mode :
       {core::VerifyMode::kStreaming, core::VerifyMode::kRetained}) {
    attacks::AttackEnv env = env_with_mode(mode);
    core::SachaVerifier verifier = env.make_verifier();
    core::SachaProver prover = env.make_prover();
    const auto install = core::run_attestation(verifier, prover);
    ASSERT_TRUE(install.verdict.ok()) << install.verdict.detail;
    verifier.set_refresh_only(true);
    const auto refresh = core::run_attestation(verifier, prover);
    EXPECT_TRUE(refresh.verdict.ok()) << refresh.verdict.detail;
    EXPECT_EQ(refresh.verifier_retained_bytes,
              mode == core::VerifyMode::kStreaming
                  ? 0u
                  : install.verifier_retained_bytes);
  }
}

// ---- Streaming-specific mechanics ---------------------------------------

/// The public on_response API does not require in-order delivery: the
/// streaming absorb parks out-of-order steps and drains them so the MAC
/// still sees readback order.
TEST(StreamingVerifier, OutOfOrderResponsesAbsorbCorrectly) {
  attacks::AttackEnv env = env_with_mode(core::VerifyMode::kStreaming);
  core::SachaVerifier verifier = env.make_verifier();
  core::SachaProver prover = env.make_prover();
  verifier.begin();

  const std::size_t n = verifier.command_count();
  std::vector<std::optional<core::Response>> responses(n);
  for (std::size_t i = 0; i < n; ++i) {
    responses[i] = prover.handle(verifier.command(i)).response;
  }
  // Feed readback responses in reverse order; configs first, MAC last.
  const std::size_t readback_begin = n - 1 - verifier.readback_steps().size();
  for (std::size_t i = 0; i < readback_begin; ++i) {
    ASSERT_TRUE(verifier.on_response(i, std::move(responses[i])).ok());
  }
  for (std::size_t i = n - 2; i >= readback_begin; --i) {
    ASSERT_TRUE(verifier.on_response(i, std::move(responses[i])).ok());
    if (i == readback_begin) break;
  }
  ASSERT_TRUE(verifier.on_response(n - 1, std::move(responses[n - 1])).ok());

  const auto verdict = verifier.finish();
  EXPECT_TRUE(verdict.ok()) << verdict.detail;
  EXPECT_EQ(verifier.retained_readback_bytes(), 0u)
      << "pending buffer must fully drain";
}

TEST(StreamingVerifier, DuplicateReadbackResponseIsAProtocolError) {
  attacks::AttackEnv env = env_with_mode(core::VerifyMode::kStreaming);
  core::SachaVerifier verifier = env.make_verifier();
  core::SachaProver prover = env.make_prover();
  verifier.begin();
  const std::size_t n = verifier.command_count();
  std::optional<core::Response> dup;
  for (std::size_t i = 0; i + 1 < n; ++i) {
    auto response = prover.handle(verifier.command(i)).response;
    if (i + 2 == n) dup = response;  // last readback step
    ASSERT_TRUE(verifier.on_response(i, std::move(response)).ok());
  }
  ASSERT_TRUE(dup.has_value());
  EXPECT_FALSE(verifier.on_response(n - 2, std::move(dup)).ok());
  EXPECT_FALSE(verifier.finish().ok());
}

// ---- Fleet-level memory accounting --------------------------------------

TEST(SwarmGoldenModel, HomogeneousFleetSharesOneModel) {
  constexpr std::size_t kFleet = 16;
  std::deque<attacks::AttackEnv> envs;
  std::deque<core::SachaVerifier> verifiers;
  std::deque<core::SachaProver> provers;
  std::vector<core::SwarmMember> members;
  for (std::size_t i = 0; i < kFleet; ++i) {
    envs.push_back(attacks::AttackEnv::small(7000 + i));
    verifiers.push_back(envs.back().make_verifier());
    provers.push_back(envs.back().make_prover());
  }
  for (std::size_t i = 0; i < kFleet; ++i) {
    members.push_back(core::SwarmMember{"node-" + std::to_string(i),
                                        &verifiers[i], &provers[i], {}});
  }
  const core::SwarmReport report = core::attest_swarm(members);
  EXPECT_TRUE(report.all_attested());
  EXPECT_EQ(report.distinct_golden_models, 1u)
      << "one device type must intern exactly one golden model";
  EXPECT_EQ(report.unshared_golden_model_bytes,
            kFleet * report.golden_model_bytes);
  EXPECT_EQ(report.retained_readback_bytes, 0u)
      << "streaming fleet retains no readback";
}

}  // namespace
}  // namespace sacha
