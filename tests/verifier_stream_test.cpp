// Streaming verifier + shared GoldenModel: equivalence against the retained
// (seed) verifier across the attack library, golden-table regressions, model
// sharing semantics, and the zero-retention memory contract.
#include <gtest/gtest.h>

#include <deque>
#include <filesystem>
#include <fstream>
#include <utility>

#include "attacks/library.hpp"
#include "bitstream/golden_model.hpp"
#include "core/swarm.hpp"

namespace sacha {
namespace {

namespace bs = sacha::bitstream;

attacks::AttackEnv env_with_mode(core::VerifyMode mode,
                                 std::uint64_t seed = 77) {
  attacks::AttackEnv env = attacks::AttackEnv::small(seed);
  env.verifier_options.mode = mode;
  return env;
}

// ---- GoldenModel table regressions --------------------------------------

TEST(GoldenModel, MaskTableMatchesPerCallArchitecturalMask) {
  const attacks::AttackEnv env = attacks::AttackEnv::small();
  const auto model = bs::GoldenModel::shared(env.plan, env.static_spec,
                                             env.app_spec);
  const fabric::DeviceModel& device = env.plan.device();
  for (std::uint32_t f = 0; f < device.total_frames(); ++f) {
    const bs::FrameMask per_call = bs::architectural_mask(device, f);
    const auto table = model->mask_words(f);
    ASSERT_EQ(table.size(), per_call.words().size()) << "frame " << f;
    for (std::uint32_t w = 0; w < per_call.size(); ++w) {
      EXPECT_EQ(table[w], per_call.word(w)) << "frame " << f << " word " << w;
    }
  }
}

TEST(GoldenModel, MaskedGoldenTableMatchesApplyMask) {
  const attacks::AttackEnv env = attacks::AttackEnv::small();
  const auto model = bs::GoldenModel::shared(env.plan, env.static_spec,
                                             env.app_spec);
  const fabric::DeviceModel& device = env.plan.device();
  for (std::uint32_t f = 0; f < device.total_frames(); ++f) {
    if (f == model->nonce_frame()) {
      // Per-session content: the shared table holds zeros.
      for (const std::uint32_t w : model->masked_golden_words(f)) {
        EXPECT_EQ(w, 0u);
      }
      continue;
    }
    const bs::Frame expected = bs::apply_mask(
        model->golden_frame(f), bs::architectural_mask(device, f));
    const auto table = model->masked_golden_words(f);
    for (std::uint32_t w = 0; w < expected.size(); ++w) {
      EXPECT_EQ(table[w], expected.word(w)) << "frame " << f << " word " << w;
    }
  }
}

TEST(GoldenModel, RegionStructureMatchesVerifier) {
  const attacks::AttackEnv env = attacks::AttackEnv::small();
  const core::SachaVerifier verifier = env.make_verifier();
  const auto& model = verifier.golden_model();
  EXPECT_EQ(model->nonce_frame(), verifier.nonce_frame_index());
  EXPECT_EQ(model->static_image(), verifier.static_image());
  EXPECT_GT(model->app_frame_total(), 0u);
  EXPECT_GT(model->footprint_bytes(), 0u);
}

// ---- Sharing semantics ---------------------------------------------------

TEST(GoldenModel, IdenticallyProvisionedVerifiersShareOneModel) {
  const attacks::AttackEnv env_a = attacks::AttackEnv::small(100);
  const attacks::AttackEnv env_b = attacks::AttackEnv::small(200);  // same plan/specs
  const core::SachaVerifier a = env_a.make_verifier();
  const core::SachaVerifier b = env_b.make_verifier();
  EXPECT_EQ(a.golden_model().get(), b.golden_model().get())
      << "fleet members with one device type must intern one golden model";
}

TEST(GoldenModel, DifferentAppSpecGetsDifferentModel) {
  attacks::AttackEnv env = attacks::AttackEnv::small();
  core::SachaVerifier a = env.make_verifier();
  env.app_spec = bs::DesignSpec{"another-app", 3};
  const core::SachaVerifier b = env.make_verifier();
  EXPECT_NE(a.golden_model().get(), b.golden_model().get());

  // Secure code update re-interns: a now agrees with b.
  a.set_app_spec(bs::DesignSpec{"another-app", 3});
  EXPECT_EQ(a.golden_model().get(), b.golden_model().get());
}

TEST(GoldenModel, CacheEntriesDieWithTheirLastVerifier) {
  const std::size_t before = bs::GoldenModel::live_cache_entries();
  {
    attacks::AttackEnv unique_env = attacks::AttackEnv::small();
    unique_env.app_spec = bs::DesignSpec{"cache-lifetime-probe", 42};
    const core::SachaVerifier v = unique_env.make_verifier();
    EXPECT_GE(bs::GoldenModel::live_cache_entries(), before + 1);
  }
  EXPECT_EQ(bs::GoldenModel::live_cache_entries(), before)
      << "weak cache must not outlive the verifiers";
}

// ---- On-disk model cache -------------------------------------------------

TEST(GoldenModelCache, SaveLoadRoundTripIsBitIdentical) {
  attacks::AttackEnv env = attacks::AttackEnv::small();
  env.app_spec = bs::DesignSpec{"roundtrip-probe", 7};
  const bs::GoldenModel built(env.plan, env.static_spec, env.app_spec);
  const std::string path = ::testing::TempDir() + "sacha_roundtrip.sgm";
  ASSERT_TRUE(built.save(path, env.plan));
  const auto loaded =
      bs::GoldenModel::load(path, env.plan, env.static_spec, env.app_spec);
  ASSERT_NE(loaded, nullptr);
  EXPECT_TRUE(*loaded == built)
      << "loaded model must be bit-identical to the built one";
  EXPECT_EQ(loaded->footprint_bytes(), built.footprint_bytes());
  std::filesystem::remove(path);
}

TEST(GoldenModelCache, LoadRejectsWrongIdentityAndCorruption) {
  attacks::AttackEnv env = attacks::AttackEnv::small();
  env.app_spec = bs::DesignSpec{"reject-probe", 9};
  const bs::GoldenModel built(env.plan, env.static_spec, env.app_spec);
  const std::string path = ::testing::TempDir() + "sacha_reject.sgm";
  ASSERT_TRUE(built.save(path, env.plan));
  // A file saved for one fleet configuration must never load for another.
  const bs::DesignSpec other_app{"reject-probe-other", 9};
  EXPECT_EQ(bs::GoldenModel::load(path, env.plan, env.static_spec, other_app),
            nullptr);
  // Truncation must fail cleanly, not produce a quietly-wrong model.
  const auto size = std::filesystem::file_size(path);
  std::filesystem::resize_file(path, size / 2);
  EXPECT_EQ(bs::GoldenModel::load(path, env.plan, env.static_spec,
                                  env.app_spec),
            nullptr);
  std::filesystem::remove(path);
}

// ---- Corruption matrix: load() and load_mapped() share one decoder, so
// both must reject every malformed shape identically. -----------------------

using ModelLoader = std::shared_ptr<const bs::GoldenModel> (*)(
    const std::string&, const fabric::Floorplan&, const bs::DesignSpec&,
    const bs::DesignSpec&);

class GoldenModelCorruption
    : public ::testing::TestWithParam<std::pair<const char*, ModelLoader>> {};

TEST_P(GoldenModelCorruption, TruncationAtEveryBoundaryFailsCleanly) {
  const ModelLoader load = GetParam().second;
  attacks::AttackEnv env = attacks::AttackEnv::small();
  env.app_spec = bs::DesignSpec{"corruption-matrix", 11};
  const bs::GoldenModel built(env.plan, env.static_spec, env.app_spec);
  const std::string good = ::testing::TempDir() + "sacha_matrix_good.sgm";
  ASSERT_TRUE(built.save(good, env.plan));
  std::ifstream in(good, std::ios::binary);
  const std::vector<char> bytes((std::istreambuf_iterator<char>(in)),
                                std::istreambuf_iterator<char>());
  in.close();
  ASSERT_FALSE(bytes.empty());

  // Cuts at every header field edge plus every 64-byte alignment boundary
  // — the format pads both flat tables to 64-byte offsets, so this sweep
  // lands on the exact start/end of every section.
  std::vector<std::size_t> cuts = {0, 1, 7,  8,  11, 12, 19, 20,
                                   83, 84, 88, 92, 96, 100};
  for (std::size_t at = 64; at < bytes.size(); at += 64) cuts.push_back(at);
  cuts.push_back(bytes.size() - 4);
  cuts.push_back(bytes.size() - 1);

  const std::string path = ::testing::TempDir() + "sacha_matrix_cut.sgm";
  for (const std::size_t cut : cuts) {
    if (cut >= bytes.size()) continue;
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out.write(bytes.data(), static_cast<std::streamsize>(cut));
    out.close();
    EXPECT_EQ(load(path, env.plan, env.static_spec, env.app_spec), nullptr)
        << "truncated at byte " << cut << " of " << bytes.size();
  }
  std::filesystem::remove(path);
  std::filesystem::remove(good);
}

TEST_P(GoldenModelCorruption, FlippedDigestByteAndGarbageTailReject) {
  const ModelLoader load = GetParam().second;
  attacks::AttackEnv env = attacks::AttackEnv::small();
  env.app_spec = bs::DesignSpec{"corruption-flip", 13};
  const bs::GoldenModel built(env.plan, env.static_spec, env.app_spec);
  const std::string good = ::testing::TempDir() + "sacha_flip_good.sgm";
  ASSERT_TRUE(built.save(good, env.plan));
  std::ifstream in(good, std::ios::binary);
  std::vector<char> bytes((std::istreambuf_iterator<char>(in)),
                          std::istreambuf_iterator<char>());
  in.close();

  const std::string path = ::testing::TempDir() + "sacha_flip.sgm";
  const auto write_variant = [&](const std::vector<char>& v) {
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out.write(v.data(), static_cast<std::streamsize>(v.size()));
  };

  // The identity digest is the hex string right after magic+version+length:
  // flipping any byte inside it must fail the identity check.
  {
    std::vector<char> flipped = bytes;
    flipped[20] ^= 0x01;   // first digest hex char
    flipped[83] ^= 0x01;   // last digest hex char
    write_variant(flipped);
    EXPECT_EQ(load(path, env.plan, env.static_spec, env.app_spec), nullptr);
  }
  // Garbage-tailed files must be rejected by the exact-length check even
  // though every section parsed — a format disagreement, not extra slack.
  {
    std::vector<char> tailed = bytes;
    tailed.push_back(0x00);
    write_variant(tailed);
    EXPECT_EQ(load(path, env.plan, env.static_spec, env.app_spec), nullptr);
    tailed.insert(tailed.end(), 63, 0x5a);
    write_variant(tailed);
    EXPECT_EQ(load(path, env.plan, env.static_spec, env.app_spec), nullptr);
  }
  // The pristine bytes still load — the matrix is testing the corruption,
  // not the harness.
  write_variant(bytes);
  const auto ok = load(path, env.plan, env.static_spec, env.app_spec);
  ASSERT_NE(ok, nullptr);
  EXPECT_TRUE(*ok == built);
  std::filesystem::remove(path);
  std::filesystem::remove(good);
}

INSTANTIATE_TEST_SUITE_P(
    HeapAndMapped, GoldenModelCorruption,
    ::testing::Values(
        std::make_pair("load", &bs::GoldenModel::load),
        std::make_pair("load_mapped", &bs::GoldenModel::load_mapped)),
    [](const auto& info) { return std::string(info.param.first); });

// ---- mmap-shared models ---------------------------------------------------

TEST(GoldenModelMapped, LoadMappedIsBitIdenticalAndBorrowsTables) {
  attacks::AttackEnv env = attacks::AttackEnv::small();
  env.app_spec = bs::DesignSpec{"mapped-probe", 17};
  const bs::GoldenModel built(env.plan, env.static_spec, env.app_spec);
  const std::string path = ::testing::TempDir() + "sacha_mapped.sgm";
  ASSERT_TRUE(built.save(path, env.plan));
  const auto mapped =
      bs::GoldenModel::load_mapped(path, env.plan, env.static_spec,
                                   env.app_spec);
  ASSERT_NE(mapped, nullptr);
  EXPECT_TRUE(*mapped == built);
  EXPECT_EQ(mapped->tables_mapped(), bs::GoldenModel::mapping_supported())
      << "tables must borrow from the mapping when the build can mmap";
  if (mapped->tables_mapped()) {
    // Borrowed lanes must still be 4-byte aligned for the SIMD compare.
    EXPECT_EQ(reinterpret_cast<std::uintptr_t>(mapped->mask_words(0).data()) %
                  alignof(std::uint32_t),
              0u);
    // The mapped footprint excludes the tables (they are page cache, not
    // heap) — the RSS-flat property bench_shard measures.
    EXPECT_LT(mapped->footprint_bytes(), built.footprint_bytes());
  }
  std::filesystem::remove(path);
}

TEST(GoldenModelMapped, SharedCachedPrefersMappingAndReportsKMapped) {
  attacks::AttackEnv env = attacks::AttackEnv::small();
  env.app_spec = bs::DesignSpec{"mapped-cache-probe", 19};
  const std::string dir =
      ::testing::TempDir() + "sacha_mapped_cache" + std::filesystem::path::preferred_separator;
  std::filesystem::create_directories(dir);

  bs::GoldenModel::CacheSource source;
  // Cold: builds and persists; the intern entry dies with `first`.
  {
    auto first = bs::GoldenModel::shared_cached(
        env.plan, env.static_spec, env.app_spec, dir, &source,
        /*prefer_mapped=*/true);
    ASSERT_NE(first, nullptr);
    EXPECT_EQ(source, bs::GoldenModel::CacheSource::kBuilt);
  }
  // Warm restart: the disk tier maps the saved file.
  auto remapped = bs::GoldenModel::shared_cached(
      env.plan, env.static_spec, env.app_spec, dir, &source,
      /*prefer_mapped=*/true);
  ASSERT_NE(remapped, nullptr);
  if (bs::GoldenModel::mapping_supported()) {
    EXPECT_EQ(source, bs::GoldenModel::CacheSource::kMapped);
    EXPECT_TRUE(remapped->tables_mapped());
  } else {
    EXPECT_EQ(source, bs::GoldenModel::CacheSource::kLoaded);
    EXPECT_FALSE(remapped->tables_mapped());
  }
  // A mapped model drives a verifier exactly like a built one.
  core::SachaVerifier verifier(env.plan, remapped, env.key, env.seed,
                               env.verifier_options);
  core::SachaProver prover = env.make_prover();
  const auto report = core::run_attestation(verifier, prover);
  EXPECT_TRUE(report.verdict.ok());
  std::filesystem::remove_all(dir);
}

TEST(GoldenModelCache, SharedCachedHitsInternedThenDiskThenBuild) {
  attacks::AttackEnv env = attacks::AttackEnv::small();
  env.app_spec = bs::DesignSpec{"three-tier-probe", 11};
  const std::string dir = ::testing::TempDir() + "sacha_model_cache";
  std::filesystem::remove_all(dir);

  bs::GoldenModel::CacheSource source;
  auto first = bs::GoldenModel::shared_cached(env.plan, env.static_spec,
                                              env.app_spec, dir, &source);
  ASSERT_NE(first, nullptr);
  EXPECT_EQ(source, bs::GoldenModel::CacheSource::kBuilt);
  const std::string file =
      dir + "/" +
      bs::GoldenModel::cache_digest(env.plan, env.static_spec, env.app_spec) +
      ".sgm";
  EXPECT_TRUE(std::filesystem::exists(file)) << "build must persist";

  // Alive model: the process intern cache answers.
  auto second = bs::GoldenModel::shared_cached(env.plan, env.static_spec,
                                               env.app_spec, dir, &source);
  EXPECT_EQ(source, bs::GoldenModel::CacheSource::kInterned);
  EXPECT_EQ(second.get(), first.get());

  // Simulated restart: drop every reference, the disk tier answers and the
  // loaded model is bit-identical to the built one.
  const bs::GoldenModel built_copy(env.plan, env.static_spec, env.app_spec);
  first.reset();
  second.reset();
  auto reloaded = bs::GoldenModel::shared_cached(env.plan, env.static_spec,
                                                 env.app_spec, dir, &source);
  ASSERT_NE(reloaded, nullptr);
  EXPECT_EQ(source, bs::GoldenModel::CacheSource::kLoaded);
  EXPECT_TRUE(*reloaded == built_copy);
  reloaded.reset();
  std::filesystem::remove_all(dir);
}

TEST(GoldenModelCache, WarmStartedVerifierAttests) {
  // shared_cached pre-populates the intern cache, so a verifier provisioned
  // afterwards reuses the loaded model — the warm-start path end-to-end.
  attacks::AttackEnv env = attacks::AttackEnv::small(91);
  const std::string dir = ::testing::TempDir() + "sacha_warm_start";
  std::filesystem::remove_all(dir);
  bs::GoldenModel::CacheSource source;
  // Cold start persists; the simulated restart below loads it.
  bs::GoldenModel::shared_cached(env.plan, env.static_spec, env.app_spec, dir,
                                 &source)
      .reset();
  auto warm = bs::GoldenModel::shared_cached(env.plan, env.static_spec,
                                             env.app_spec, dir, &source);
  EXPECT_EQ(source, bs::GoldenModel::CacheSource::kLoaded);
  core::SachaVerifier verifier = env.make_verifier();
  EXPECT_EQ(verifier.golden_model().get(), warm.get())
      << "verifier must intern the warm-started model";
  core::SachaProver prover = env.make_prover();
  const auto report = core::run_attestation(verifier, prover);
  EXPECT_TRUE(report.verdict.ok());
  std::filesystem::remove_all(dir);
}

// ---- Streaming == retained, across the attack library -------------------

/// Every scenario in the §7.2 suite must produce the identical outcome,
/// verdict flags, and detail string under both verifier modes.
TEST(StreamingVerifier, AttackLibraryVerdictsBitIdenticalToRetained) {
  for (const auto& attack : attacks::standard_suite()) {
    const attacks::AttackOutcome streamed =
        attack->run(env_with_mode(core::VerifyMode::kStreaming));
    const attacks::AttackOutcome retained =
        attack->run(env_with_mode(core::VerifyMode::kRetained));
    EXPECT_EQ(streamed.result, retained.result) << attack->name();
    EXPECT_EQ(streamed.verdict.protocol_ok, retained.verdict.protocol_ok)
        << attack->name();
    EXPECT_EQ(streamed.verdict.mac_ok, retained.verdict.mac_ok)
        << attack->name();
    EXPECT_EQ(streamed.verdict.config_ok, retained.verdict.config_ok)
        << attack->name();
    EXPECT_EQ(streamed.verdict.detail, retained.verdict.detail)
        << attack->name();
    EXPECT_EQ(streamed.evidence, retained.evidence) << attack->name();
  }
}

/// One full session per mode with the same seeds: reports (times, byte
/// counts, MACs) must agree field for field; only the retained buffer
/// differs.
void expect_reports_identical(const core::AttestationReport& streamed,
                              const core::AttestationReport& retained) {
  EXPECT_EQ(streamed.verdict.protocol_ok, retained.verdict.protocol_ok);
  EXPECT_EQ(streamed.verdict.mac_ok, retained.verdict.mac_ok);
  EXPECT_EQ(streamed.verdict.config_ok, retained.verdict.config_ok);
  EXPECT_EQ(streamed.verdict.detail, retained.verdict.detail);
  EXPECT_EQ(streamed.theoretical_time, retained.theoretical_time);
  EXPECT_EQ(streamed.total_time, retained.total_time);
  EXPECT_EQ(streamed.commands_sent, retained.commands_sent);
  EXPECT_EQ(streamed.retransmissions, retained.retransmissions);
  EXPECT_EQ(streamed.bytes_to_prover, retained.bytes_to_prover);
  EXPECT_EQ(streamed.bytes_to_verifier, retained.bytes_to_verifier);
}

core::AttestationReport run_mode(core::VerifyMode mode,
                                 const core::SessionOptions& session,
                                 const core::SessionHooks& hooks = {},
                                 std::uint64_t seed = 321) {
  attacks::AttackEnv env = env_with_mode(mode, seed);
  env.session_options = session;
  core::SachaVerifier verifier = env.make_verifier();
  core::SachaProver prover = env.make_prover();
  return core::run_attestation(verifier, prover, env.session_options, hooks);
}

TEST(StreamingVerifier, HonestSessionMatchesRetained) {
  const core::SessionOptions session;
  const auto streamed = run_mode(core::VerifyMode::kStreaming, session);
  const auto retained = run_mode(core::VerifyMode::kRetained, session);
  ASSERT_TRUE(streamed.verdict.ok()) << streamed.verdict.detail;
  expect_reports_identical(streamed, retained);
  EXPECT_EQ(streamed.verifier_retained_bytes, 0u);
  EXPECT_GT(retained.verifier_retained_bytes, 0u);
}

TEST(StreamingVerifier, LossyReliableRetransmitRunMatchesRetained) {
  core::SessionOptions session;
  session.reliable = true;
  session.channel.loss_probability = 0.08;
  const auto streamed = run_mode(core::VerifyMode::kStreaming, session);
  const auto retained = run_mode(core::VerifyMode::kRetained, session);
  ASSERT_TRUE(streamed.verdict.ok()) << streamed.verdict.detail;
  EXPECT_GT(streamed.retransmissions, 0u)
      << "lossy channel should force retransmissions";
  expect_reports_identical(streamed, retained);
}

TEST(StreamingVerifier, DroppedReadbackResponseMatchesRetained) {
  core::SessionHooks hooks;
  int reply_count = 0;
  hooks.on_response = [&reply_count](Bytes&) { return ++reply_count != 9; };
  const core::SessionOptions session;
  const auto streamed =
      run_mode(core::VerifyMode::kStreaming, session, hooks);
  reply_count = 0;
  const auto retained =
      run_mode(core::VerifyMode::kRetained, session, hooks);
  EXPECT_FALSE(streamed.verdict.ok());
  expect_reports_identical(streamed, retained);
}

TEST(StreamingVerifier, TamperWindowMatchesRetained) {
  core::SessionHooks hooks;
  hooks.after_config = [](core::SachaProver& p) {
    bitstream::Frame f = p.memory().config_frame(6);
    f.flip_bit(2);  // a configuration-visible bit flip after config phase
    p.memory().write_frame(6, f);
  };
  const core::SessionOptions session;
  const auto streamed = run_mode(core::VerifyMode::kStreaming, session, hooks);
  const auto retained = run_mode(core::VerifyMode::kRetained, session, hooks);
  expect_reports_identical(streamed, retained);
}

/// Single-event upsets on *register* (mask=0) bits must stay invisible to
/// the masked compare while *configuration* bit flips are detected — in
/// both modes, with identical details.
TEST(StreamingVerifier, SeuOnRegisterBitIgnoredOnConfigBitDetected) {
  for (const bool flip_config_bit : {false, true}) {
    core::SessionHooks hooks;
    hooks.after_config = [flip_config_bit](core::SachaProver& p) {
      const fabric::DeviceModel& device = p.memory().device();
      const bs::FrameMask mask = bs::architectural_mask(device, 5);
      // Find a bit of the wanted kind: config (mask=1) or register (mask=0).
      for (std::uint32_t b = 0; b < mask.bit_count(); ++b) {
        if (mask.get_bit(b) == flip_config_bit) {
          bitstream::Frame f = p.memory().config_frame(5);
          f.flip_bit(b);
          p.memory().write_frame(5, f);
          return;
        }
      }
      FAIL() << "no bit of the requested kind in frame 5";
    };
    const core::SessionOptions session;
    const auto streamed =
        run_mode(core::VerifyMode::kStreaming, session, hooks);
    const auto retained =
        run_mode(core::VerifyMode::kRetained, session, hooks);
    expect_reports_identical(streamed, retained);
    if (flip_config_bit) {
      EXPECT_FALSE(streamed.verdict.config_ok);
    } else {
      // A register-bit SEU changes the raw words (and thus the MAC input on
      // both sides consistently) but not the masked compare.
      EXPECT_TRUE(streamed.verdict.ok()) << streamed.verdict.detail;
    }
  }
}

TEST(StreamingVerifier, RefreshSessionMatchesRetained) {
  for (const core::VerifyMode mode :
       {core::VerifyMode::kStreaming, core::VerifyMode::kRetained}) {
    attacks::AttackEnv env = env_with_mode(mode);
    core::SachaVerifier verifier = env.make_verifier();
    core::SachaProver prover = env.make_prover();
    const auto install = core::run_attestation(verifier, prover);
    ASSERT_TRUE(install.verdict.ok()) << install.verdict.detail;
    verifier.set_refresh_only(true);
    const auto refresh = core::run_attestation(verifier, prover);
    EXPECT_TRUE(refresh.verdict.ok()) << refresh.verdict.detail;
    EXPECT_EQ(refresh.verifier_retained_bytes,
              mode == core::VerifyMode::kStreaming
                  ? 0u
                  : install.verifier_retained_bytes);
  }
}

// ---- Streaming-specific mechanics ---------------------------------------

/// The public on_response API does not require in-order delivery: the
/// streaming absorb parks out-of-order steps and drains them so the MAC
/// still sees readback order.
TEST(StreamingVerifier, OutOfOrderResponsesAbsorbCorrectly) {
  attacks::AttackEnv env = env_with_mode(core::VerifyMode::kStreaming);
  core::SachaVerifier verifier = env.make_verifier();
  core::SachaProver prover = env.make_prover();
  verifier.begin();

  const std::size_t n = verifier.command_count();
  std::vector<std::optional<core::Response>> responses(n);
  for (std::size_t i = 0; i < n; ++i) {
    responses[i] = prover.handle(verifier.command(i)).response;
  }
  // Feed readback responses in reverse order; configs first, MAC last.
  const std::size_t readback_begin = n - 1 - verifier.readback_steps().size();
  for (std::size_t i = 0; i < readback_begin; ++i) {
    ASSERT_TRUE(verifier.on_response(i, std::move(responses[i])).ok());
  }
  for (std::size_t i = n - 2; i >= readback_begin; --i) {
    ASSERT_TRUE(verifier.on_response(i, std::move(responses[i])).ok());
    if (i == readback_begin) break;
  }
  ASSERT_TRUE(verifier.on_response(n - 1, std::move(responses[n - 1])).ok());

  const auto verdict = verifier.finish();
  EXPECT_TRUE(verdict.ok()) << verdict.detail;
  EXPECT_EQ(verifier.retained_readback_bytes(), 0u)
      << "pending buffer must fully drain";
}

TEST(StreamingVerifier, DuplicateReadbackResponseIsAProtocolError) {
  attacks::AttackEnv env = env_with_mode(core::VerifyMode::kStreaming);
  core::SachaVerifier verifier = env.make_verifier();
  core::SachaProver prover = env.make_prover();
  verifier.begin();
  const std::size_t n = verifier.command_count();
  std::optional<core::Response> dup;
  for (std::size_t i = 0; i + 1 < n; ++i) {
    auto response = prover.handle(verifier.command(i)).response;
    if (i + 2 == n) dup = response;  // last readback step
    ASSERT_TRUE(verifier.on_response(i, std::move(response)).ok());
  }
  ASSERT_TRUE(dup.has_value());
  EXPECT_FALSE(verifier.on_response(n - 2, std::move(dup)).ok());
  EXPECT_FALSE(verifier.finish().ok());
}

// ---- Fleet-level memory accounting --------------------------------------

TEST(SwarmGoldenModel, HomogeneousFleetSharesOneModel) {
  constexpr std::size_t kFleet = 16;
  std::deque<attacks::AttackEnv> envs;
  std::deque<core::SachaVerifier> verifiers;
  std::deque<core::SachaProver> provers;
  std::vector<core::SwarmMember> members;
  for (std::size_t i = 0; i < kFleet; ++i) {
    envs.push_back(attacks::AttackEnv::small(7000 + i));
    verifiers.push_back(envs.back().make_verifier());
    provers.push_back(envs.back().make_prover());
  }
  for (std::size_t i = 0; i < kFleet; ++i) {
    members.push_back(core::SwarmMember{"node-" + std::to_string(i),
                                        &verifiers[i], &provers[i], {}});
  }
  const core::SwarmReport report = core::attest_swarm(members);
  EXPECT_TRUE(report.all_attested());
  EXPECT_EQ(report.distinct_golden_models, 1u)
      << "one device type must intern exactly one golden model";
  EXPECT_EQ(report.unshared_golden_model_bytes,
            kFleet * report.golden_model_bytes);
  EXPECT_EQ(report.retained_readback_bytes, 0u)
      << "streaming fleet retains no readback";
}

// ---- Batched readback (§6.1 buffer-size trade-off) -----------------------

struct BatchedRun {
  core::AttestationReport report;
  std::optional<crypto::Mac> mac;  // H_Vrf after finish()
};

BatchedRun run_batched(std::uint32_t per, core::VerifyMode mode,
                       const core::SessionHooks& hooks = {},
                       core::SessionOptions session = {}) {
  attacks::AttackEnv env = attacks::AttackEnv::small(321);
  env.verifier_options.order = core::ReadbackOrder::kSequentialFromZero;
  env.verifier_options.frames_per_readback = per;
  env.verifier_options.mode = mode;
  core::SachaVerifier verifier = env.make_verifier();
  core::SachaProver prover = env.make_prover();
  BatchedRun out;
  out.report = core::run_attestation(verifier, prover, session, hooks);
  out.mac = verifier.expected_mac();
  return out;
}

TEST(BatchedReadback, MacIsInvariantAcrossBatchWidths) {
  // The MAC absorbs raw frame words in readback order with no per-command
  // framing, so coalescing k frames per ICAP_readback must not change
  // H_Vrf (and the device's H_Prv, or mac_ok would flip).
  const BatchedRun base = run_batched(1, core::VerifyMode::kStreaming);
  ASSERT_TRUE(base.report.verdict.ok()) << base.report.verdict.detail;
  ASSERT_TRUE(base.mac.has_value());
  std::uint64_t prev_commands = base.report.commands_sent;
  for (const std::uint32_t per : {2u, 4u, 8u}) {
    const BatchedRun batched = run_batched(per, core::VerifyMode::kStreaming);
    ASSERT_TRUE(batched.report.verdict.ok())
        << "per=" << per << ": " << batched.report.verdict.detail;
    ASSERT_TRUE(batched.mac.has_value()) << "per=" << per;
    EXPECT_TRUE(*batched.mac == *base.mac)
        << "per=" << per << ": batch width changed the transcript MAC";
    EXPECT_LT(batched.report.commands_sent, prev_commands)
        << "per=" << per << ": wider batches must need fewer commands";
    prev_commands = batched.report.commands_sent;
  }
}

TEST(BatchedReadback, StreamingMatchesRetainedWhenBatched) {
  const BatchedRun streaming = run_batched(4, core::VerifyMode::kStreaming);
  const BatchedRun retained = run_batched(4, core::VerifyMode::kRetained);
  ASSERT_TRUE(streaming.report.verdict.ok()) << streaming.report.verdict.detail;
  ASSERT_TRUE(retained.report.verdict.ok()) << retained.report.verdict.detail;
  ASSERT_TRUE(streaming.mac.has_value());
  ASSERT_TRUE(retained.mac.has_value());
  EXPECT_TRUE(*streaming.mac == *retained.mac);
  EXPECT_EQ(streaming.report.verifier_retained_bytes, 0u);
  EXPECT_GT(retained.report.verifier_retained_bytes, 0u);
}

TEST(BatchedReadback, TamperIsDetectedAtEveryBatchWidth) {
  core::SessionHooks hooks;
  hooks.after_config = [](core::SachaProver& prover) {
    bs::Frame frame = prover.memory().config_frame(7);
    frame.flip_bit(40);
    prover.memory().write_frame(7, frame);
  };
  for (const std::uint32_t per : {1u, 2u, 4u, 8u}) {
    const BatchedRun run =
        run_batched(per, core::VerifyMode::kStreaming, hooks);
    EXPECT_FALSE(run.report.verdict.ok())
        << "per=" << per << ": tampered frame slipped through a batch";
    EXPECT_FALSE(run.report.verdict.config_ok) << "per=" << per;
  }
}

TEST(BatchedReadback, LossyReliableChannelAttestsBatched) {
  core::SessionOptions session;
  session.channel.loss_probability = 0.2;
  session.seed = 99;
  session.reliable = true;
  session.max_retries = 16;
  session.retransmit_timeout = 50 * sim::kMicrosecond;
  const BatchedRun run =
      run_batched(4, core::VerifyMode::kStreaming, {}, session);
  EXPECT_TRUE(run.report.verdict.ok()) << run.report.verdict.detail;
  EXPECT_GT(run.report.messages_lost, 0u)
      << "20% loss over a full session should drop something";
  EXPECT_GT(run.report.retransmissions, 0u);
}

}  // namespace
}  // namespace sacha
