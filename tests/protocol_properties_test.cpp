// Protocol-level property sweeps: structural invariants that must hold for
// every verifier configuration, seed and device — the counts and identities
// that make Tables 3/4 derivable rather than coincidental.
#include <gtest/gtest.h>

#include "attacks/env.hpp"
#include "core/session.hpp"

namespace sacha::core {
namespace {

struct PropertyCase {
  std::uint32_t frames_per_config;
  ReadbackOrder order;
  std::uint64_t seed;
};

class SessionInvariants : public ::testing::TestWithParam<PropertyCase> {};

TEST_P(SessionInvariants, HoldForEveryConfiguration) {
  const PropertyCase& p = GetParam();
  attacks::AttackEnv env = attacks::AttackEnv::small(p.seed);
  env.verifier_options.frames_per_config = p.frames_per_config;
  env.verifier_options.order = p.order;
  auto verifier = env.make_verifier();
  auto prover = env.make_prover();
  const AttestationReport report = run_attestation(verifier, prover);

  ASSERT_TRUE(report.verdict.ok()) << report.verdict.detail;

  // Per-readback identities: every readback is executed, MACed and answered.
  const auto readbacks = report.ledger.count(actions::kA3);
  EXPECT_EQ(report.ledger.count(actions::kA4), readbacks);
  EXPECT_EQ(report.ledger.count(actions::kA6), readbacks);
  EXPECT_EQ(report.ledger.count(actions::kA8), readbacks);
  EXPECT_EQ(readbacks, 16u) << "full memory, regardless of options";

  // Once-per-session actions.
  EXPECT_EQ(report.ledger.count(actions::kA5), 1u);
  EXPECT_EQ(report.ledger.count(actions::kA7), 1u);
  EXPECT_EQ(report.ledger.count(actions::kA9), 1u);
  EXPECT_EQ(report.ledger.count(actions::kA10), 1u);

  // Config commands follow the chunking arithmetic (+1 nonce).
  const std::uint32_t app_frames = 11;
  const std::uint32_t expected_configs =
      (app_frames + p.frames_per_config - 1) / p.frames_per_config + 1;
  EXPECT_EQ(report.ledger.count(actions::kA1), expected_configs);
  EXPECT_EQ(report.ledger.count(actions::kA2), expected_configs);

  // The theoretical time is exactly the sum of the A-buckets.
  sim::SimDuration sum = 0;
  for (const char* key : {actions::kA1, actions::kA2, actions::kA3, actions::kA4,
                          actions::kA5, actions::kA6, actions::kA7, actions::kA8,
                          actions::kA9, actions::kA10}) {
    sum += report.ledger.total(key);
  }
  EXPECT_EQ(report.theoretical_time, sum);
  EXPECT_GE(report.total_time, report.theoretical_time);

  // Command accounting matches the ledger.
  EXPECT_EQ(report.commands_sent,
            report.ledger.count(actions::kA1) + readbacks + 1);
}

INSTANTIATE_TEST_SUITE_P(
    Matrix, SessionInvariants,
    ::testing::Values(
        PropertyCase{1, ReadbackOrder::kSequentialFromOffset, 1},
        PropertyCase{1, ReadbackOrder::kSequentialFromZero, 2},
        PropertyCase{1, ReadbackOrder::kRandomPermutation, 3},
        PropertyCase{2, ReadbackOrder::kSequentialFromOffset, 4},
        PropertyCase{3, ReadbackOrder::kRandomPermutation, 5},
        PropertyCase{5, ReadbackOrder::kSequentialFromZero, 6},
        PropertyCase{11, ReadbackOrder::kSequentialFromOffset, 7}));

TEST(VerifierDeterminism, SameSeedSameCommands) {
  attacks::AttackEnv env = attacks::AttackEnv::small(77);
  auto v1 = env.make_verifier();
  auto v2 = env.make_verifier();
  v1.begin();
  v2.begin();
  ASSERT_EQ(v1.command_count(), v2.command_count());
  for (std::size_t i = 0; i < v1.command_count(); ++i) {
    EXPECT_EQ(v1.command(i), v2.command(i)) << i;
  }
}

TEST(VerifierDeterminism, SessionsDifferWithinOneVerifier) {
  attacks::AttackEnv env = attacks::AttackEnv::small(78);
  auto verifier = env.make_verifier();
  verifier.begin();
  const std::size_t config_count = verifier.command_count() - 17;  // 16 rb + mac
  const Command nonce_cmd_1 = verifier.command(config_count - 1);
  verifier.begin();
  const Command nonce_cmd_2 = verifier.command(config_count - 1);
  EXPECT_NE(nonce_cmd_1, nonce_cmd_2) << "nonce frame content must roll";
}

TEST(CommandIdempotence, ReplayingConfigCommandIsHarmless) {
  // The RX-side dedup covers retransmissions; even without it, re-executing
  // the same config command writes the same bytes.
  attacks::AttackEnv env = attacks::AttackEnv::small(79);
  auto verifier = env.make_verifier();
  auto prover = env.make_prover();
  verifier.begin();
  const Command cmd = verifier.command(0);
  (void)prover.handle(cmd);
  const auto snapshot = prover.memory().config_frame(4);
  (void)prover.handle(cmd);
  EXPECT_EQ(prover.memory().config_frame(4), snapshot);
}

struct RetransmitCase {
  std::uint32_t max_retries;
  std::uint64_t seed;
};

class RetransmitDedup : public ::testing::TestWithParam<RetransmitCase> {};

TEST_P(RetransmitDedup, LostResponsePlusRetryNeverDoubleStepsTheMac) {
  // Drop the first delivery of every response — configuration acks,
  // readback frames and the MAC checksum alike — so every command round
  // retransmits at least once. The device's sequence-number dedup answers
  // the retry from its response cache, so the ICAP executes each command
  // exactly once and the running CMAC steps exactly once per readback.
  // If a retry double-stepped the MAC, H_Prv would diverge from H_Vrf and
  // the verdict would fail; attesting proves the property across all
  // three command types for this retry budget.
  const RetransmitCase& p = GetParam();
  attacks::AttackEnv env = attacks::AttackEnv::small(p.seed);
  env.session_options.reliable = true;
  env.session_options.max_retries = p.max_retries;
  auto verifier = env.make_verifier();
  auto prover = env.make_prover();
  SessionHooks hooks;
  std::size_t responses_this_command = 0;
  hooks.before_command = [&responses_this_command](std::size_t,
                                                   SachaProver&) {
    responses_this_command = 0;
  };
  hooks.on_response = [&responses_this_command](Bytes&) {
    return responses_this_command++ > 0;  // swallow the first delivery
  };
  const AttestationReport report =
      run_attestation(verifier, prover, env.session_options, hooks);
  ASSERT_TRUE(report.verdict.ok()) << report.verdict.detail;
  EXPECT_EQ(report.failure, FailureKind::kNone);
  // One retry per command that expects a reply (readbacks + MAC) and per
  // acked configuration command.
  EXPECT_GE(report.retransmissions, report.commands_sent / 2);

  // The reference MAC of an undisturbed run is identical: the retries were
  // invisible to the crypto.
  attacks::AttackEnv clean_env = attacks::AttackEnv::small(p.seed);
  auto clean_verifier = clean_env.make_verifier();
  auto clean_prover = clean_env.make_prover();
  const AttestationReport clean =
      run_attestation(clean_verifier, clean_prover, clean_env.session_options);
  ASSERT_TRUE(clean.verdict.ok());
  ASSERT_TRUE(prover.last_mac().has_value());
  ASSERT_TRUE(clean_prover.last_mac().has_value());
  EXPECT_EQ(*prover.last_mac(), *clean_prover.last_mac());
}

INSTANTIATE_TEST_SUITE_P(AllRetryBudgets, RetransmitDedup,
                         ::testing::Values(RetransmitCase{1, 90},
                                           RetransmitCase{2, 91},
                                           RetransmitCase{3, 92},
                                           RetransmitCase{5, 93},
                                           RetransmitCase{8, 94}));

TEST(StreamPadding, PaddedAndUnpaddedCommandsActIdentically) {
  attacks::AttackEnv env = attacks::AttackEnv::small(80);
  env.verifier_options.config_pad_words = 0;  // no padding at all
  env.verifier_options.readback_pad_words = 0;
  auto verifier = env.make_verifier();
  auto prover = env.make_prover();
  const AttestationReport report = run_attestation(verifier, prover);
  EXPECT_TRUE(report.verdict.ok()) << report.verdict.detail;
  // Less wire time than the padded PoC framing, same device-side work.
  EXPECT_LT(report.ledger.average(actions::kA1), 8'848u);
  EXPECT_EQ(report.ledger.average(actions::kA2),
            sim::icap_domain().cycles_to_time(18 + 8 + 11));
}

}  // namespace
}  // namespace sacha::core
