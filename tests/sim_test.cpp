// Tests for the simulation substrate: clock domains, event queue ordering,
// the time ledger, and the bounded FIFO model.
#include <gtest/gtest.h>

#include "sim/clock.hpp"
#include "sim/event_queue.hpp"
#include "sim/fifo.hpp"
#include "sim/ledger.hpp"

namespace sacha::sim {
namespace {

TEST(ClockDomain, PocDomainPeriods) {
  EXPECT_EQ(rx_domain().period(), 8u);    // 125 MHz
  EXPECT_EQ(tx_domain().period(), 8u);    // 125 MHz
  EXPECT_EQ(icap_domain().period(), 10u); // 100 MHz
}

TEST(ClockDomain, CyclesToTime) {
  EXPECT_EQ(icap_domain().cycles_to_time(183), 1'830u);
  EXPECT_EQ(icap_domain().cycles_to_time(2'404), 24'040u);
  EXPECT_EQ(tx_domain().cycles_to_time(16), 128u);
}

TEST(ClockDomain, TimeToCyclesRoundsUp) {
  const ClockDomain icap = icap_domain();
  EXPECT_EQ(icap.time_to_cycles(10), 1u);
  EXPECT_EQ(icap.time_to_cycles(11), 2u);
  EXPECT_EQ(icap.time_to_cycles(20), 2u);
}

TEST(EventQueue, RunsInTimeOrder) {
  EventQueue queue;
  std::vector<int> order;
  queue.schedule(30, [&] { order.push_back(3); });
  queue.schedule(10, [&] { order.push_back(1); });
  queue.schedule(20, [&] { order.push_back(2); });
  queue.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(queue.now(), 30u);
}

TEST(EventQueue, SimultaneousEventsAreFifo) {
  EventQueue queue;
  std::vector<int> order;
  for (int i = 0; i < 5; ++i) {
    queue.schedule(7, [&order, i] { order.push_back(i); });
  }
  queue.run();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(EventQueue, EventsCanScheduleEvents) {
  EventQueue queue;
  int fired = 0;
  queue.schedule(5, [&] {
    ++fired;
    queue.schedule(5, [&] { ++fired; });
  });
  queue.run();
  EXPECT_EQ(fired, 2);
  EXPECT_EQ(queue.now(), 10u);
}

TEST(EventQueue, RunUntilStopsAtDeadline) {
  EventQueue queue;
  int fired = 0;
  queue.schedule(10, [&] { ++fired; });
  queue.schedule(100, [&] { ++fired; });
  EXPECT_EQ(queue.run_until(50), 1u);
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(queue.now(), 50u);
  EXPECT_EQ(queue.pending(), 1u);
}

TEST(EventQueue, AdvanceMovesClock) {
  EventQueue queue;
  queue.advance(123);
  EXPECT_EQ(queue.now(), 123u);
}

TEST(Ledger, AccumulatesPerAction) {
  TimeLedger ledger;
  ledger.add("A1", 100);
  ledger.add("A1", 200);
  ledger.add("A2", 50);
  EXPECT_EQ(ledger.count("A1"), 2u);
  EXPECT_EQ(ledger.total("A1"), 300u);
  EXPECT_EQ(ledger.average("A1"), 150u);
  EXPECT_EQ(ledger.grand_total(), 350u);
}

TEST(Ledger, UnknownActionIsZero) {
  TimeLedger ledger;
  EXPECT_EQ(ledger.count("missing"), 0u);
  EXPECT_EQ(ledger.total("missing"), 0u);
  EXPECT_EQ(ledger.average("missing"), 0u);
}

TEST(Ledger, PreservesInsertionOrder) {
  TimeLedger ledger;
  ledger.add("z", 1);
  ledger.add("a", 1);
  ledger.add("z", 1);
  EXPECT_EQ(ledger.actions(), (std::vector<std::string>{"z", "a"}));
}

TEST(Ledger, ClearResets) {
  TimeLedger ledger;
  ledger.add("x", 5);
  ledger.clear();
  EXPECT_EQ(ledger.grand_total(), 0u);
  EXPECT_TRUE(ledger.actions().empty());
}

TEST(FifoModel, PushPopOrder) {
  Fifo<int> fifo(4);
  EXPECT_TRUE(fifo.push(1));
  EXPECT_TRUE(fifo.push(2));
  EXPECT_EQ(fifo.pop(), 1);
  EXPECT_EQ(fifo.pop(), 2);
  EXPECT_EQ(fifo.pop(), std::nullopt);
}

TEST(FifoModel, RejectsWhenFull) {
  Fifo<int> fifo(2);
  EXPECT_TRUE(fifo.push(1));
  EXPECT_TRUE(fifo.push(2));
  EXPECT_FALSE(fifo.push(3));
  EXPECT_EQ(fifo.overflows(), 1u);
  EXPECT_EQ(fifo.size(), 2u);
}

TEST(FifoModel, TracksHighWater) {
  Fifo<int> fifo(8);
  fifo.push(1);
  fifo.push(2);
  fifo.push(3);
  (void)fifo.pop();
  (void)fifo.pop();
  fifo.push(4);
  EXPECT_EQ(fifo.high_water(), 3u);
}

}  // namespace
}  // namespace sacha::sim
