// Tests for §5.2.2 nonce-refresh sessions: after a full install, the
// verifier refreshes only the nonce partition and re-reads the whole
// memory — cheap freshness without retransmitting the application.
#include <gtest/gtest.h>

#include "attacks/env.hpp"
#include "core/session.hpp"

namespace sacha::core {
namespace {

TEST(Refresh, WorksAfterFullSession) {
  attacks::AttackEnv env = attacks::AttackEnv::small(300);
  auto verifier = env.make_verifier();
  auto prover = env.make_prover();
  ASSERT_TRUE(run_attestation(verifier, prover).verdict.ok());

  verifier.set_refresh_only(true);
  const AttestationReport refresh = run_attestation(verifier, prover);
  EXPECT_TRUE(refresh.verdict.ok()) << refresh.verdict.detail;
  // One config command (the nonce) instead of twelve.
  EXPECT_EQ(refresh.ledger.count(actions::kA1), 1u);
  // Readback still covers the whole memory.
  EXPECT_EQ(refresh.ledger.count(actions::kA3), 16u);
}

TEST(Refresh, FailsOnFreshDevice) {
  // Without a prior full install the application frames are zero, so the
  // full-memory readback must reject the device.
  attacks::AttackEnv env = attacks::AttackEnv::small(301);
  env.verifier_options.refresh_only = true;
  auto verifier = env.make_verifier();
  auto prover = env.make_prover();
  const AttestationReport report = run_attestation(verifier, prover);
  EXPECT_FALSE(report.verdict.ok());
  EXPECT_FALSE(report.verdict.config_ok);
}

TEST(Refresh, DetectsTamperSinceLastSession) {
  attacks::AttackEnv env = attacks::AttackEnv::small(302);
  auto verifier = env.make_verifier();
  auto prover = env.make_prover();
  ASSERT_TRUE(run_attestation(verifier, prover).verdict.ok());

  // The adversary strikes between sessions (no tamper window needed: the
  // refresh does not overwrite the application).
  bitstream::Frame f = prover.memory().config_frame(7);
  f.flip_bit(30);
  prover.memory().write_frame_preserving_registers(7, f);

  verifier.set_refresh_only(true);
  const AttestationReport refresh = run_attestation(verifier, prover);
  EXPECT_FALSE(refresh.verdict.ok());
  EXPECT_FALSE(refresh.verdict.config_ok);
}

TEST(Refresh, NonceStillRollsPerRefresh) {
  attacks::AttackEnv env = attacks::AttackEnv::small(303);
  auto verifier = env.make_verifier();
  auto prover = env.make_prover();
  ASSERT_TRUE(run_attestation(verifier, prover).verdict.ok());
  verifier.set_refresh_only(true);
  (void)run_attestation(verifier, prover);
  const std::uint64_t n1 = verifier.nonce();
  (void)run_attestation(verifier, prover);
  EXPECT_NE(verifier.nonce(), n1);
}

TEST(Refresh, RefusesStaleNonceReplayAcrossRefreshes) {
  attacks::AttackEnv env = attacks::AttackEnv::small(304);
  auto verifier = env.make_verifier();
  auto prover = env.make_prover();
  ASSERT_TRUE(run_attestation(verifier, prover).verdict.ok());
  verifier.set_refresh_only(true);

  // Adversary drops the (only) config command of the refresh: the device
  // still holds the previous session's nonce.
  SessionHooks hooks;
  hooks.on_command = [](Bytes& packet) {
    auto cmd = Command::decode(packet);
    return !(cmd.ok() && cmd.value().type == CommandType::kIcapConfig);
  };
  const AttestationReport report = run_attestation(verifier, prover, {}, hooks);
  EXPECT_FALSE(report.verdict.ok());
}

TEST(Refresh, DoesNotInstallApplicationUpdates) {
  // set_app_spec during refresh mode changes the golden but ships nothing:
  // the verifier must *detect* the device still runs the old version. This
  // is the intended semantics — refresh proves what is there, it does not
  // update.
  attacks::AttackEnv env = attacks::AttackEnv::small(305);
  auto verifier = env.make_verifier();
  auto prover = env.make_prover();
  ASSERT_TRUE(run_attestation(verifier, prover).verdict.ok());
  verifier.set_refresh_only(true);
  verifier.set_app_spec({"app-v2", 2});
  const AttestationReport report = run_attestation(verifier, prover);
  EXPECT_FALSE(report.verdict.ok()) << "device still runs v1; must not pass";
  // A full session then installs and attests v2.
  verifier.set_refresh_only(false);
  EXPECT_TRUE(run_attestation(verifier, prover).verdict.ok());
}

TEST(Refresh, MuchCheaperThanFullSession) {
  attacks::AttackEnv env = attacks::AttackEnv::small(306);
  auto verifier = env.make_verifier();
  auto prover = env.make_prover();
  const AttestationReport full = run_attestation(verifier, prover);
  verifier.set_refresh_only(true);
  const AttestationReport refresh = run_attestation(verifier, prover);
  ASSERT_TRUE(full.verdict.ok());
  ASSERT_TRUE(refresh.verdict.ok());
  // On the toy device padded readback commands dominate the upload, so the
  // byte saving is modest; the command saving is the structural one (11 of
  // 12 configuration commands disappear).
  EXPECT_LT(refresh.bytes_to_prover, full.bytes_to_prover);
  EXPECT_EQ(full.commands_sent - refresh.commands_sent, 11u);
}

}  // namespace
}  // namespace sacha::core
