// Tests for the PUF substrate: SRAM cell model statistics, fuzzy-extractor
// correctness (reproduction under noise, failure detection), and the
// enrollment database.
#include <gtest/gtest.h>

#include "puf/enrollment.hpp"
#include "puf/fuzzy_extractor.hpp"
#include "puf/sram_puf.hpp"

namespace sacha::puf {
namespace {

TEST(SramPuf, NominalIsDeterministicPerDevice) {
  const SramPuf a(42, 1'024, 0.1);
  const SramPuf b(42, 1'024, 0.1);
  EXPECT_EQ(a.nominal(), b.nominal());
}

TEST(SramPuf, DevicesAreUnique) {
  const SramPuf a(1, 2'048, 0.1);
  const SramPuf b(2, 2'048, 0.1);
  // Independent uniform responses differ in ~50% of cells.
  const std::size_t d = a.nominal().hamming(b.nominal());
  EXPECT_GT(d, 2'048u * 40 / 100);
  EXPECT_LT(d, 2'048u * 60 / 100);
}

TEST(SramPuf, NominalIsBalanced) {
  const SramPuf puf(3, 4'096, 0.1);
  const std::size_t ones = puf.nominal().popcount();
  EXPECT_GT(ones, 4'096u * 45 / 100);
  EXPECT_LT(ones, 4'096u * 55 / 100);
}

TEST(SramPuf, ReadNoiseMatchesRate) {
  const SramPuf puf(4, 8'192, 0.1);
  Rng rng(5);
  const std::size_t flips = puf.read(rng).hamming(puf.nominal());
  // Expect ~819 flips; allow generous bounds.
  EXPECT_GT(flips, 8'192u * 6 / 100);
  EXPECT_LT(flips, 8'192u * 14 / 100);
}

TEST(SramPuf, ZeroNoiseReadsAreExact) {
  const SramPuf puf(6, 512, 0.0);
  Rng rng(7);
  EXPECT_EQ(puf.read(rng), puf.nominal());
}

TEST(FuzzyExtractor, ReproducesUnderTypicalNoise) {
  const std::uint32_t r = 15;
  const SramPuf puf(10, required_cells(r), 0.08);
  Rng rng(11);
  const Enrollment e = generate(puf.nominal(), r, rng);
  for (int trial = 0; trial < 50; ++trial) {
    auto key = reproduce(puf.read(rng), e.helper);
    ASSERT_TRUE(key.has_value()) << "trial " << trial;
    EXPECT_EQ(*key, e.key);
  }
}

TEST(FuzzyExtractor, NoiselessReproductionIsExact) {
  const std::uint32_t r = 5;
  const SramPuf puf(12, required_cells(r), 0.0);
  Rng rng(13);
  const Enrollment e = generate(puf.nominal(), r, rng);
  auto key = reproduce(puf.nominal(), e.helper);
  ASSERT_TRUE(key.has_value());
  EXPECT_EQ(*key, e.key);
}

TEST(FuzzyExtractor, WrongDeviceFailsCommitmentCheck) {
  const std::uint32_t r = 15;
  const SramPuf genuine(20, required_cells(r), 0.05);
  const SramPuf clone(21, required_cells(r), 0.05);
  Rng rng(22);
  const Enrollment e = generate(genuine.nominal(), r, rng);
  // A cloned device's response is ~50% away: decoding must fail loudly, not
  // yield a wrong key.
  EXPECT_FALSE(reproduce(clone.read(rng), e.helper).has_value());
}

TEST(FuzzyExtractor, OverwhelmingNoiseFailsLoudly) {
  const std::uint32_t r = 3;  // weak code
  const SramPuf puf(23, required_cells(r), 0.45);
  Rng rng(24);
  const Enrollment e = generate(puf.nominal(), r, rng);
  int failures = 0;
  for (int trial = 0; trial < 20; ++trial) {
    auto key = reproduce(puf.read(rng), e.helper);
    if (!key.has_value()) {
      ++failures;
    } else {
      EXPECT_EQ(*key, e.key);  // never a silently wrong key
    }
  }
  EXPECT_GT(failures, 0);
}

TEST(FuzzyExtractor, HelperMismatchRejected) {
  const std::uint32_t r = 5;
  const SramPuf puf(25, required_cells(r), 0.05);
  Rng rng(26);
  Enrollment e = generate(puf.nominal(), r, rng);
  HelperData bad = e.helper;
  bad.repetition = 0;
  EXPECT_FALSE(reproduce(puf.nominal(), bad).has_value());
  HelperData wrong_size = e.helper;
  wrong_size.repetition = r + 2;  // offset no longer matches
  EXPECT_FALSE(reproduce(puf.nominal(), wrong_size).has_value());
}

TEST(FuzzyExtractor, KeysDifferAcrossEnrollments) {
  const std::uint32_t r = 5;
  const SramPuf puf(27, required_cells(r), 0.05);
  Rng rng(28);
  const Enrollment e1 = generate(puf.nominal(), r, rng);
  const Enrollment e2 = generate(puf.nominal(), r, rng);
  EXPECT_NE(e1.key, e2.key);  // fresh key randomness each time
}

TEST(FuzzyExtractor, HelperDoesNotEqualKeyMaterial) {
  // Sanity: the helper offset is the codeword XOR response; with a random
  // response it should look balanced, not like the raw key bits.
  const std::uint32_t r = 15;
  const SramPuf puf(29, required_cells(r), 0.05);
  Rng rng(30);
  const Enrollment e = generate(puf.nominal(), r, rng);
  const std::size_t ones = e.helper.offset.popcount();
  const std::size_t n = e.helper.offset.size();
  EXPECT_GT(ones, n * 40 / 100);
  EXPECT_LT(ones, n * 60 / 100);
}

// Repetition sweep: higher r must not reduce reliability.
class RepetitionSweep : public ::testing::TestWithParam<std::uint32_t> {};

TEST_P(RepetitionSweep, ReproductionSucceedsAtModerateNoise) {
  const std::uint32_t r = GetParam();
  const SramPuf puf(31 + r, required_cells(r), 0.06);
  Rng rng(32);
  const Enrollment e = generate(puf.nominal(), r, rng);
  int ok = 0;
  for (int trial = 0; trial < 30; ++trial) {
    auto key = reproduce(puf.read(rng), e.helper);
    if (key.has_value() && *key == e.key) ++ok;
  }
  // r >= 9 at p=0.06 should essentially always succeed.
  if (r >= 9) {
    EXPECT_EQ(ok, 30);
  } else {
    EXPECT_GT(ok, 0);
  }
}

INSTANTIATE_TEST_SUITE_P(Repetitions, RepetitionSweep,
                         ::testing::Values(3u, 5u, 9u, 15u, 25u));

TEST(EnrollmentDb, EnrollAndRegenerate) {
  const std::uint32_t r = 15;
  const SramPuf puf(40, required_cells(r), 0.08);
  EnrollmentDb db;
  Rng rng(41);
  const HelperData helper = db.enroll("dev-1", "puf-v1", puf, rng, r);
  const auto vrf_key = db.key_of("dev-1", "puf-v1");
  ASSERT_TRUE(vrf_key.has_value());
  // Device side regenerates the same key from a fresh noisy read.
  auto dev_key = reproduce(puf.read(rng), helper);
  ASSERT_TRUE(dev_key.has_value());
  EXPECT_EQ(*dev_key, *vrf_key);
}

TEST(EnrollmentDb, StoresHelper) {
  const std::uint32_t r = 9;
  const SramPuf puf(42, required_cells(r), 0.05);
  EnrollmentDb db;
  Rng rng(43);
  const HelperData helper = db.enroll("dev-2", "puf-v1", puf, rng, r);
  const auto stored = db.helper_of("dev-2", "puf-v1");
  ASSERT_TRUE(stored.has_value());
  EXPECT_EQ(*stored, helper);
}

TEST(EnrollmentDb, SeparateCircuitsSeparateKeys) {
  const std::uint32_t r = 9;
  const SramPuf puf_v1(44, required_cells(r), 0.05);
  const SramPuf puf_v2(45, required_cells(r), 0.05);
  EnrollmentDb db;
  Rng rng(46);
  db.enroll("dev-3", "puf-v1", puf_v1, rng, r);
  db.enroll("dev-3", "puf-v2", puf_v2, rng, r);
  EXPECT_NE(*db.key_of("dev-3", "puf-v1"), *db.key_of("dev-3", "puf-v2"));
  EXPECT_EQ(db.size(), 2u);
}

TEST(EnrollmentDb, RevokeRemovesRecord) {
  const std::uint32_t r = 9;
  const SramPuf puf(47, required_cells(r), 0.05);
  EnrollmentDb db;
  Rng rng(48);
  db.enroll("dev-4", "puf-v1", puf, rng, r);
  EXPECT_TRUE(db.revoke("dev-4", "puf-v1"));
  EXPECT_FALSE(db.revoke("dev-4", "puf-v1"));
  EXPECT_FALSE(db.key_of("dev-4", "puf-v1").has_value());
}

TEST(EnrollmentDb, UnknownLookupsAreEmpty) {
  EnrollmentDb db;
  EXPECT_FALSE(db.key_of("ghost", "puf").has_value());
  EXPECT_FALSE(db.helper_of("ghost", "puf").has_value());
}

}  // namespace
}  // namespace sacha::puf
