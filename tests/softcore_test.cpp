// Tests for the softcore substrate: instruction codec, CPU semantics,
// assembler, determinism, and the state<->fabric mapping.
#include <gtest/gtest.h>

#include "bitstream/bitgen.hpp"
#include "softcore/assembler.hpp"
#include "softcore/state_map.hpp"

namespace sacha::softcore {
namespace {

Program asm_or_die(std::string_view src) {
  auto p = assemble(src);
  EXPECT_TRUE(p.ok()) << p.message();
  return p.ok() ? p.value() : Program{};
}

// --------------------------------------------------------------------- ISA

TEST(Isa, EncodeDecodeRoundTrip) {
  for (std::uint8_t op = 0; valid_opcode(op); ++op) {
    Instruction inst{static_cast<Opcode>(op), 3, 5, 0x1234};
    auto decoded = Instruction::decode(inst.encode());
    ASSERT_TRUE(decoded.has_value()) << int{op};
    EXPECT_EQ(*decoded, inst);
  }
}

TEST(Isa, DecodeRejectsBadOpcode) {
  EXPECT_FALSE(Instruction::decode(0xff000000).has_value());
}

TEST(Isa, DecodeRejectsBadRegister) {
  // rd = 9 > 7.
  const std::uint32_t word = (0x04u << 24) | (9u << 20);
  EXPECT_FALSE(Instruction::decode(word).has_value());
}

TEST(Isa, Rs2LivesInImmLowNibble) {
  Instruction inst{Opcode::kAdd, 0, 1, 0x0002};
  EXPECT_EQ(inst.rs2(), 2);
}

// --------------------------------------------------------------------- CPU

TEST(Cpu, LdiAndArithmetic) {
  SoftCore cpu(asm_or_die(R"(
    ldi r1, 10
    ldi r2, 32
    add r3, r1, r2
    sub r4, r2, r1
    halt
  )"));
  cpu.run(100);
  EXPECT_TRUE(cpu.halted());
  EXPECT_EQ(cpu.state().regs[3], 42);
  EXPECT_EQ(cpu.state().regs[4], 22);
}

TEST(Cpu, LogicAndShifts) {
  SoftCore cpu(asm_or_die(R"(
    ldi r1, 0x0f0f
    ldi r2, 0x00ff
    and r3, r1, r2
    or  r4, r1, r2
    xor r5, r1, r2
    shl r6, r2, 4
    shr r7, r2, 4
    halt
  )"));
  cpu.run(100);
  EXPECT_EQ(cpu.state().regs[3], 0x000f);
  EXPECT_EQ(cpu.state().regs[4], 0x0fff);
  EXPECT_EQ(cpu.state().regs[5], 0x0ff0);
  EXPECT_EQ(cpu.state().regs[6], 0x0ff0);
  EXPECT_EQ(cpu.state().regs[7], 0x000f);
}

TEST(Cpu, LoadStore) {
  SoftCore cpu(asm_or_die(R"(
    ldi r1, 7
    ldi r2, 3
    st  r1, r2, 5     ; mem[8] <- 7
    ld  r4, r2, 5     ; r4 <- mem[8]
    halt
  )"));
  cpu.run(100);
  EXPECT_EQ(cpu.data_memory()[8], 7);
  EXPECT_EQ(cpu.state().regs[4], 7);
}

TEST(Cpu, LoopWithBranch) {
  // Sum 1..10 into r2.
  SoftCore cpu(asm_or_die(R"(
    ldi r1, 0       ; i
    ldi r2, 0       ; sum
    ldi r3, 10      ; limit
  loop:
    addi r1, r1, 1
    add  r2, r2, r1
    bne  r1, r3, loop
    halt
  )"));
  cpu.run(1'000);
  EXPECT_TRUE(cpu.halted());
  EXPECT_EQ(cpu.state().regs[2], 55);
}

TEST(Cpu, JmpRedirectsPc) {
  SoftCore cpu(asm_or_die(R"(
    jmp skip
    ldi r1, 99
  skip:
    ldi r2, 1
    halt
  )"));
  cpu.run(100);
  EXPECT_EQ(cpu.state().regs[1], 0);
  EXPECT_EQ(cpu.state().regs[2], 1);
}

TEST(Cpu, RunningOffProgramHalts) {
  SoftCore cpu(asm_or_die("ldi r1, 1"));
  cpu.run(100);
  EXPECT_TRUE(cpu.halted());
}

TEST(Cpu, OutOfRangeMemoryAccessTraps) {
  SoftCore cpu(asm_or_die(R"(
    ldi r1, 9999
    ld  r2, r1, 0
    ldi r3, 1
  )"),
               /*data_words=*/16);
  cpu.run(100);
  EXPECT_TRUE(cpu.halted());
  EXPECT_EQ(cpu.state().regs[3], 0) << "trap must stop execution";
}

TEST(Cpu, StepCountHonoured) {
  SoftCore cpu(asm_or_die(R"(
  loop:
    addi r1, r1, 1
    jmp loop
  )"));
  EXPECT_EQ(cpu.run(7), 7u);
  EXPECT_FALSE(cpu.halted());
  // 7 steps = 4 addi (steps 1,3,5,7) => r1 == 4.
  EXPECT_EQ(cpu.state().regs[1], 4);
}

TEST(Cpu, DeterministicAcrossInstances) {
  const Program program = asm_or_die(R"(
    ldi r1, 3
  loop:
    add r2, r2, r1
    addi r3, r3, 1
    bne r3, r1, loop
    halt
  )");
  SoftCore a(program), b(program);
  a.run(500);
  b.run(500);
  EXPECT_EQ(a.state(), b.state());
  EXPECT_EQ(a.data_memory(), b.data_memory());
}

// ---------------------------------------------------------------- Assembler

TEST(Assembler, ReportsUnknownMnemonic) {
  EXPECT_FALSE(assemble("frobnicate r1").ok());
}

TEST(Assembler, ReportsBadRegister) {
  EXPECT_FALSE(assemble("ldi r9, 1").ok());
  EXPECT_FALSE(assemble("ldi rx, 1").ok());
}

TEST(Assembler, ReportsMissingOperands) {
  EXPECT_FALSE(assemble("add r1, r2").ok());
  EXPECT_FALSE(assemble("jmp").ok());
}

TEST(Assembler, ReportsDuplicateLabel) {
  EXPECT_FALSE(assemble("a:\n nop\na:\n nop").ok());
}

TEST(Assembler, ReportsUnknownLabel) {
  EXPECT_FALSE(assemble("jmp nowhere").ok());
}

TEST(Assembler, HexAndDecimalImmediates) {
  const Program p = asm_or_die("ldi r1, 0x10\nldi r2, 16");
  EXPECT_EQ(p[0].imm, p[1].imm);
}

TEST(Assembler, CommentsAndBlankLinesIgnored)  {
  const Program p = asm_or_die(R"(
    ; a comment line
    # another comment
    nop   ; trailing comment
  )");
  EXPECT_EQ(p.size(), 1u);
}

TEST(Assembler, DisassembleNamesEveryOpcode) {
  Program program;
  for (std::uint8_t op = 0; valid_opcode(op); ++op) {
    program.push_back(Instruction{static_cast<Opcode>(op), 1, 2, 3});
  }
  const std::string text = disassemble(program);
  for (std::uint8_t op = 0; valid_opcode(op); ++op) {
    EXPECT_NE(text.find(mnemonic(static_cast<Opcode>(op))), std::string::npos);
  }
}

// ----------------------------------------------------------------- StateMap

fabric::DeviceModel sc_device() { return fabric::DeviceModel::softcore_test_device(); }

TEST(StateMap, BuildsOnSoftcoreDevice) {
  auto map = StateMap::build(sc_device(), fabric::FrameRange{6, 30});
  ASSERT_TRUE(map.ok()) << map.message();
  EXPECT_EQ(map.value().bit_count(), CpuState::kStateBits);
  EXPECT_FALSE(map.value().frames_touched().empty());
}

TEST(StateMap, FailsWhenRangeTooSmall) {
  auto map = StateMap::build(sc_device(), fabric::FrameRange{6, 2});
  EXPECT_FALSE(map.ok());
}

TEST(StateMap, StateBitsRoundTrip) {
  CpuState state;
  state.regs = {1, 2, 0xffff, 0x8000, 5, 6, 7, 8};
  state.pc = 0xabcd;
  state.halted = true;
  EXPECT_EQ(StateMap::state_from_bits(StateMap::state_bits(state)), state);
}

TEST(StateMap, SyncThenReadbackRecoversState) {
  const auto device = sc_device();
  auto map = StateMap::build(device, fabric::FrameRange{6, 30});
  ASSERT_TRUE(map.ok());
  config::ConfigMemory memory(device);

  CpuState state;
  state.regs = {10, 20, 30, 40, 50, 60, 70, 80};
  state.pc = 0x1234;
  state.halted = false;
  map.value().sync_to_memory(state, memory);

  // Recover through the readback path + imprint/masked-compare machinery.
  for (const std::uint32_t f : map.value().frames_touched()) {
    const bitstream::Frame readback = memory.readback_frame(f);
    const bitstream::FrameMask widened =
        map.value().widened_mask(f, memory.mask(f));
    const bitstream::Frame expected =
        map.value().imprint(f, memory.config_frame(f), state);
    EXPECT_TRUE(bitstream::masked_equal(readback, expected, widened))
        << "frame " << f;
  }
}

TEST(StateMap, DifferentStatesDiffer) {
  const auto device = sc_device();
  auto map = StateMap::build(device, fabric::FrameRange{6, 30});
  ASSERT_TRUE(map.ok());
  config::ConfigMemory memory(device);
  CpuState state;
  state.regs[0] = 0x0001;
  map.value().sync_to_memory(state, memory);

  CpuState other = state;
  other.regs[0] = 0x0000;
  bool any_mismatch = false;
  for (const std::uint32_t f : map.value().frames_touched()) {
    const bitstream::Frame readback = memory.readback_frame(f);
    const bitstream::FrameMask widened =
        map.value().widened_mask(f, memory.mask(f));
    const bitstream::Frame expected =
        map.value().imprint(f, memory.config_frame(f), other);
    if (!bitstream::masked_equal(readback, expected, widened)) {
      any_mismatch = true;
    }
  }
  EXPECT_TRUE(any_mismatch);
}

TEST(StateMap, WidenedMaskOnlyAddsMappedBits) {
  const auto device = sc_device();
  auto map = StateMap::build(device, fabric::FrameRange{6, 30});
  ASSERT_TRUE(map.ok());
  const std::uint32_t f = map.value().frames_touched()[0];
  const bitstream::FrameMask base = bitstream::architectural_mask(device, f);
  const bitstream::FrameMask widened = map.value().widened_mask(f, base);
  std::uint32_t added = 0;
  for (std::uint32_t b = 0; b < base.bit_count(); ++b) {
    EXPECT_TRUE(!base.get_bit(b) || widened.get_bit(b)) << "mask bit lost";
    if (!base.get_bit(b) && widened.get_bit(b)) ++added;
  }
  EXPECT_GT(added, 0u);
}

TEST(StateMap, DeterministicAcrossBuilds) {
  const auto device = sc_device();
  auto a = StateMap::build(device, fabric::FrameRange{6, 30});
  auto b = StateMap::build(device, fabric::FrameRange{6, 30});
  ASSERT_TRUE(a.ok() && b.ok());
  EXPECT_EQ(a.value().frames_touched(), b.value().frames_touched());
}

}  // namespace
}  // namespace sacha::softcore
