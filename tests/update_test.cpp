// Tests for the attestation-gated secure update pipeline: signed manifests,
// the UpdateGate state machine, run_update against real verifier/prover
// pairs under fault injection, probe sessions and their soundness limits,
// and the EpochScheduler's probe→full escalation loop.
#include <gtest/gtest.h>

#include <deque>
#include <string>
#include <vector>

#include "attacks/env.hpp"
#include "common/rng.hpp"
#include "core/session.hpp"
#include "fault/injector.hpp"
#include "update/epoch.hpp"
#include "update/gate.hpp"
#include "update/manifest.hpp"
#include "update/pipeline.hpp"

namespace sacha::update {
namespace {

using core::FailureKind;

// Builds a signed manifest for `new_app` targeting `env`'s device, with the
// payload digest computed from a throwaway golden model of the new design
// (exactly what an OTA stager does before shipping the artifact).
UpdateManifest make_manifest(const attacks::AttackEnv& env,
                             const bitstream::DesignSpec& new_app,
                             std::uint64_t version) {
  attacks::AttackEnv staged = env;
  staged.app_spec = new_app;
  const core::SachaVerifier v = staged.make_verifier();
  UpdateManifest manifest;
  manifest.version = version;
  manifest.device_type = v.floorplan().device().name();
  manifest.app = new_app;
  manifest.payload = payload_digest(*v.golden_model());
  manifest.payload_bytes = payload_frame_bytes(*v.golden_model());
  return manifest;
}

SignedManifest must_sign(const UpdateManifest& manifest,
                         crypto::HashSigner& signer) {
  auto signed_manifest = sign_manifest(manifest, signer);
  EXPECT_TRUE(signed_manifest.ok()) << signed_manifest.message();
  return std::move(signed_manifest).take();
}

// ---- Manifests -----------------------------------------------------------

TEST(Manifest, SignVerifyAndWireRoundTrip) {
  attacks::AttackEnv env = attacks::AttackEnv::small(900);
  const UpdateManifest manifest =
      make_manifest(env, {"intended-app-v2", 2}, 7);
  crypto::HashSigner signer(42, 3);
  const SignedManifest sm = must_sign(manifest, signer);

  core::LeafPolicy policy;
  const ManifestCheck check =
      verify_manifest(sm, signer.root(), policy, manifest.device_type);
  EXPECT_TRUE(check.ok()) << check.detail;

  const auto decoded = SignedManifest::decode(sm.encode());
  ASSERT_TRUE(decoded.ok()) << decoded.message();
  EXPECT_EQ(decoded.value().manifest, manifest);
  EXPECT_EQ(decoded.value().signature.leaf_index, sm.signature.leaf_index);
}

TEST(Manifest, DecodeRejectsTruncation) {
  attacks::AttackEnv env = attacks::AttackEnv::small(901);
  crypto::HashSigner signer(43, 2);
  const SignedManifest sm =
      must_sign(make_manifest(env, {"intended-app-v2", 2}, 1), signer);
  Bytes wire = sm.encode();
  for (std::size_t cut : {std::size_t{0}, std::size_t{3}, wire.size() / 2,
                          wire.size() - 1}) {
    const auto decoded = SignedManifest::decode(
        ByteSpan(wire.data(), cut));
    EXPECT_FALSE(decoded.ok()) << "cut=" << cut;
  }
}

TEST(Manifest, TamperedFieldBreaksSignatureWithoutBurningLeaf) {
  attacks::AttackEnv env = attacks::AttackEnv::small(902);
  crypto::HashSigner signer(44, 2);
  SignedManifest sm =
      must_sign(make_manifest(env, {"intended-app-v2", 2}, 3), signer);
  sm.manifest.version = 99;  // rollback/forward forgery

  core::LeafPolicy policy;
  const ManifestCheck bad =
      verify_manifest(sm, signer.root(), policy, sm.manifest.device_type);
  EXPECT_FALSE(bad.ok());
  EXPECT_FALSE(bad.signature_ok);
  // The failed forgery must not consume the honest leaf.
  EXPECT_EQ(policy.used(), 0u);
  sm.manifest.version = 3;
  EXPECT_TRUE(verify_manifest(sm, signer.root(), policy,
                              sm.manifest.device_type)
                  .ok());
}

TEST(Manifest, LeafReuseIsRejected) {
  attacks::AttackEnv env = attacks::AttackEnv::small(903);
  crypto::HashSigner signer(45, 2);
  const SignedManifest sm =
      must_sign(make_manifest(env, {"intended-app-v2", 2}, 4), signer);
  core::LeafPolicy policy;
  EXPECT_TRUE(
      verify_manifest(sm, signer.root(), policy, sm.manifest.device_type)
          .ok());
  const ManifestCheck replay =
      verify_manifest(sm, signer.root(), policy, sm.manifest.device_type);
  EXPECT_TRUE(replay.signature_ok);
  EXPECT_FALSE(replay.leaf_fresh);
  EXPECT_FALSE(replay.ok());
}

TEST(Manifest, WrongDeviceTypeRefused) {
  attacks::AttackEnv env = attacks::AttackEnv::small(904);
  crypto::HashSigner signer(46, 2);
  const SignedManifest sm =
      must_sign(make_manifest(env, {"intended-app-v2", 2}, 5), signer);
  core::LeafPolicy policy;
  const ManifestCheck check =
      verify_manifest(sm, signer.root(), policy, "xc7a100t");
  EXPECT_TRUE(check.signature_ok);
  EXPECT_FALSE(check.device_ok);
  EXPECT_FALSE(check.ok());
}

TEST(Manifest, ParsesCliSpec) {
  const auto parsed = UpdateManifest::parse("version=12;app=newdsp:9;device=t");
  ASSERT_TRUE(parsed.ok()) << parsed.message();
  EXPECT_EQ(parsed.value().version, 12u);
  EXPECT_EQ(parsed.value().app.name, "newdsp");
  EXPECT_EQ(parsed.value().app.seed, 9u);
  EXPECT_EQ(parsed.value().device_type, "t");
  EXPECT_FALSE(UpdateManifest::parse("app=x").ok());     // version required
  EXPECT_FALSE(UpdateManifest::parse("version=1").ok()); // app required
}

// ---- UpdateGate ----------------------------------------------------------

ManifestCheck ok_check() {
  ManifestCheck check;
  check.signature_ok = check.leaf_fresh = check.device_ok = check.version_ok =
      true;
  check.detail = "ok";
  return check;
}

TEST(UpdateGate, HappyPathCommitsWithBothAttestations) {
  UpdateGate gate;
  ASSERT_TRUE(gate.stage(ok_check(), 2).ok());
  ASSERT_TRUE(gate.begin_pre_attest().ok());
  ASSERT_TRUE(gate.on_pre_attest(true, FailureKind::kNone).ok());
  ASSERT_TRUE(gate.on_activation(true, FailureKind::kNone).ok());
  ASSERT_TRUE(gate.on_post_attest(true, FailureKind::kNone).ok());
  EXPECT_EQ(gate.state(), UpdateState::kCommitted);
  EXPECT_TRUE(gate.pre_attested());
  EXPECT_TRUE(gate.post_attested());
  EXPECT_TRUE(gate.commit_invariant_ok());
  EXPECT_EQ(gate.describe_trail(),
            "Idle -> Staged -> PreAttest -> Activating -> PostAttest -> "
            "Committed");
}

TEST(UpdateGate, RefusesUnverifiedManifest) {
  UpdateGate gate;
  ManifestCheck bad = ok_check();
  bad.signature_ok = false;
  EXPECT_FALSE(gate.stage(bad, 2).ok());
  EXPECT_EQ(gate.state(), UpdateState::kIdle);
}

TEST(UpdateGate, FailuresRollBackAndKeepFirstCause) {
  UpdateGate gate;
  ASSERT_TRUE(gate.stage(ok_check(), 2).ok());
  ASSERT_TRUE(gate.begin_pre_attest().ok());
  ASSERT_TRUE(gate.on_pre_attest(true, FailureKind::kNone).ok());
  ASSERT_TRUE(
      gate.on_activation(false, FailureKind::kTimeoutExhausted).ok());
  EXPECT_EQ(gate.state(), UpdateState::kRolledBack);
  EXPECT_TRUE(gate.terminal());
  EXPECT_EQ(gate.failure(), FailureKind::kTimeoutExhausted);
  // Rollback recovery annotates but never resurrects the gate.
  ASSERT_TRUE(gate.on_rollback_attest(true, FailureKind::kNone).ok());
  EXPECT_TRUE(gate.old_image_attested());
  EXPECT_EQ(gate.state(), UpdateState::kRolledBack);
  EXPECT_FALSE(gate.on_post_attest(true, FailureKind::kNone).ok());
}

TEST(UpdateGate, OutOfOrderEventsRefused) {
  UpdateGate gate;
  EXPECT_FALSE(gate.begin_pre_attest().ok());
  EXPECT_FALSE(gate.on_pre_attest(true, FailureKind::kNone).ok());
  EXPECT_FALSE(gate.on_activation(true, FailureKind::kNone).ok());
  EXPECT_FALSE(gate.on_post_attest(true, FailureKind::kNone).ok());
  EXPECT_FALSE(gate.on_rollback_attest(true, FailureKind::kNone).ok());
  EXPECT_EQ(gate.state(), UpdateState::kIdle);
}

// ---- run_update ----------------------------------------------------------

struct UpdateRig {
  explicit UpdateRig(std::uint64_t seed)
      : env(attacks::AttackEnv::small(seed)),
        verifier(env.make_verifier()),
        prover(env.make_prover()),
        signer(seed ^ 0x5157, 3),
        manifest(must_sign(make_manifest(env, {"intended-app-v2", 2}, 2),
                           signer)) {}

  attacks::AttackEnv env;
  core::SachaVerifier verifier;
  core::SachaProver prover;
  crypto::HashSigner signer;
  SignedManifest manifest;
  core::LeafPolicy policy;
};

// A committed update must leave a verifiable device behind: a fresh full
// session against the new golden model passes.
void verifier_holds_new_image(UpdateRig& rig) {
  const auto after = core::run_attestation(rig.verifier, rig.prover);
  EXPECT_TRUE(after.verdict.ok()) << after.verdict.detail;
}

TEST(RunUpdate, CommitsOnlyAfterBothAttestations) {
  UpdateRig rig(910);
  const UpdateReport report =
      run_update(rig.verifier, rig.prover, rig.manifest, rig.signer.root(),
                 rig.policy);
  EXPECT_TRUE(report.committed()) << report.detail;
  EXPECT_TRUE(report.manifest_ok);
  EXPECT_TRUE(report.pre_attested);
  EXPECT_TRUE(report.post_attested);
  EXPECT_TRUE(report.invariant_ok);
  ASSERT_EQ(report.phases.size(), 3u);
  EXPECT_EQ(report.phases[0].phase, phases::kPre);
  EXPECT_EQ(report.phases[1].phase, phases::kActivate);
  EXPECT_EQ(report.phases[2].phase, phases::kPost);
  // The device now runs (and the verifier attests) the new design.
  EXPECT_EQ(rig.verifier.app_spec().name, "intended-app-v2");
  verifier_holds_new_image(rig);
}

TEST(RunUpdate, PreAttestFailureAbortsBeforeTouchingDevice) {
  UpdateRig rig(911);
  // A cloned board that never enrolled: MAC mismatch on the pre-attest.
  core::SachaProver clone = rig.env.make_prover(/*genuine_key=*/false);
  const UpdateReport report = run_update(
      rig.verifier, clone, rig.manifest, rig.signer.root(), rig.policy);
  EXPECT_EQ(report.final_state, UpdateState::kRolledBack);
  EXPECT_FALSE(report.pre_attested);
  EXPECT_EQ(report.failure, FailureKind::kMacMismatch);
  // Nothing was staged onto the device; the verifier still holds the old
  // app and no rollback session ran.
  EXPECT_EQ(rig.verifier.app_spec().name, "intended-app-v1");
  ASSERT_EQ(report.phases.size(), 1u);
  EXPECT_EQ(report.phases[0].phase, phases::kPre);
}

TEST(RunUpdate, RejectedManifestNeverReachesTheDevice) {
  UpdateRig rig(912);
  SignedManifest forged = rig.manifest;
  forged.manifest.version = 77;
  const UpdateReport report = run_update(
      rig.verifier, rig.prover, forged, rig.signer.root(), rig.policy);
  EXPECT_EQ(report.final_state, UpdateState::kIdle);
  EXPECT_FALSE(report.manifest_ok);
  EXPECT_TRUE(report.phases.empty());
}

TEST(RunUpdate, CrashMidActivationRecoversOldImageAttested) {
  UpdateRig rig(913);
  std::deque<fault::FaultInjector> injectors;
  UpdateRunOptions options;
  options.attest_retry_budget = 0;  // one shot per phase: the crash lands
  options.configure = [&](core::SessionOptions& session,
                          core::SessionHooks& hooks, std::string_view phase,
                          std::uint32_t) {
    if (phase != phases::kActivate) return;
    auto plan = fault::FaultPlan::parse("crash=5:3");
    ASSERT_TRUE(plan.ok());
    injectors.emplace_back(std::move(plan).take(), 913);
    injectors.back().arm(session, hooks);
  };
  const UpdateReport report =
      run_update(rig.verifier, rig.prover, rig.manifest, rig.signer.root(),
                 rig.policy, options);
  EXPECT_EQ(report.final_state, UpdateState::kRolledBack);
  // Depending on when the reboot lands the session dies as a timeout or —
  // when readback resumes against the BootMem-only image — as a masked
  // compare mismatch. Either way the gate must have rolled back.
  EXPECT_NE(report.failure, FailureKind::kNone);
  // The crash-during-activation rule: the device rebooted from BootMem
  // onto the old static image, and the rollback session reinstalled and
  // re-attested the old application.
  EXPECT_TRUE(report.old_image_attested);
  EXPECT_EQ(rig.verifier.app_spec().name, "intended-app-v1");
  EXPECT_EQ(report.phases.back().phase, phases::kRollback);
  EXPECT_TRUE(report.phases.back().report.verdict.ok());
  const auto after = core::run_attestation(rig.verifier, rig.prover);
  EXPECT_TRUE(after.verdict.ok()) << after.verdict.detail;
}

TEST(RunUpdate, PostAttestTamperRollsBack) {
  UpdateRig rig(914);
  UpdateRunOptions options;
  options.configure = [&](core::SessionOptions&, core::SessionHooks& hooks,
                          std::string_view phase, std::uint32_t) {
    if (phase != phases::kPost) return;
    // Adversary strikes an application frame in the post-attest tamper
    // window; the rollback reinstall heals it.
    hooks.after_config = [](core::SachaProver& prover) {
      bitstream::Frame f = prover.memory().config_frame(5);
      f.flip_bit(9);
      prover.memory().write_frame_preserving_registers(5, f);
    };
  };
  const UpdateReport report =
      run_update(rig.verifier, rig.prover, rig.manifest, rig.signer.root(),
                 rig.policy, options);
  EXPECT_EQ(report.final_state, UpdateState::kRolledBack);
  EXPECT_EQ(report.failure, FailureKind::kMaskedCompareMismatch);
  EXPECT_TRUE(report.pre_attested);
  EXPECT_FALSE(report.post_attested);
  EXPECT_TRUE(report.old_image_attested);
  EXPECT_EQ(rig.verifier.app_spec().name, "intended-app-v1");
}

TEST(RunUpdate, StagedPayloadMismatchRefusedBeforeActivation) {
  UpdateRig rig(915);
  // Manifest signs a DIFFERENT artifact than what the stager would build
  // for the named design (supply-chain swap): signature is honest, the
  // staged golden payload is not what was signed.
  UpdateManifest wrong = make_manifest(rig.env, {"intended-app-v2", 2}, 2);
  wrong.payload[0] ^= 0xff;
  crypto::HashSigner signer(1234, 2);
  const SignedManifest sm = must_sign(wrong, signer);
  core::LeafPolicy policy;
  const UpdateReport report = run_update(rig.verifier, rig.prover, sm,
                                         signer.root(), policy);
  EXPECT_EQ(report.final_state, UpdateState::kRolledBack);
  EXPECT_EQ(report.failure, FailureKind::kDecodeError);
  EXPECT_TRUE(report.old_image_attested);
  // Refused before any activation frame: pre-attest is the only session.
  ASSERT_EQ(report.phases.size(), 1u);
  EXPECT_EQ(rig.verifier.app_spec().name, "intended-app-v1");
}

TEST(RunUpdate, TransportLossRetriesWithFreshSessionsAndCommits) {
  UpdateRig rig(916);
  std::deque<fault::FaultInjector> injectors;
  int armed = 0;
  UpdateRunOptions options;
  options.attest_retry_budget = 3;
  // Reliable transport turns the stalled device into timeout exhaustion —
  // a typed transport failure the phase is allowed to retry.
  options.session.reliable = true;
  options.session.max_retries = 2;
  options.configure = [&](core::SessionOptions& session,
                          core::SessionHooks& hooks, std::string_view phase,
                          std::uint32_t attempt) {
    // Stall the device only on the first activation attempt; the retry
    // runs a complete fresh-nonce session on a clean transport.
    if (phase != phases::kActivate || attempt != 0) return;
    ++armed;
    auto plan = fault::FaultPlan::parse("stall=4:6");
    ASSERT_TRUE(plan.ok());
    injectors.emplace_back(std::move(plan).take(), 916);
    injectors.back().arm(session, hooks);
  };
  const UpdateReport report =
      run_update(rig.verifier, rig.prover, rig.manifest, rig.signer.root(),
                 rig.policy, options);
  EXPECT_EQ(armed, 1);
  EXPECT_TRUE(report.committed()) << report.detail;
  ASSERT_EQ(report.phases.size(), 3u);
  EXPECT_GE(report.phases[1].attempts, 2u);
}

// The bench fault matrix in miniature: random transport/device faults on
// random phases must never produce a commit without both attestations, and
// the device must end on exactly the image the final state claims.
TEST(RunUpdate, CommitInvariantHoldsUnderRandomizedFaults) {
  const char* kPlans[] = {"burst=0.3:0.3:1", "crash=3:4", "stall=2:8",
                          "seu=2", "corrupt=0.3"};
  const std::string_view kPhases[] = {phases::kPre, phases::kActivate,
                                      phases::kPost};
  for (std::uint64_t seed = 0; seed < 24; ++seed) {
    Rng rng(derive_seed(4242, "update.matrix", seed));
    const char* plan_text = kPlans[rng.next_u64() % 5];
    const std::string_view phase = kPhases[rng.next_u64() % 3];
    UpdateRig rig(920 + seed);
    std::deque<fault::FaultInjector> injectors;
    UpdateRunOptions options;
    options.attest_retry_budget = rng.next_u64() % 2;
    options.configure = [&](core::SessionOptions& session,
                            core::SessionHooks& hooks,
                            std::string_view current, std::uint32_t) {
      if (current != phase) return;
      auto plan = fault::FaultPlan::parse(plan_text);
      ASSERT_TRUE(plan.ok());
      injectors.emplace_back(std::move(plan).take(), seed);
      injectors.back().arm(session, hooks);
    };
    const UpdateReport report =
        run_update(rig.verifier, rig.prover, rig.manifest, rig.signer.root(),
                   rig.policy, options);
    EXPECT_TRUE(report.invariant_ok) << "seed " << seed;
    if (report.committed()) {
      EXPECT_TRUE(report.pre_attested && report.post_attested)
          << "seed " << seed;
      EXPECT_EQ(rig.verifier.app_spec().name, "intended-app-v2");
    } else {
      EXPECT_NE(report.failure, FailureKind::kNone) << "seed " << seed;
      EXPECT_EQ(rig.verifier.app_spec().name, "intended-app-v1")
          << "seed " << seed << " state "
          << to_string(report.final_state);
    }
  }
}

// ---- Probe sessions ------------------------------------------------------

TEST(Probe, SamplesAFractionAndStillRollsTheNonce) {
  attacks::AttackEnv env = attacks::AttackEnv::small(930);
  auto verifier = env.make_verifier();
  auto prover = env.make_prover();
  ASSERT_TRUE(core::run_attestation(verifier, prover).verdict.ok());

  verifier.set_refresh_only(true);
  verifier.set_probe_coverage(0.25);
  EXPECT_TRUE(verifier.probe_session());
  const auto probe = core::run_attestation(verifier, prover);
  EXPECT_TRUE(probe.verdict.ok()) << probe.verdict.detail;
  // One nonce config, and a readback strictly smaller than the 16-frame
  // full sweep.
  EXPECT_EQ(probe.ledger.count(core::actions::kA1), 1u);
  EXPECT_LT(probe.ledger.count(core::actions::kA3), 16u);
  EXPECT_GE(probe.ledger.count(core::actions::kA3), 4u);
}

TEST(Probe, CoverageSetterIgnoredForFullSessions) {
  attacks::AttackEnv env = attacks::AttackEnv::small(931);
  auto verifier = env.make_verifier();
  auto prover = env.make_prover();
  verifier.set_probe_coverage(0.1);
  EXPECT_FALSE(verifier.probe_session());  // full sessions never sample
  const auto report = core::run_attestation(verifier, prover);
  EXPECT_TRUE(report.verdict.ok());
  EXPECT_EQ(report.ledger.count(core::actions::kA3), 16u);
}

// The satellite property: a probe can never CLEAR a member whose tamper
// lies outside the probed sample. Either the probe itself fails, or a full
// fresh-nonce refresh catches what the probe missed — for every seed, no
// tampered device survives probe + full. (Seeds where the probe passes but
// the full session rejects are the soundness gap that makes escalation,
// not probe-clearance, mandatory.)
TEST(Probe, CannotClearTamperOutsideTheSample) {
  int probe_blind = 0;
  for (std::uint64_t seed = 0; seed < 32; ++seed) {
    attacks::AttackEnv env = attacks::AttackEnv::small(940 + seed);
    auto verifier = env.make_verifier();
    auto prover = env.make_prover();
    ASSERT_TRUE(core::run_attestation(verifier, prover).verdict.ok());

    // Adversary flips one bit in one app frame between sessions.
    Rng rng(derive_seed(seed, "probe.tamper", 0));
    const std::uint32_t frame = 4 + (rng.next_u64() % 8);
    bitstream::Frame f = prover.memory().config_frame(frame);
    f.flip_bit(static_cast<std::uint32_t>(rng.next_u64() % 64));
    prover.memory().write_frame_preserving_registers(frame, f);

    verifier.set_refresh_only(true);
    verifier.set_probe_coverage(0.2);
    const auto probe = core::run_attestation(verifier, prover);

    verifier.set_probe_coverage(1.0);  // escalation: full refresh sweep
    const auto full = core::run_attestation(verifier, prover);
    EXPECT_FALSE(full.verdict.ok())
        << "seed " << seed << ": full refresh missed the tamper";
    if (probe.verdict.ok()) ++probe_blind;
  }
  // The gap is real: some probes sampled around the tamper and passed.
  EXPECT_GT(probe_blind, 0);
  EXPECT_LT(probe_blind, 32);
}

// ---- EpochScheduler ------------------------------------------------------

struct EpochFleet {
  explicit EpochFleet(std::size_t n, std::uint64_t base_seed) {
    for (std::size_t i = 0; i < n; ++i) {
      envs.push_back(attacks::AttackEnv::small(base_seed + i));
      verifiers.push_back(envs.back().make_verifier());
      provers.push_back(envs.back().make_prover());
    }
    for (std::size_t i = 0; i < n; ++i) {
      // Members enter the scheduler provisioned: one full attestation.
      EXPECT_TRUE(
          core::run_attestation(verifiers[i], provers[i]).verdict.ok());
      members.push_back(EpochMember{"node-" + std::to_string(i),
                                    &verifiers[i], &provers[i], {}});
    }
  }
  std::deque<attacks::AttackEnv> envs;
  std::deque<core::SachaVerifier> verifiers;
  std::deque<core::SachaProver> provers;
  std::vector<EpochMember> members;
};

TEST(EpochScheduler, BudgetedFullsKeepTheFleetInsideTheWindow) {
  EpochFleet fleet(8, 1000);
  EpochOptions options;
  options.schedule = core::SwarmSchedule::kSerial;
  options.probe_coverage = 0.25;
  options.freshness_window = 3;
  options.full_budget_fraction = 0.5;
  EpochScheduler scheduler(fleet.members, options);
  for (int t = 0; t < 8; ++t) {
    const EpochTickReport report = scheduler.tick();
    EXPECT_EQ(report.quarantined, 0u);
    EXPECT_LE(report.oldest_age_epochs, options.freshness_window);
    EXPECT_TRUE(report.slo_met);
    EXPECT_EQ(report.fresh, 8u);
  }
  // Probes carried the epochs between budgeted fulls.
  std::uint64_t probes = 0, fulls = 0;
  for (const EpochMemberState& m : scheduler.members()) {
    probes += m.probes;
    fulls += m.full_attests;
    EXPECT_EQ(m.health, Freshness::kFresh);
  }
  EXPECT_GT(probes, 0u);
  EXPECT_GT(fulls, 0u);
}

TEST(EpochScheduler, ProbeMismatchEscalatesToFullAndHeals) {
  EpochFleet fleet(4, 1100);
  // Tamper every app frame of member 2 so any probe sample hits it.
  for (std::uint32_t frame = 4; frame < 12; ++frame) {
    bitstream::Frame f = fleet.provers[2].memory().config_frame(frame);
    f.flip_bit(17);
    fleet.provers[2].memory().write_frame_preserving_registers(frame, f);
  }
  EpochOptions options;
  options.schedule = core::SwarmSchedule::kSerial;
  options.probe_coverage = 0.5;
  options.freshness_window = 10;  // keep budgeted fulls out of the way
  EpochScheduler scheduler(fleet.members, options);
  const EpochTickReport report = scheduler.tick();
  EXPECT_EQ(report.escalated, 1u);
  EXPECT_EQ(report.healed, 1u);  // full session reinstalls the app
  EXPECT_EQ(report.quarantined, 0u);
  const EpochMemberState& m = scheduler.members()[2];
  EXPECT_EQ(m.health, Freshness::kFresh);
  EXPECT_EQ(m.probe_failures, 1u);
  EXPECT_EQ(m.escalations, 1u);
  EXPECT_EQ(m.last_full_epoch, 1u);
  // The heal is real: the tampered frames were reconfigured.
  const auto after =
      core::run_attestation(fleet.verifiers[2], fleet.provers[2]);
  EXPECT_TRUE(after.verdict.ok()) << after.verdict.detail;
}

TEST(EpochScheduler, ProbePassNeverRefreshesFullAttestationAge) {
  EpochFleet fleet(2, 1200);
  EpochOptions options;
  options.schedule = core::SwarmSchedule::kSerial;
  options.probe_coverage = 0.25;
  options.freshness_window = 100;  // no budgeted fulls, probes only
  EpochScheduler scheduler(fleet.members, options);
  for (int t = 0; t < 5; ++t) scheduler.tick();
  for (const EpochMemberState& m : scheduler.members()) {
    EXPECT_GE(m.probes, 5u);
    // Probe passes alone: the last full attestation is still the
    // provisioning one.
    EXPECT_EQ(m.last_full_epoch, 0u);
    EXPECT_EQ(m.full_attests, 0u);
  }
}

TEST(EpochScheduler, UnattestableMemberIsQuarantinedNotRetriedForever) {
  EpochFleet fleet(3, 1300);
  // Member 1 is a clone that never enrolled: every session MAC-fails.
  fleet.provers.push_back(fleet.envs[1].make_prover(/*genuine_key=*/false));
  fleet.members[1].prover = &fleet.provers.back();
  EpochOptions options;
  options.schedule = core::SwarmSchedule::kSerial;
  options.probe_coverage = 0.5;
  options.freshness_window = 10;
  EpochScheduler scheduler(fleet.members, options);
  const EpochTickReport first = scheduler.tick();
  EXPECT_EQ(first.escalated, 1u);
  EXPECT_EQ(first.newly_quarantined, 1u);
  EXPECT_EQ(scheduler.members()[1].health, Freshness::kQuarantined);
  EXPECT_EQ(scheduler.members()[1].last_failure, FailureKind::kMacMismatch);
  const std::uint64_t probes_before = scheduler.members()[1].probes;
  const EpochTickReport second = scheduler.tick();
  EXPECT_EQ(scheduler.members()[1].probes, probes_before);
  EXPECT_EQ(second.quarantined, 1u);
  EXPECT_FALSE(second.slo_met);  // 1 of 3 permanently out of budget
}

TEST(EpochScheduler, RollingUpdateWaveCommitsWholeFleet) {
  EpochFleet fleet(6, 1400);
  EpochOptions options;
  options.schedule = core::SwarmSchedule::kSerial;
  options.update_wave = 2;
  EpochScheduler scheduler(fleet.members, options);

  crypto::HashSigner signer(77, 3);
  const SignedManifest sm = must_sign(
      make_manifest(fleet.envs[0], {"intended-app-v2", 2}, 2), signer);
  ASSERT_TRUE(scheduler.stage_update(sm, signer.root()).ok());
  EXPECT_FALSE(scheduler.update_complete());

  int ticks = 0;
  while (!scheduler.update_complete() && ticks < 10) {
    const EpochTickReport report = scheduler.tick();
    EXPECT_LE(report.updates_run, options.update_wave);
    ++ticks;
  }
  EXPECT_TRUE(scheduler.update_complete());
  EXPECT_EQ(ticks, 3);  // 6 members / wave of 2
  for (const EpochMemberState& m : scheduler.members()) {
    EXPECT_TRUE(m.update_committed) << m.id;
    EXPECT_EQ(m.health, Freshness::kFresh);
  }
  for (const UpdateReport& report : scheduler.update_reports()) {
    EXPECT_TRUE(report.committed());
    EXPECT_TRUE(report.pre_attested && report.post_attested);
    EXPECT_TRUE(report.invariant_ok);
  }
  for (std::size_t i = 0; i < fleet.verifiers.size(); ++i) {
    EXPECT_EQ(fleet.verifiers[i].app_spec().name, "intended-app-v2");
  }
}

TEST(EpochScheduler, StageRefusesBadRootAndLeafReuse) {
  EpochFleet fleet(2, 1500);
  EpochScheduler scheduler(fleet.members, EpochOptions{});
  crypto::HashSigner signer(78, 2);
  const SignedManifest sm = must_sign(
      make_manifest(fleet.envs[0], {"intended-app-v2", 2}, 2), signer);
  crypto::Sha256Digest wrong_root{};
  EXPECT_FALSE(scheduler.stage_update(sm, wrong_root).ok());
  ASSERT_TRUE(scheduler.stage_update(sm, signer.root()).ok());
  // The coordinator's leaf policy refuses a re-staged (replayed) manifest.
  EXPECT_FALSE(scheduler.stage_update(sm, signer.root()).ok());
}

// ---- Freshness SLO plumbing ---------------------------------------------

TEST(SloTracker, PrefixSeparatesTrackers) {
  const bool was_enabled = obs::enabled();
  obs::set_enabled(true);
  obs::SloTracker::Options options;
  options.metric_prefix = "sacha.test.updslo";
  options.latency_objective_ns = 0;
  obs::SloTracker tracker(options);
  tracker.record(0, true);
  tracker.record(0, false);
  EXPECT_EQ(tracker.total(), 2u);
  EXPECT_EQ(tracker.good(), 1u);
  EXPECT_EQ(obs::MetricsRegistry::global()
                .gauge("sacha.test.updslo.sessions_total")
                .value(),
            2);
  obs::set_enabled(was_enabled);
}

}  // namespace
}  // namespace sacha::update
