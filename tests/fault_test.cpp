// Fault-tolerance tests: the fault-injection harness, the typed failure
// taxonomy, and the self-healing swarm supervisor.
#include <gtest/gtest.h>

#include <deque>
#include <set>

#include "attacks/env.hpp"
#include "common/rng.hpp"
#include "core/swarm.hpp"
#include "fault/injector.hpp"

namespace sacha {
namespace {

using core::FailureKind;

// ---- Seed derivation (the swarm's per-member streams) --------------------

TEST(DeriveSeed, AdjacentFleetSeedsDoNotCollideAcrossMembers) {
  // The old `seed + index` scheme made fleet seed s, member i+1 reuse the
  // stream of fleet seed s+1, member i. The hash must not.
  EXPECT_NE(derive_seed(1, "node-1", 0), derive_seed(2, "node-0", 0));
  EXPECT_NE(derive_seed(1, "node-0", 0), derive_seed(1, "node-1", 0));
  EXPECT_NE(derive_seed(1, "node-0", 0), derive_seed(1, "node-0", 1));
  EXPECT_EQ(derive_seed(7, "node-3", 2), derive_seed(7, "node-3", 2));
}

TEST(DeriveSeed, SpreadsAcrossMembersAndAttempts) {
  std::set<std::uint64_t> seen;
  for (std::uint64_t seed : {1u, 2u, 3u}) {
    for (int m = 0; m < 8; ++m) {
      for (std::uint64_t attempt = 0; attempt < 3; ++attempt) {
        seen.insert(derive_seed(seed, "node-" + std::to_string(m), attempt));
      }
    }
  }
  EXPECT_EQ(seen.size(), 3u * 8u * 3u);
}

// ---- Fault plans ---------------------------------------------------------

TEST(FaultPlan, ParsesFullSpecAndRoundTrips) {
  const auto parsed = fault::FaultPlan::parse(
      "burst=0.05:0.4:1;corrupt=0.1;crash=12:3;stall=4:2;spike=0.2:500;seu=2");
  ASSERT_TRUE(parsed.ok()) << parsed.message();
  const fault::FaultPlan& plan = parsed.value();
  EXPECT_TRUE(plan.burst.enabled());
  EXPECT_DOUBLE_EQ(plan.burst.p_good_to_bad, 0.05);
  EXPECT_DOUBLE_EQ(plan.corrupt_probability, 0.1);
  ASSERT_TRUE(plan.crash.has_value());
  EXPECT_EQ(plan.crash->at_command, 12u);
  EXPECT_EQ(plan.crash->reboot_after, 3u);
  ASSERT_TRUE(plan.stall.has_value());
  EXPECT_EQ(plan.stall->packets, 2u);
  EXPECT_EQ(plan.spike_max, 500 * sim::kMicrosecond);
  EXPECT_EQ(plan.seu_flips, 2u);

  const auto again = fault::FaultPlan::parse(plan.describe());
  ASSERT_TRUE(again.ok()) << again.message();
  EXPECT_EQ(again.value().describe(), plan.describe());
}

TEST(FaultPlan, EmptySpecIsEmptyPlan) {
  const auto parsed = fault::FaultPlan::parse("");
  ASSERT_TRUE(parsed.ok());
  EXPECT_TRUE(parsed.value().empty());
  EXPECT_EQ(parsed.value().describe(), "none");
}

TEST(FaultPlan, RejectsMalformedSpecs) {
  EXPECT_FALSE(fault::FaultPlan::parse("bogus=1").ok());
  EXPECT_FALSE(fault::FaultPlan::parse("corrupt=1.5").ok());
  EXPECT_FALSE(fault::FaultPlan::parse("burst=0.1:0.2").ok());
  EXPECT_FALSE(fault::FaultPlan::parse("burst=0.1:0:1").ok());  // no exit
  EXPECT_FALSE(fault::FaultPlan::parse("stall=3:0").ok());
  EXPECT_FALSE(fault::FaultPlan::parse("crash").ok());
  EXPECT_FALSE(fault::FaultPlan::parse("seu=x").ok());
}

TEST(FaultPlan, ParsesUplinkClauseAndRoundTrips) {
  const auto parsed = fault::FaultPlan::parse("uplink=7:0.05:0.5:1");
  ASSERT_TRUE(parsed.ok()) << parsed.message();
  const fault::FaultPlan& plan = parsed.value();
  ASSERT_TRUE(plan.uplink.has_value());
  EXPECT_EQ(plan.uplink->group, 7u);
  EXPECT_DOUBLE_EQ(plan.uplink->burst.p_good_to_bad, 0.05);
  EXPECT_DOUBLE_EQ(plan.uplink->burst.p_bad_to_good, 0.5);
  EXPECT_DOUBLE_EQ(plan.uplink->burst.loss_bad, 1.0);

  const auto again = fault::FaultPlan::parse(plan.describe());
  ASSERT_TRUE(again.ok()) << again.message();
  EXPECT_EQ(again.value().describe(), plan.describe());

  EXPECT_FALSE(fault::FaultPlan::parse("uplink=7:0.05").ok());
  EXPECT_FALSE(fault::FaultPlan::parse("uplink=7:0.1:0:1").ok());  // no exit
  EXPECT_FALSE(fault::FaultPlan::parse("uplink=x:0.1:0.5:1").ok());
}

TEST(FaultPlan, UplinkGroupsShareOneChainUntilReset) {
  fault::reset_uplink_bursts();
  const auto plan_a = fault::FaultPlan::parse("uplink=3:0.05:0.5:1");
  const auto plan_other = fault::FaultPlan::parse("uplink=4:0.05:0.5:1");
  ASSERT_TRUE(plan_a.ok() && plan_other.ok());

  core::SessionOptions first, second, third;
  core::SessionHooks hooks;
  fault::FaultInjector member_one(plan_a.value(), 1);
  fault::FaultInjector member_two(plan_a.value(), 2);
  fault::FaultInjector neighbour(plan_other.value(), 3);
  member_one.arm(first, hooks);
  member_two.arm(second, hooks);
  neighbour.arm(third, hooks);

  // Same group id, different members and seeds: one shared chain. A
  // different group gets its own.
  ASSERT_NE(first.channel.shared_burst, nullptr);
  EXPECT_EQ(first.channel.shared_burst, second.channel.shared_burst);
  EXPECT_NE(first.channel.shared_burst, third.channel.shared_burst);

  // Reset drops the registry: the next arm builds a fresh chain.
  fault::reset_uplink_bursts();
  core::SessionOptions after;
  fault::FaultInjector member_three(plan_a.value(), 4);
  member_three.arm(after, hooks);
  EXPECT_NE(after.channel.shared_burst, first.channel.shared_burst);
  fault::reset_uplink_bursts();
}

TEST(FaultPlan, SharedBurstChainDropsAndCountsAcrossHolders) {
  // Deterministic chain: enters the bad state on the first message and
  // never leaves; everything in the bad state is lost.
  net::SharedBurstState chain({1.0, 0.0, 0.0, 1.0}, 99);
  for (int i = 0; i < 10; ++i) EXPECT_TRUE(chain.drop_message());
  EXPECT_EQ(chain.messages(), 10u);
  EXPECT_EQ(chain.losses(), 10u);
  EXPECT_TRUE(chain.in_burst());

  // A chain that can never enter the bad state drops nothing.
  net::SharedBurstState clean({0.0, 1.0, 0.0, 1.0}, 99);
  for (int i = 0; i < 10; ++i) EXPECT_FALSE(clean.drop_message());
  EXPECT_EQ(clean.messages(), 10u);
  EXPECT_EQ(clean.losses(), 0u);
}

// ---- Gilbert–Elliott burst loss ------------------------------------------

TEST(BurstLoss, DropsInBurstsAndCountsThem) {
  net::ChannelParams params;
  params.burst = {0.2, 0.3, 0.0, 1.0};
  net::Channel channel(params, 99);
  std::uint64_t delivered = 0;
  for (int i = 0; i < 2000; ++i) {
    if (channel.transfer(64).has_value()) ++delivered;
  }
  EXPECT_GT(channel.burst_losses(), 0u);
  EXPECT_EQ(channel.messages_lost(), channel.burst_losses());
  // Stationary loss ~ 0.4; allow wide slack, just not degenerate.
  const double loss_rate = static_cast<double>(channel.messages_lost()) / 2000;
  EXPECT_GT(loss_rate, 0.2);
  EXPECT_LT(loss_rate, 0.6);
  EXPECT_NEAR(params.burst.mean_loss(), 0.4, 1e-9);
}

TEST(BurstLoss, DisabledBurstIsBitIdenticalToPlainChannel) {
  // Same seed, same transfer sequence: a channel whose burst model is
  // disabled must produce the identical latency stream (no extra draws).
  net::ChannelParams plain;
  plain.jitter_max = 5'000;
  net::ChannelParams with_model = plain;
  with_model.burst = {};  // disabled
  net::Channel a(plain, 7);
  net::Channel b(with_model, 7);
  for (int i = 0; i < 500; ++i) {
    EXPECT_EQ(a.transfer(128), b.transfer(128)) << i;
  }
}

// ---- Device faults (prover crash / stall) --------------------------------

TEST(DeviceFaults, StalledDeviceRecoversViaRetransmission) {
  attacks::AttackEnv env = attacks::AttackEnv::small(11);
  auto verifier = env.make_verifier();
  auto prover = env.make_prover();
  env.session_options.reliable = true;
  core::SessionHooks hooks;
  hooks.before_command = [](std::size_t index, core::SachaProver& p) {
    if (index == 3) p.inject_stall(2);
  };
  const auto report =
      core::run_attestation(verifier, prover, env.session_options, hooks);
  EXPECT_TRUE(report.verdict.ok()) << report.verdict.detail;
  EXPECT_EQ(report.failure, FailureKind::kNone);
  EXPECT_GE(report.retransmissions, 2u);
  EXPECT_EQ(prover.fault_state().packets_dropped, 2u);
}

TEST(DeviceFaults, CrashLosesDynamicConfigurationUntilFreshSession) {
  attacks::AttackEnv env = attacks::AttackEnv::small(12);
  auto verifier = env.make_verifier();
  auto prover = env.make_prover();
  env.session_options.reliable = true;
  core::SessionHooks hooks;
  hooks.before_command = [](std::size_t index, core::SachaProver& p) {
    if (index == 5 && p.fault_state().reboots == 0) p.inject_crash(2);
  };
  const auto crashed =
      core::run_attestation(verifier, prover, env.session_options, hooks);
  // The rebooted device lost the frames configured before the crash: the
  // session completes over the wire but cannot attest.
  EXPECT_FALSE(crashed.verdict.ok());
  EXPECT_EQ(prover.fault_state().reboots, 1u);

  // A fresh full session (fresh nonce, full reconfiguration) heals it.
  const auto healed =
      core::run_attestation(verifier, prover, env.session_options);
  EXPECT_TRUE(healed.verdict.ok()) << healed.verdict.detail;
}

TEST(DeviceFaults, CrashWithoutRebootExhaustsRetries) {
  attacks::AttackEnv env = attacks::AttackEnv::small(13);
  auto verifier = env.make_verifier();
  auto prover = env.make_prover();
  env.session_options.reliable = true;
  env.session_options.max_retries = 2;
  core::SessionHooks hooks;
  hooks.before_command = [](std::size_t index, core::SachaProver& p) {
    if (index == 2) p.inject_crash(0);  // stays dead
  };
  const auto report =
      core::run_attestation(verifier, prover, env.session_options, hooks);
  EXPECT_FALSE(report.verdict.ok());
  EXPECT_EQ(report.failure, FailureKind::kTimeoutExhausted);
}

// ---- Typed failure classification ----------------------------------------

TEST(FailureTaxonomy, HonestSessionIsFailureFree) {
  attacks::AttackEnv env = attacks::AttackEnv::small(20);
  auto verifier = env.make_verifier();
  auto prover = env.make_prover();
  const auto report = core::run_attestation(verifier, prover, env.session_options);
  EXPECT_TRUE(report.verdict.ok());
  EXPECT_EQ(report.failure, FailureKind::kNone);
}

TEST(FailureTaxonomy, DeadlineExceededWinsOverLaterVerdict) {
  attacks::AttackEnv env = attacks::AttackEnv::small(21);
  auto verifier = env.make_verifier();
  auto prover = env.make_prover();
  env.session_options.channel.per_command_latency = 200 * sim::kMicrosecond;
  env.session_options.deadline = 2 * sim::kMillisecond;
  const auto report = core::run_attestation(verifier, prover, env.session_options);
  EXPECT_FALSE(report.verdict.ok());
  EXPECT_TRUE(report.deadline_hit);
  EXPECT_EQ(report.failure, FailureKind::kDeadlineExceeded);
  EXPECT_LE(report.total_time,
            env.session_options.deadline + 10 * sim::kMillisecond);
}

TEST(FailureTaxonomy, UndecodableResponseIsDecodeError) {
  attacks::AttackEnv env = attacks::AttackEnv::small(22);
  auto verifier = env.make_verifier();
  auto prover = env.make_prover();
  core::SessionHooks hooks;
  hooks.on_response = [](Bytes& reply) {
    reply[0] = 0xee;  // clobber the type tag: decode must fail
    return true;
  };
  const auto report =
      core::run_attestation(verifier, prover, env.session_options, hooks);
  EXPECT_FALSE(report.verdict.ok());
  EXPECT_EQ(report.failure, FailureKind::kDecodeError);
}

TEST(FailureTaxonomy, ProverErrorResponseIsDeviceError) {
  attacks::AttackEnv env = attacks::AttackEnv::small(23);
  auto verifier = env.make_verifier();
  auto prover = env.make_prover();
  core::SessionHooks hooks;
  hooks.on_command = [](Bytes& packet) {
    packet[0] = 0x7f;  // unknown command type: the device rejects it
    return true;
  };
  const auto report =
      core::run_attestation(verifier, prover, env.session_options, hooks);
  EXPECT_FALSE(report.verdict.ok());
  EXPECT_EQ(report.failure, FailureKind::kDeviceError);
}

TEST(FailureTaxonomy, TamperedReadbackIsMacMismatch) {
  attacks::AttackEnv env = attacks::AttackEnv::small(24);
  auto verifier = env.make_verifier();
  auto prover = env.make_prover();
  core::SessionHooks hooks;
  hooks.on_response = [](Bytes& reply) {
    // Flip one payload bit of frame-data responses; still decodable, so
    // this is indistinguishable from on-device tampering and must land on
    // the crypto checks, not the transport taxonomy.
    if (reply.size() > 16 && reply[0] == 2) reply[8] ^= 0x01;
    return true;
  };
  const auto report =
      core::run_attestation(verifier, prover, env.session_options, hooks);
  EXPECT_FALSE(report.verdict.ok());
  EXPECT_EQ(report.failure, FailureKind::kMacMismatch);
}

TEST(FailureTaxonomy, OnDeviceTamperIsMaskedCompareMismatch) {
  attacks::AttackEnv env = attacks::AttackEnv::small(25);
  auto verifier = env.make_verifier();
  auto prover = env.make_prover();
  core::SessionHooks hooks;
  hooks.after_config = [](core::SachaProver& p) {
    bitstream::Frame f = p.memory().config_frame(6);
    f.flip_bit(1);
    p.memory().write_frame(6, f);
  };
  const auto report =
      core::run_attestation(verifier, prover, env.session_options, hooks);
  EXPECT_FALSE(report.verdict.ok());
  EXPECT_EQ(report.failure, FailureKind::kMaskedCompareMismatch);
}

TEST(FailureTaxonomy, RetriesExhaustedIsTimeoutExhausted) {
  attacks::AttackEnv env = attacks::AttackEnv::small(26);
  auto verifier = env.make_verifier();
  auto prover = env.make_prover();
  env.session_options.reliable = true;
  env.session_options.max_retries = 3;
  core::SessionHooks hooks;
  // Black-hole every delivery of command 4 (first send and retries alike).
  const std::size_t target = 4;
  std::size_t current = 0;
  hooks.before_command = [&current](std::size_t index, core::SachaProver&) {
    current = index;
  };
  hooks.on_command = [&current, target](Bytes&) { return current != target; };
  const auto report =
      core::run_attestation(verifier, prover, env.session_options, hooks);
  EXPECT_FALSE(report.verdict.ok());
  EXPECT_EQ(report.failure, FailureKind::kTimeoutExhausted);
}

// ---- FaultInjector wiring ------------------------------------------------

TEST(FaultInjector, EmptyPlanLeavesSessionBitIdentical) {
  attacks::AttackEnv env = attacks::AttackEnv::small(30);
  auto verifier = env.make_verifier();
  auto prover = env.make_prover();
  const auto baseline =
      core::run_attestation(verifier, prover, env.session_options);

  attacks::AttackEnv env2 = attacks::AttackEnv::small(30);
  auto verifier2 = env2.make_verifier();
  auto prover2 = env2.make_prover();
  fault::FaultInjector injector(fault::FaultPlan{}, 30);
  core::SessionHooks hooks;
  injector.arm(env2.session_options, hooks);
  const auto armed =
      core::run_attestation(verifier2, prover2, env2.session_options, hooks);

  EXPECT_TRUE(baseline.verdict.ok());
  EXPECT_TRUE(armed.verdict.ok());
  EXPECT_EQ(baseline.total_time, armed.total_time);
  EXPECT_EQ(baseline.theoretical_time, armed.theoretical_time);
  ASSERT_TRUE(prover.last_mac().has_value());
  ASSERT_TRUE(prover2.last_mac().has_value());
  EXPECT_EQ(*prover.last_mac(), *prover2.last_mac());
}

TEST(FaultInjector, SeuStrikeIsDetectedAsMaskedCompareMismatch) {
  attacks::AttackEnv env = attacks::AttackEnv::small(31);
  auto verifier = env.make_verifier();
  auto prover = env.make_prover();
  auto plan = fault::FaultPlan::parse("seu=3");
  ASSERT_TRUE(plan.ok());
  fault::FaultInjector injector(std::move(plan).take(), 31);
  core::SessionHooks hooks;
  injector.arm(env.session_options, hooks);
  const auto report =
      core::run_attestation(verifier, prover, env.session_options, hooks);
  EXPECT_FALSE(report.verdict.ok());
  EXPECT_EQ(report.failure, FailureKind::kMaskedCompareMismatch);
  EXPECT_EQ(injector.stats().seu_flips, 3u);
}

TEST(FaultInjector, CorruptionHealsUnderReliableTransport) {
  attacks::AttackEnv env = attacks::AttackEnv::small(32);
  auto verifier = env.make_verifier();
  auto prover = env.make_prover();
  env.session_options.reliable = true;
  env.session_options.max_retries = 10;
  auto plan = fault::FaultPlan::parse("corrupt=0.2");
  ASSERT_TRUE(plan.ok());
  fault::FaultInjector injector(std::move(plan).take(), 32);
  core::SessionHooks hooks;
  injector.arm(env.session_options, hooks);
  const auto report =
      core::run_attestation(verifier, prover, env.session_options, hooks);
  // Undecodable corruption is treated like loss and retried from the dedup
  // cache; corruption that only grazes transport-level bytes (an ack's
  // status) is harmless. With this seed no corrupt frame payload survives
  // decoding, so the session converges without double-stepping the MAC.
  EXPECT_TRUE(report.verdict.ok()) << report.verdict.detail;
  EXPECT_GT(injector.stats().responses_corrupted, 0u);
  EXPECT_GT(report.retransmissions, 0u);
}

// ---- Self-healing swarm supervisor ---------------------------------------

/// Owns the fleet's verifiers/provers (SwarmMember holds raw pointers).
struct Fleet {
  explicit Fleet(std::size_t n, std::uint64_t base_seed = 700) {
    for (std::size_t i = 0; i < n; ++i) {
      envs.push_back(attacks::AttackEnv::small(base_seed + i));
      verifiers.push_back(envs.back().make_verifier());
      provers.push_back(envs.back().make_prover());
    }
    for (std::size_t i = 0; i < n; ++i) {
      members.push_back(core::SwarmMember{"node-" + std::to_string(i),
                                          &verifiers[i], &provers[i], {}});
    }
  }
  std::deque<attacks::AttackEnv> envs;
  std::deque<core::SachaVerifier> verifiers;
  std::deque<core::SachaProver> provers;
  std::vector<core::SwarmMember> members;
};

TEST(Supervisor, CrashedMemberHealsOnRetry) {
  Fleet fleet(3);
  fleet.members[1].configure = [](core::SessionOptions& options,
                                  core::SessionHooks& hooks,
                                  std::uint32_t attempt) {
    options.reliable = true;
    if (attempt == 0) {
      hooks.before_command = [](std::size_t index, core::SachaProver& p) {
        if (index == 4 && p.fault_state().reboots == 0) p.inject_crash(1);
      };
    }
  };
  core::SwarmOptions options;
  options.session.reliable = true;
  options.retry_budget = 2;
  const auto report = core::attest_swarm(fleet.members, options);
  EXPECT_TRUE(report.all_attested());
  EXPECT_TRUE(report.converged());
  EXPECT_EQ(report.healed, 1u);
  EXPECT_EQ(report.reattempts, 1u);
  EXPECT_EQ(report.members[1].attempts, 2u);
  EXPECT_TRUE(report.members[1].healed);
  EXPECT_EQ(report.members[1].failure, FailureKind::kNone);
}

TEST(Supervisor, PersistentTamperIsQuarantinedNeverAccepted) {
  Fleet fleet(3);
  // The tamper hook persists across attempts: genuine compromise, not a
  // transient fault. The supervisor must spend its budget and quarantine,
  // never accept.
  fleet.members[2].hooks.on_response = [](Bytes& reply) {
    if (reply.size() > 16 && reply[0] == 2) reply[8] ^= 0x01;
    return true;
  };
  core::SwarmOptions options;
  options.retry_budget = 3;
  const auto report = core::attest_swarm(fleet.members, options);
  EXPECT_FALSE(report.all_attested());
  EXPECT_TRUE(report.converged());
  EXPECT_EQ(report.attested, 2u);
  EXPECT_EQ(report.quarantined, 1u);
  EXPECT_EQ(report.healed, 0u);
  EXPECT_EQ(report.quarantined_ids(), std::vector<std::string>{"node-2"});
  EXPECT_TRUE(report.members[2].quarantined);
  EXPECT_EQ(report.members[2].attempts, 4u);  // budget fully spent
  EXPECT_EQ(report.members[2].failure, FailureKind::kMacMismatch);
}

TEST(Supervisor, BurstLossConvergesWithReliableTransport) {
  Fleet fleet(4);
  auto plan = fault::FaultPlan::parse("burst=0.05:0.5:1");
  ASSERT_TRUE(plan.ok());
  std::deque<fault::FaultInjector> injectors;
  for (std::size_t i = 0; i < fleet.members.size(); ++i) {
    injectors.emplace_back(plan.value(), 700 + i);
    fault::FaultInjector& injector = injectors.back();
    fleet.members[i].configure = [&injector](core::SessionOptions& options,
                                             core::SessionHooks& hooks,
                                             std::uint32_t) {
      injector.arm(options, hooks);
    };
  }
  core::SwarmOptions options;
  options.session.reliable = true;
  options.session.max_retries = 8;
  options.retry_budget = 2;
  const auto report = core::attest_swarm(fleet.members, options);
  EXPECT_TRUE(report.converged());
  EXPECT_TRUE(report.all_attested());
  EXPECT_GT(report.messages_lost, 0u);
  EXPECT_GT(report.retransmissions, 0u);
  EXPECT_GT(report.backoff_wait, 0u);
}

TEST(Supervisor, ZeroFaultSupervisedRunMatchesOneShotBitForBit) {
  Fleet one_shot(5);
  const auto legacy = core::attest_swarm(one_shot.members);

  Fleet supervised(5);
  core::SwarmOptions options;
  options.retry_budget = 2;
  const auto report = core::attest_swarm(supervised.members, options);

  ASSERT_TRUE(legacy.all_attested());
  ASSERT_TRUE(report.all_attested());
  EXPECT_EQ(report.reattempts, 0u);
  EXPECT_EQ(report.healed, 0u);
  EXPECT_EQ(report.makespan, legacy.makespan);
  EXPECT_EQ(report.total_work, legacy.total_work);
  ASSERT_EQ(report.members.size(), legacy.members.size());
  for (std::size_t i = 0; i < report.members.size(); ++i) {
    EXPECT_EQ(report.members[i].duration, legacy.members[i].duration) << i;
    ASSERT_TRUE(report.members[i].mac.has_value());
    ASSERT_TRUE(legacy.members[i].mac.has_value());
    EXPECT_EQ(*report.members[i].mac, *legacy.members[i].mac) << i;
  }
}

TEST(Supervisor, FleetDeadlineStopsRetriesAndQuarantines) {
  Fleet fleet(3);
  fleet.members[0].hooks.after_config = [](core::SachaProver& p) {
    bitstream::Frame f = p.memory().config_frame(5);
    f.flip_bit(2);
    p.memory().write_frame(5, f);
  };
  core::SwarmOptions options;
  options.retry_budget = 5;
  options.fleet_deadline_ns = 1;  // expires before any retry round
  const auto report = core::attest_swarm(fleet.members, options);
  EXPECT_TRUE(report.fleet_deadline_exceeded);
  EXPECT_TRUE(report.converged());
  EXPECT_EQ(report.quarantined, 1u);
  EXPECT_EQ(report.reattempts, 0u);
  EXPECT_EQ(report.members[0].attempts, 1u);
  EXPECT_EQ(report.members[0].failure, FailureKind::kMaskedCompareMismatch);
}

TEST(Supervisor, RetriesUseFreshNonces) {
  Fleet fleet(1);
  std::vector<std::uint64_t> nonces;
  fleet.members[0].configure = [&fleet, &nonces](core::SessionOptions&,
                                                 core::SessionHooks& hooks,
                                                 std::uint32_t attempt) {
    // Record the nonce once the session has drawn it (first command).
    core::SachaVerifier* verifier = &fleet.verifiers[0];
    hooks.before_command = [verifier, &nonces](std::size_t index,
                                               core::SachaProver&) {
      if (index == 0) nonces.push_back(verifier->nonce());
    };
    if (attempt == 0) {
      hooks.after_config = [](core::SachaProver& p) {
        bitstream::Frame f = p.memory().config_frame(6);
        f.flip_bit(3);
        p.memory().write_frame(6, f);
      };
    }
  };
  core::SwarmOptions options;
  options.retry_budget = 1;
  const auto report = core::attest_swarm(fleet.members, options);
  EXPECT_TRUE(report.all_attested());
  EXPECT_EQ(report.healed, 1u);
  ASSERT_EQ(nonces.size(), 2u);
  EXPECT_NE(nonces[0], nonces[1]);  // fresh-nonce retry rule
}

// Acceptance: the recoverable fault matrix — burst loss x single crash x
// single stall — converges: every member re-attests via fresh-nonce retry
// or is quarantined with its typed cause.
TEST(Supervisor, FaultMatrixConverges) {
  for (const double burst_enter : {0.0, 0.03}) {
    for (const bool crash : {false, true}) {
      for (const bool stall : {false, true}) {
        Fleet fleet(3);
        std::deque<fault::FaultInjector> injectors;
        for (std::size_t i = 0; i < fleet.members.size(); ++i) {
          fault::FaultPlan plan;
          if (burst_enter > 0.0) plan.burst = {burst_enter, 0.5, 0.0, 1.0};
          if (crash && i == 1) plan.crash = fault::CrashFault{5, 2};
          if (stall && i == 2) plan.stall = fault::StallFault{3, 2};
          injectors.emplace_back(plan, 800 + i);
          fault::FaultInjector& injector = injectors.back();
          const bool device_fault = crash || stall;
          fleet.members[i].configure =
              [&injector, device_fault](core::SessionOptions& options,
                                        core::SessionHooks& hooks,
                                        std::uint32_t attempt) {
                if (attempt == 0 || !device_fault) injector.arm(options, hooks);
              };
        }
        core::SwarmOptions options;
        options.session.reliable = true;
        options.session.max_retries = 8;
        options.retry_budget = 2;
        const auto report = core::attest_swarm(fleet.members, options);
        EXPECT_TRUE(report.converged())
            << "burst=" << burst_enter << " crash=" << crash
            << " stall=" << stall;
        EXPECT_TRUE(report.all_attested())
            << "burst=" << burst_enter << " crash=" << crash
            << " stall=" << stall;
      }
    }
  }
}

}  // namespace
}  // namespace sacha
