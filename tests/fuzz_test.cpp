// Robustness fuzzing: the prover and every codec face the open network, so
// arbitrary byte garbage and mutated-but-plausible packets must never
// crash, hang, or silently corrupt state — they must yield a clean error
// (or a well-formed response). Deterministic PRNG-driven fuzzing so
// failures replay exactly.
#include <gtest/gtest.h>

#include "attacks/env.hpp"
#include "bitstream/packet.hpp"
#include "core/session.hpp"
#include "net/ethernet.hpp"

namespace sacha {
namespace {

// ------------------------------------------------------- raw-bytes fuzzing

class RandomBytesFuzz : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(RandomBytesFuzz, CommandDecodeNeverCrashes) {
  Rng rng(GetParam());
  for (int i = 0; i < 500; ++i) {
    const Bytes garbage = rng.bytes(static_cast<std::size_t>(rng.below(200)));
    (void)core::Command::decode(garbage);  // must simply not crash
  }
}

TEST_P(RandomBytesFuzz, ResponseDecodeNeverCrashes) {
  Rng rng(GetParam() ^ 1);
  for (int i = 0; i < 500; ++i) {
    const Bytes garbage = rng.bytes(static_cast<std::size_t>(rng.below(200)));
    (void)core::Response::decode(garbage);
  }
}

TEST_P(RandomBytesFuzz, PacketParserNeverCrashes) {
  Rng rng(GetParam() ^ 2);
  for (int i = 0; i < 300; ++i) {
    std::vector<std::uint32_t> words(rng.below(64));
    for (auto& w : words) w = static_cast<std::uint32_t>(rng.next_u64());
    (void)bitstream::parse_packets(words);
  }
}

TEST_P(RandomBytesFuzz, EthFrameDecodeNeverCrashes) {
  Rng rng(GetParam() ^ 3);
  for (int i = 0; i < 300; ++i) {
    const Bytes garbage = rng.bytes(static_cast<std::size_t>(rng.below(200)));
    (void)net::EthFrame::decode(garbage);
  }
}

TEST_P(RandomBytesFuzz, ProverAnswersGarbageWithError) {
  attacks::AttackEnv env = attacks::AttackEnv::small(GetParam());
  auto prover = env.make_prover();
  Rng rng(GetParam() ^ 4);
  for (int i = 0; i < 200; ++i) {
    const Bytes garbage = rng.bytes(static_cast<std::size_t>(rng.below(150)));
    const auto result = prover.handle_packet(garbage);
    if (result.response.has_value()) {
      // Whatever comes back must re-encode and re-decode cleanly.
      EXPECT_TRUE(core::Response::decode(result.response->encode()).ok());
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomBytesFuzz,
                         ::testing::Values(1u, 2u, 3u, 4u, 5u, 6u, 7u, 8u));

// -------------------------------------------------- mutation-based fuzzing

/// Flips 1-4 random bits/bytes of a valid packet.
Bytes mutate(Bytes packet, Rng& rng) {
  const std::uint64_t edits = 1 + rng.below(4);
  for (std::uint64_t e = 0; e < edits && !packet.empty(); ++e) {
    switch (rng.below(3)) {
      case 0:  // flip a bit
        packet[rng.below(packet.size())] ^=
            static_cast<std::uint8_t>(1u << rng.below(8));
        break;
      case 1:  // truncate
        packet.resize(packet.size() - 1 - rng.below(std::min<std::size_t>(
                                               packet.size(), 8)));
        break;
      case 2:  // duplicate a tail byte
        packet.push_back(packet.back());
        break;
    }
  }
  return packet;
}

class MutationFuzz : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(MutationFuzz, ProverSurvivesMutatedProtocolTraffic) {
  attacks::AttackEnv env = attacks::AttackEnv::small(GetParam());
  auto verifier = env.make_verifier();
  auto prover = env.make_prover();
  verifier.begin();
  Rng rng(GetParam() ^ 0xf22u);

  for (std::size_t i = 0; i < verifier.command_count(); ++i) {
    Bytes packet = verifier.command(i).encode();
    if (rng.chance(0.5)) packet = mutate(std::move(packet), rng);
    const auto result = prover.handle_packet(packet);
    if (result.response.has_value()) {
      EXPECT_TRUE(core::Response::decode(result.response->encode()).ok());
    }
  }
  // The device survives and still attests cleanly in a fresh session.
  auto verifier2 = env.make_verifier();
  const auto report = core::run_attestation(verifier2, prover);
  EXPECT_TRUE(report.verdict.ok()) << report.verdict.detail;
}

TEST_P(MutationFuzz, SessionWithCorruptingMitmNeverCrashes) {
  attacks::AttackEnv env = attacks::AttackEnv::small(GetParam() + 100);
  auto verifier = env.make_verifier();
  auto prover = env.make_prover();
  auto rng = std::make_shared<Rng>(GetParam() ^ 0xabcd);
  core::SessionHooks hooks;
  hooks.on_command = [rng](Bytes& packet) {
    if (rng->chance(0.2)) packet = mutate(std::move(packet), *rng);
    return true;
  };
  hooks.on_response = [rng](Bytes& reply) {
    if (rng->chance(0.2)) reply = mutate(std::move(reply), *rng);
    return true;
  };
  // A corrupting man-in-the-middle may or may not break this particular
  // run's verdict (mutations can hit padding), but nothing may crash and
  // an honest follow-up must pass.
  (void)core::run_attestation(verifier, prover, env.session_options, hooks);
  auto verifier2 = env.make_verifier();
  auto prover2 = env.make_prover();
  const auto clean = core::run_attestation(verifier2, prover2);
  EXPECT_TRUE(clean.verdict.ok());
}

TEST_P(MutationFuzz, MutatedIcapStreamsNeverCorruptStaticRegion) {
  // Whatever garbage arrives, the prover must never let a *rejected*
  // stream write anything: check the static region afterwards (dynamic
  // writes are legitimate for accepted config commands).
  attacks::AttackEnv env = attacks::AttackEnv::small(GetParam() + 200);
  auto verifier = env.make_verifier();
  auto prover = env.make_prover();
  verifier.begin();
  std::vector<bitstream::Frame> static_before;
  for (std::uint32_t f = 0; f < 4; ++f) {
    static_before.push_back(prover.memory().config_frame(f));
  }
  Rng rng(GetParam() ^ 0x5eed);
  for (int i = 0; i < 100; ++i) {
    Bytes packet = verifier.command(rng.below(verifier.command_count())).encode();
    packet = mutate(std::move(packet), rng);
    (void)prover.handle_packet(packet);
  }
  // Mutations may produce *valid* dynamic writes, but a FAR pointing into
  // the static region requires mutating the packed address to a valid
  // static frame; if that happened the write is architecturally allowed —
  // only attestation catches it. Here we just require no crash and a
  // conserved frame count.
  EXPECT_EQ(prover.memory().total_frames(), 16u);
  (void)static_before;
}

INSTANTIATE_TEST_SUITE_P(Seeds, MutationFuzz,
                         ::testing::Values(11u, 22u, 33u, 44u, 55u));

}  // namespace
}  // namespace sacha
