// Cross-module integration suite: full-scale (XC6VLX240T) end-to-end runs,
// multi-session device lifecycles, combined extension modes, and the
// structural invariants behind Tables 3 and 4.
#include <gtest/gtest.h>

#include <deque>

#include "attacks/env.hpp"
#include "core/signed_attest.hpp"
#include "core/state_attest.hpp"
#include "core/swarm.hpp"
#include "softcore/assembler.hpp"

namespace sacha::core {
namespace {

TEST(FullScale, Virtex6HonestSessionReproducesTable4Structure) {
  attacks::AttackEnv env = attacks::AttackEnv::virtex6(2019);
  auto verifier = env.make_verifier();
  auto prover = env.make_prover();
  const AttestationReport report = run_attestation(verifier, prover);
  ASSERT_TRUE(report.verdict.ok()) << report.verdict.detail;

  // Table 4 counts.
  EXPECT_EQ(report.ledger.count(actions::kA1), 26'400u);
  EXPECT_EQ(report.ledger.count(actions::kA2), 26'400u);
  EXPECT_EQ(report.ledger.count(actions::kA3), 28'488u);
  EXPECT_EQ(report.ledger.count(actions::kA4), 28'488u);
  EXPECT_EQ(report.ledger.count(actions::kA5), 1u);
  EXPECT_EQ(report.ledger.count(actions::kA6), 28'488u);
  EXPECT_EQ(report.ledger.count(actions::kA7), 1u);
  EXPECT_EQ(report.ledger.count(actions::kA8), 28'488u);

  // Table 3 averages (model values; see EXPERIMENTS.md).
  EXPECT_EQ(report.ledger.average(actions::kA1), 8'848u);
  EXPECT_EQ(report.ledger.average(actions::kA2), 1'830u);
  EXPECT_EQ(report.ledger.average(actions::kA3), 13'616u);
  EXPECT_EQ(report.ledger.average(actions::kA4), 24'040u);
  EXPECT_EQ(report.ledger.average(actions::kA6), 128u);
  EXPECT_EQ(report.ledger.average(actions::kA8), 2'928u);

  // Theoretical duration: 1.442 s, within 1 ms of the paper's 1.443 s.
  EXPECT_NEAR(sim::to_seconds(report.theoretical_time), 1.443, 0.002);
}

TEST(FullScale, Virtex6LabChannelReproducesMeasuredDuration) {
  attacks::AttackEnv env = attacks::AttackEnv::virtex6(2020);
  env.session_options.channel = net::ChannelParams::lab();
  auto verifier = env.make_verifier();
  auto prover = env.make_prover();
  const AttestationReport report =
      run_attestation(verifier, prover, env.session_options);
  ASSERT_TRUE(report.verdict.ok());
  EXPECT_NEAR(sim::to_seconds(report.total_time), 28.5, 0.1);
  // Latency dominates, as the paper concludes.
  EXPECT_GT(sim::to_seconds(report.ledger.total(actions::kNetLatency)), 25.0);
}

TEST(FullScale, Virtex6TamperDetected) {
  attacks::AttackEnv env = attacks::AttackEnv::virtex6(2021);
  auto verifier = env.make_verifier();
  auto prover = env.make_prover();
  SessionHooks hooks;
  hooks.after_config = [](SachaProver& p) {
    bitstream::Frame f = p.memory().config_frame(14'000);
    f.flip_bit(1'000);
    p.memory().write_frame(14'000, f);
  };
  const AttestationReport report =
      run_attestation(verifier, prover, env.session_options, hooks);
  EXPECT_FALSE(report.verdict.ok());
  EXPECT_FALSE(report.verdict.config_ok);
}

TEST(Lifecycle, RepeatedSessionsAndUpdatesOnOneDevice) {
  // One device across its service life: attest, update to v2, attest,
  // tamper (detected), re-attest (the protocol re-installs the intended
  // configuration, so the next run passes), update to v3.
  attacks::AttackEnv env = attacks::AttackEnv::small(90);
  auto verifier = env.make_verifier();
  auto prover = env.make_prover();

  EXPECT_TRUE(run_attestation(verifier, prover).verdict.ok());

  verifier.set_app_spec({"app-v2", 2});
  EXPECT_TRUE(run_attestation(verifier, prover).verdict.ok());

  SessionHooks tamper;
  tamper.after_config = [](SachaProver& p) {
    bitstream::Frame f = p.memory().config_frame(8);
    f.flip_bit(4);
    p.memory().write_frame(8, f);
  };
  EXPECT_FALSE(run_attestation(verifier, prover, {}, tamper).verdict.ok());

  // Recovery needs no manual cleanup: the next session overwrites DynMem.
  EXPECT_TRUE(run_attestation(verifier, prover).verdict.ok());

  verifier.set_app_spec({"app-v3", 3});
  const AttestationReport final_run = run_attestation(verifier, prover);
  EXPECT_TRUE(final_run.verdict.ok());
}

TEST(Lifecycle, HonestSweepAcrossSeedsAndOrders) {
  for (std::uint64_t seed : {1u, 7u, 42u, 1234u}) {
    for (const ReadbackOrder order :
         {ReadbackOrder::kSequentialFromZero, ReadbackOrder::kSequentialFromOffset,
          ReadbackOrder::kRandomPermutation}) {
      attacks::AttackEnv env = attacks::AttackEnv::small(seed);
      env.verifier_options.order = order;
      auto verifier = env.make_verifier();
      auto prover = env.make_prover();
      EXPECT_TRUE(run_attestation(verifier, prover).verdict.ok())
          << "seed " << seed << " order " << static_cast<int>(order);
    }
  }
}

TEST(CombinedModes, SignedPlusStateAttestation) {
  // Both §8 extensions composed: a softcore device, no pre-shared secret
  // (public session key), signature over the base run, then a state
  // capture.
  const auto device = fabric::DeviceModel::softcore_test_device();
  fabric::Floorplan plan(device);
  plan.add_partition({"StatPart",
                      fabric::PartitionKind::kStatic,
                      fabric::FrameRange{0, 6},
                      {.clb = 60, .bram18 = 4, .iob = 8, .dcm = 1, .icap = 1}});
  plan.add_partition({"DynPart",
                      fabric::PartitionKind::kDynamic,
                      fabric::FrameRange{6, 30},
                      {.clb = 340, .bram18 = 12, .iob = 24, .dcm = 1}});
  const crypto::AesKey public_key{};  // deliberately public
  SachaVerifier verifier(plan, {"static-v1", 1}, {"soc-app", 1}, public_key, 5);
  SachaProver prover(device, "combo", public_key);
  prover.boot(verifier.static_image());

  crypto::HashSigner signer(99, 2);
  LeafPolicy policy;
  const auto signed_report = run_signed_attestation(
      verifier, prover, signer, signer.root(), 2, policy);
  ASSERT_TRUE(signed_report.ok()) << signed_report.detail;

  const auto program = softcore::assemble("ldi r1, 5\nhalt").take();
  const auto map =
      softcore::StateMap::build(device, fabric::FrameRange{6, 23}).take();
  softcore::SoftCore cpu(program);
  StateAttestOptions options;
  options.skip_base = true;  // base already done (signed)
  options.cpu_steps = 4;
  // Re-configure golden dynamic content (signed run already did; the state
  // phase verifies against the *new* session's nonce, so re-begin happens
  // inside; configure the app region accordingly).
  const auto state_report = run_state_attestation(
      verifier, prover, cpu, program, map, options);
  // The skip_base path re-begins a session with a fresh nonce; frames other
  // than the nonce frame still hold the signed session's content.
  EXPECT_TRUE(state_report.state_mac_ok);
}

TEST(Bandwidth, SessionByteAccounting) {
  attacks::AttackEnv env = attacks::AttackEnv::small(91);
  auto verifier = env.make_verifier();
  auto prover = env.make_prover();
  const AttestationReport report = run_attestation(verifier, prover);
  ASSERT_TRUE(report.verdict.ok());
  // 12 config commands (1,110 wire bytes each: 4+266*4 payload + overhead),
  // 16 readback commands (1,702), 1 checksum (84) => to prover.
  EXPECT_EQ(report.bytes_to_prover, 12u * 1'106 + 16u * 1'702 + 84u);
  // 16 frame responses (4 + 32 payload -> min frame 84), 1 MAC response.
  EXPECT_EQ(report.bytes_to_verifier, 16u * 84 + 84u);
}

TEST(Bandwidth, Virtex6SessionDataVolume) {
  attacks::AttackEnv env = attacks::AttackEnv::virtex6(2022);
  auto verifier = env.make_verifier();
  auto prover = env.make_prover();
  const AttestationReport report = run_attestation(verifier, prover);
  ASSERT_TRUE(report.verdict.ok());
  // ~77.7 MB shipped to the device, ~10.4 MB of readback returned.
  EXPECT_NEAR(static_cast<double>(report.bytes_to_prover) / 1e6, 77.7, 0.5);
  EXPECT_NEAR(static_cast<double>(report.bytes_to_verifier) / 1e6, 10.4, 0.5);
}

TEST(Swarm, MixedFleetFullLifecycle) {
  // 3 honest + 1 impersonator + 1 tampered: exactly the honest three attest.
  std::deque<attacks::AttackEnv> envs;
  std::deque<SachaVerifier> verifiers;
  std::deque<SachaProver> provers;
  std::vector<SwarmMember> members;
  for (std::size_t i = 0; i < 5; ++i) {
    envs.push_back(attacks::AttackEnv::small(700 + i));
    verifiers.push_back(envs.back().make_verifier());
    provers.push_back(envs.back().make_prover(/*genuine_key=*/i != 3));
  }
  for (std::size_t i = 0; i < 5; ++i) {
    members.push_back({"dev-" + std::to_string(i), &verifiers[i], &provers[i], {}});
  }
  members[4].hooks.after_config = [](SachaProver& p) {
    bitstream::Frame f = p.memory().config_frame(9);
    f.flip_bit(8);
    p.memory().write_frame(9, f);
  };
  const SwarmReport report = attest_swarm(members);
  EXPECT_EQ(report.attested, 3u);
  EXPECT_EQ(report.failed_ids(),
            (std::vector<std::string>{"dev-3", "dev-4"}));
}

}  // namespace
}  // namespace sacha::core
