// Wire-codec tests: framing round-trips under arbitrary byte splits,
// truncation semantics, malformed-header rejection (typed + poisoning),
// and the HELLO/REPORT/ERROR message codecs.
#include <gtest/gtest.h>

#include <vector>

#include "common/bytes.hpp"
#include "common/rng.hpp"
#include "core/protocol.hpp"
#include "net/wire.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

using namespace sacha;
using net::Frame;
using net::FrameDecoder;
using net::FrameKind;

namespace {

/// Feeds `stream` into a fresh decoder in random chunks (sizes 1..max_chunk)
/// and returns every decoded frame.
std::vector<Frame> decode_split(const Bytes& stream, Rng& rng,
                                std::size_t max_chunk) {
  FrameDecoder decoder;
  std::vector<Frame> frames;
  std::size_t at = 0;
  while (at < stream.size()) {
    const std::size_t n =
        std::min<std::size_t>(1 + rng.below(max_chunk), stream.size() - at);
    decoder.feed(ByteSpan(stream.data() + at, n));
    at += n;
    for (;;) {
      auto frame = decoder.next();
      EXPECT_TRUE(frame.ok()) << frame.message();
      if (!frame.ok() || !frame.value().has_value()) break;
      frames.push_back(*std::move(frame).take());
    }
  }
  return frames;
}

Bytes random_payload(Rng& rng, std::size_t max_len) {
  Bytes payload(rng.below(max_len + 1));
  for (auto& b : payload) b = static_cast<std::uint8_t>(rng.below(256));
  return payload;
}

TEST(WireFraming, RoundTripsEveryKindUnderRandomSplits) {
  Rng rng(2026);
  for (int round = 0; round < 50; ++round) {
    std::vector<Frame> sent;
    Bytes stream;
    const std::size_t count = 1 + rng.below(8);
    for (std::size_t i = 0; i < count; ++i) {
      Frame frame;
      frame.kind = static_cast<FrameKind>(1 + rng.below(8));
      frame.payload = random_payload(rng, 300);
      append(stream, net::encode_frame(frame));
      sent.push_back(std::move(frame));
    }
    // max_chunk 1 = strict byte-at-a-time on the first rounds.
    const std::size_t max_chunk = round < 5 ? 1 : 1 + rng.below(64);
    const std::vector<Frame> got = decode_split(stream, rng, max_chunk);
    EXPECT_EQ(got, sent);
  }
}

TEST(WireFraming, CoalescedBurstDecodesInOrder) {
  Bytes stream;
  std::vector<Frame> sent;
  for (std::uint8_t i = 0; i < 10; ++i) {
    Frame frame{FrameKind::kCommand, Bytes(i, i)};
    append(stream, net::encode_frame(frame));
    sent.push_back(std::move(frame));
  }
  FrameDecoder decoder;
  decoder.feed(stream);  // one feed, ten frames
  std::vector<Frame> got;
  for (;;) {
    auto frame = decoder.next();
    ASSERT_TRUE(frame.ok());
    if (!frame.value().has_value()) break;
    got.push_back(*std::move(frame).take());
  }
  EXPECT_EQ(got, sent);
  EXPECT_EQ(decoder.buffered_bytes(), 0u);
}

TEST(WireFraming, TruncatedFrameIsNotAnError) {
  const Bytes stream =
      net::encode_frame({FrameKind::kResponse, Bytes(100, 0xab)});
  for (std::size_t cut = 0; cut < stream.size(); ++cut) {
    FrameDecoder decoder;
    decoder.feed(ByteSpan(stream.data(), cut));
    auto frame = decoder.next();
    ASSERT_TRUE(frame.ok()) << "cut at " << cut << ": " << frame.message();
    EXPECT_FALSE(frame.value().has_value());
    EXPECT_FALSE(decoder.poisoned());
    // The rest of the bytes complete the frame.
    decoder.feed(ByteSpan(stream.data() + cut, stream.size() - cut));
    auto completed = decoder.next();
    ASSERT_TRUE(completed.ok());
    ASSERT_TRUE(completed.value().has_value());
    EXPECT_EQ(completed.value()->payload.size(), 100u);
  }
}

void expect_poisons(Bytes header_start) {
  FrameDecoder decoder;
  header_start.resize(net::kFrameHeaderBytes, 0);
  decoder.feed(header_start);
  auto frame = decoder.next();
  EXPECT_FALSE(frame.ok());
  EXPECT_TRUE(decoder.poisoned());
  // Poisoned is permanent: even a well-formed frame fails now.
  decoder.feed(net::encode_frame({FrameKind::kHello, {}}));
  EXPECT_FALSE(decoder.next().ok());
}

TEST(WireFraming, MalformedHeadersPoisonTheDecoder) {
  expect_poisons({0xde, 0xad});                          // bad magic
  expect_poisons({0x53, 0x41, 99, 1});                   // unknown version
  expect_poisons({0x53, 0x41, net::kWireVersion, 0});    // kind below range
  expect_poisons({0x53, 0x41, net::kWireVersion, 9});    // first unassigned
  expect_poisons({0x53, 0x41, net::kWireVersion, 200});  // kind above range
  expect_poisons({0x53, 0x41, net::kWireVersion, 3,      // oversize length
                  0xff, 0xff, 0xff, 0xff});
}

TEST(WireFraming, CommandAndResponseSurviveFraming) {
  Rng rng(7);
  for (int round = 0; round < 20; ++round) {
    core::Command command;
    command.type = static_cast<core::CommandType>(1 + rng.below(3));
    // frame_nb rides the wire only for readback commands.
    if (command.type == core::CommandType::kIcapReadback) {
      command.frame_nb = static_cast<std::uint32_t>(rng.below(1000));
    }
    command.stream.resize(rng.below(50));
    for (auto& w : command.stream)
      w = static_cast<std::uint32_t>(rng.next_u64());
    core::Response response;
    response.type = core::ResponseType::kFrameData;
    response.frame_words.resize(rng.below(50));
    for (auto& w : response.frame_words)
      w = static_cast<std::uint32_t>(rng.next_u64());

    Bytes stream;
    append(stream, net::encode_frame({FrameKind::kCommand, command.encode()}));
    append(stream,
           net::encode_frame({FrameKind::kResponse, response.encode()}));
    const std::vector<Frame> got = decode_split(stream, rng, 7);
    ASSERT_EQ(got.size(), 2u);
    auto command_back = core::Command::decode(got[0].payload);
    ASSERT_TRUE(command_back.ok());
    EXPECT_EQ(command_back.value(), command);
    auto response_back = core::Response::decode(got[1].payload);
    ASSERT_TRUE(response_back.ok());
    EXPECT_EQ(response_back.value(), response);
  }
}

TEST(WireMessages, HelloRoundTrip) {
  net::HelloMsg hello;
  hello.scale = net::DeviceScale::kSoftcore;
  hello.member_index = 11;
  hello.base_seed = 0x1122334455667788ULL;
  hello.session_seed = 99;
  hello.flip_probability = 0.625;
  hello.device_id = "node-11";
  auto back = net::HelloMsg::decode(hello.encode());
  ASSERT_TRUE(back.ok()) << back.message();
  EXPECT_EQ(back.value(), hello);
}

TEST(WireMessages, HelloRejectsBadFields) {
  net::HelloMsg hello;
  Bytes wire = hello.encode();
  // Trailing garbage.
  Bytes trailing = wire;
  trailing.push_back(0);
  EXPECT_FALSE(net::HelloMsg::decode(trailing).ok());
  // Truncation at every length.
  for (std::size_t cut = 0; cut < wire.size(); ++cut) {
    EXPECT_FALSE(net::HelloMsg::decode(ByteSpan(wire.data(), cut)).ok());
  }
  // Unknown device scale.
  Bytes bad_scale = wire;
  bad_scale[2] = 77;
  EXPECT_FALSE(net::HelloMsg::decode(bad_scale).ok());
}

TEST(WireMessages, HelloCarriesTraceContext) {
  net::HelloMsg hello;
  hello.device_id = "traced-device";
  hello.trace = obs::make_trace_id("traced-device", 77);
  hello.sampled = true;
  ASSERT_TRUE(hello.trace.valid());
  auto back = net::HelloMsg::decode(hello.encode());
  ASSERT_TRUE(back.ok()) << back.message();
  EXPECT_EQ(back.value(), hello);
  EXPECT_EQ(back.value().trace, hello.trace);
  EXPECT_TRUE(back.value().sampled);
}

TEST(WireMessages, VersionOneHelloDecodesWithoutTraceFields) {
  // A v1 peer's HELLO ends at the device id: no trace-context tail. The
  // decoder keys on the message's own proto field and must accept it —
  // trace fields stay at their "no trace" defaults.
  net::HelloMsg v1;
  v1.proto = 1;
  v1.device_id = "legacy-node";
  // Even if a trace id is set locally, a v1 encode omits the tail.
  v1.trace = obs::make_trace_id("legacy-node", 1);
  v1.sampled = true;
  const Bytes wire = v1.encode();
  auto back = net::HelloMsg::decode(wire);
  ASSERT_TRUE(back.ok()) << back.message();
  EXPECT_EQ(back.value().proto, 1u);
  EXPECT_EQ(back.value().device_id, "legacy-node");
  EXPECT_FALSE(back.value().trace.valid());
  EXPECT_FALSE(back.value().sampled);
  // A v2 HELLO missing its trace tail is malformed, not silently v1.
  net::HelloMsg v2;
  v2.device_id = "modern-node";
  Bytes truncated = v2.encode();
  truncated.resize(truncated.size() - 17);  // strip [hi u64][lo u64][flags u8]
  EXPECT_FALSE(net::HelloMsg::decode(truncated).ok());
}

TEST(WireMessages, HelloAckRoundTrip) {
  net::HelloAckMsg ack;
  ack.command_count = 123456;
  auto back = net::HelloAckMsg::decode(ack.encode());
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back.value(), ack);
}

TEST(WireMessages, HelloAckRedirectTailRoundTrip) {
  net::HelloAckMsg ack;
  ack.command_count = 9;
  ack.redirect_host = "10.1.2.3";
  ack.redirect_port = 7461;
  ASSERT_TRUE(ack.is_redirect());
  const Bytes wire = ack.encode();
  // The tail rides after the plain 6-byte ACK body.
  EXPECT_GT(wire.size(), std::size_t{6});
  auto back = net::HelloAckMsg::decode(wire);
  ASSERT_TRUE(back.ok()) << back.message();
  EXPECT_EQ(back.value(), ack);
  EXPECT_TRUE(back.value().is_redirect());
}

TEST(WireMessages, HelloAckPlainSixByteBodyStillAccepts) {
  // A v1-v3 server's ACK is exactly [proto u16][command_count u32]; the v4
  // decoder must keep reading it as "session accepted here", no redirect.
  net::HelloAckMsg plain;
  plain.command_count = 42;
  const Bytes wire = plain.encode();
  ASSERT_EQ(wire.size(), std::size_t{6});
  auto back = net::HelloAckMsg::decode(wire);
  ASSERT_TRUE(back.ok());
  EXPECT_FALSE(back.value().is_redirect());
  EXPECT_EQ(back.value().command_count, 42u);
}

TEST(WireMessages, HelloAckRejectsTruncatedOrTrailingRedirectTail) {
  net::HelloAckMsg ack;
  ack.redirect_host = "shard.example";
  ack.redirect_port = 19;
  const Bytes wire = ack.encode();
  // Any cut inside the tail is malformed, not silently a plain ACK.
  for (std::size_t cut = 7; cut < wire.size(); ++cut) {
    Bytes truncated(wire.begin(), wire.begin() + cut);
    EXPECT_FALSE(net::HelloAckMsg::decode(truncated).ok()) << cut;
  }
  // Garbage after a complete tail is rejected too.
  Bytes trailing = wire;
  trailing.push_back(0x00);
  EXPECT_FALSE(net::HelloAckMsg::decode(trailing).ok());
}

TEST(WireMessages, ReportRoundTrip) {
  net::ReportMsg report;
  report.protocol_ok = true;
  report.mac_ok = true;
  report.config_ok = false;
  report.failure = core::FailureKind::kMacMismatch;
  report.mac_present = true;
  for (std::size_t i = 0; i < report.mac.size(); ++i)
    report.mac[i] = static_cast<std::uint8_t>(i * 7);
  report.commands = 49;
  report.wall_ns = 123456789;
  report.detail = "config mismatch in frame 5";
  auto back = net::ReportMsg::decode(report.encode());
  ASSERT_TRUE(back.ok()) << back.message();
  EXPECT_EQ(back.value(), report);
  EXPECT_FALSE(back.value().attested());

  Bytes trailing = report.encode();
  trailing.push_back(1);
  EXPECT_FALSE(net::ReportMsg::decode(trailing).ok());
}

TEST(WireMessages, ReportCarriesTraceContextAndToleratesV1Tail) {
  net::ReportMsg report;
  report.protocol_ok = true;
  report.mac_ok = true;
  report.config_ok = true;
  report.commands = 12;
  report.wall_ns = 3'000'000;
  report.detail = "ok";
  report.trace = obs::make_trace_id("echo-device", 5);
  report.sampled = true;
  auto back = net::ReportMsg::decode(report.encode());
  ASSERT_TRUE(back.ok()) << back.message();
  EXPECT_EQ(back.value(), report);

  // A v1 REPORT simply lacks the 17-byte trace tail: still valid, trace
  // fields default. Any other trailing length stays malformed.
  Bytes v1_wire = report.encode();
  v1_wire.resize(v1_wire.size() - 17);
  auto v1_back = net::ReportMsg::decode(v1_wire);
  ASSERT_TRUE(v1_back.ok()) << v1_back.message();
  EXPECT_FALSE(v1_back.value().trace.valid());
  EXPECT_FALSE(v1_back.value().sampled);
  EXPECT_TRUE(v1_back.value().attested());
  Bytes partial = report.encode();
  partial.resize(partial.size() - 1);
  EXPECT_FALSE(net::ReportMsg::decode(partial).ok());
}

TEST(WireFraming, VersionOneFrameHeaderStillDecodes) {
  // kWireVersionMin..kWireVersion are all accepted on the wire; the decoder
  // surfaces which version framed each frame so sessions can adapt.
  Frame v1{FrameKind::kHello, Bytes{1, 2, 3}, 1};
  FrameDecoder decoder;
  decoder.feed(net::encode_frame(v1));
  auto got = decoder.next();
  ASSERT_TRUE(got.ok()) << got.message();
  ASSERT_TRUE(got.value().has_value());
  EXPECT_EQ(got.value()->version, 1u);
  EXPECT_EQ(got.value()->payload, (Bytes{1, 2, 3}));
  EXPECT_FALSE(decoder.poisoned());
  // Below the floor (version 0) poisons like any unknown version.
  FrameDecoder reject;
  Bytes zero = net::encode_frame(v1);
  zero[2] = 0;
  reject.feed(zero);
  EXPECT_FALSE(reject.next().ok());
  EXPECT_TRUE(reject.poisoned());
}

TEST(WireMessages, ErrorRoundTripAndBoundsCheck) {
  net::ErrorMsg error;
  error.failure = core::FailureKind::kPeerDisconnect;
  error.detail = "peer went away";
  auto back = net::ErrorMsg::decode(error.encode());
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back.value(), error);

  Bytes bad = error.encode();
  bad[0] = 250;  // failure kind beyond the taxonomy
  EXPECT_FALSE(net::ErrorMsg::decode(bad).ok());
}

TEST(WireMessages, UpdateOfferRoundTripAndTruncation) {
  net::UpdateOfferMsg offer;
  offer.version = 42;
  offer.manifest = {0x5a, 0x01, 0xfe, 0x00, 0x33};  // opaque at this layer
  auto back = net::UpdateOfferMsg::decode(offer.encode());
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back.value(), offer);

  Bytes wire = offer.encode();
  for (std::size_t cut = 0; cut < wire.size(); ++cut) {
    Bytes truncated(wire.begin(), wire.begin() + cut);
    EXPECT_FALSE(net::UpdateOfferMsg::decode(truncated).ok())
        << "decoded a " << cut << "-byte prefix";
  }
  // Length field pointing past the payload must refuse, not over-read.
  Bytes lying = wire;
  lying[8] = 0xff;  // manifest length low byte
  EXPECT_FALSE(net::UpdateOfferMsg::decode(lying).ok());
}

TEST(WireMessages, UpdateStatusRoundTripAndTruncation) {
  net::UpdateStatusMsg status;
  status.version = 42;
  status.accepted = true;
  status.state = "Committed";
  status.detail = "post-attest passed";
  auto back = net::UpdateStatusMsg::decode(status.encode());
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back.value(), status);

  net::UpdateStatusMsg refusal;
  refusal.version = 42;
  refusal.accepted = false;
  refusal.state = "Idle";
  refusal.detail = "manifest: bad signature";
  auto back2 = net::UpdateStatusMsg::decode(refusal.encode());
  ASSERT_TRUE(back2.ok());
  EXPECT_EQ(back2.value(), refusal);

  Bytes wire = status.encode();
  for (std::size_t cut = 0; cut < wire.size(); ++cut) {
    Bytes truncated(wire.begin(), wire.begin() + cut);
    EXPECT_FALSE(net::UpdateStatusMsg::decode(truncated).ok())
        << "decoded a " << cut << "-byte prefix";
  }
}

TEST(WireFraming, UpdateFramesSurviveByteAtATimeFraming) {
  net::UpdateOfferMsg offer;
  offer.version = 7;
  offer.manifest.assign(129, 0xab);
  Frame frame{FrameKind::kUpdateOffer, offer.encode()};
  const Bytes stream = net::encode_frame(frame);

  net::FrameDecoder decoder;
  std::optional<Frame> got;
  for (std::uint8_t byte : stream) {
    decoder.feed(Bytes{byte});
    auto next = decoder.next();
    ASSERT_TRUE(next.ok());
    if (next.value().has_value()) got = *std::move(next).take();
  }
  ASSERT_TRUE(got.has_value());
  EXPECT_EQ(got->kind, FrameKind::kUpdateOffer);
  auto back = net::UpdateOfferMsg::decode(got->payload);
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back.value(), offer);
}

TEST(WireFraming, DecodeErrorsAndPoisonedConnsAreCounted) {
  obs::set_enabled(true);
  auto& registry = obs::MetricsRegistry::global();
  const std::uint64_t errors0 =
      registry.counter("sacha.net.decode_errors").value();
  const std::uint64_t poisoned0 =
      registry.counter("sacha.net.poisoned_conns").value();
  FrameDecoder decoder;
  decoder.feed(Bytes(net::kFrameHeaderBytes, 0));  // bad magic
  EXPECT_FALSE(decoder.next().ok());
  EXPECT_EQ(registry.counter("sacha.net.decode_errors").value(), errors0 + 1);
  EXPECT_EQ(registry.counter("sacha.net.poisoned_conns").value(),
            poisoned0 + 1);
  // Draining an already-poisoned stream is not a fresh decode error.
  EXPECT_FALSE(decoder.next().ok());
  EXPECT_EQ(registry.counter("sacha.net.decode_errors").value(), errors0 + 1);
  obs::set_enabled(false);
}

TEST(WireFraming, FuzzRandomBytesNeverCrash) {
  Rng rng(0xf22);
  for (int round = 0; round < 200; ++round) {
    FrameDecoder decoder;
    Bytes noise = random_payload(rng, 512);
    decoder.feed(noise);
    // Drain until error or exhaustion; must never crash or loop forever.
    for (int steps = 0; steps < 1000; ++steps) {
      auto frame = decoder.next();
      if (!frame.ok() || !frame.value().has_value()) break;
    }
  }
}

}  // namespace
