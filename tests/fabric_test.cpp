// Tests for the device model: resource accounting, frame addressing
// bijection, floorplan validation, and the Table 2 invariants the paper's
// proof of concept relies on.
#include <gtest/gtest.h>

#include "fabric/device.hpp"
#include "fabric/partition.hpp"

namespace sacha::fabric {
namespace {

TEST(Resources, AdditionIsFieldwise) {
  const ResourceCounts a{.clb = 1, .bram18 = 2, .iob = 3, .dcm = 4, .icap = 1};
  const ResourceCounts b{.clb = 10, .bram18 = 20, .iob = 30, .dcm = 40};
  const ResourceCounts sum = a + b;
  EXPECT_EQ(sum.clb, 11u);
  EXPECT_EQ(sum.bram18, 22u);
  EXPECT_EQ(sum.iob, 33u);
  EXPECT_EQ(sum.dcm, 44u);
  EXPECT_EQ(sum.icap, 1u);
}

TEST(Resources, FitsWithinIsPerField) {
  const ResourceCounts small{.clb = 5, .bram18 = 5};
  const ResourceCounts big{.clb = 10, .bram18 = 10, .iob = 1, .dcm = 1, .icap = 1};
  EXPECT_TRUE(small.fits_within(big));
  EXPECT_FALSE(big.fits_within(small));
  // Equal counts fit.
  EXPECT_TRUE(big.fits_within(big));
}

TEST(Resources, BramCapacityBytes) {
  // One 18-kbit BRAM = 2,304 bytes.
  EXPECT_EQ(bram_capacity_bytes({.bram18 = 1}), 2'304u);
  EXPECT_EQ(bram_capacity_bytes({.bram18 = 832}), 832u * 2'304u);
}

TEST(Virtex6, FrameCountMatchesPaper) {
  const DeviceModel dev = DeviceModel::xc6vlx240t();
  EXPECT_EQ(dev.total_frames(), 28'488u);
  EXPECT_EQ(dev.geometry().words_per_frame(), 81u);
  EXPECT_EQ(dev.frame_bytes(), 324u);
}

TEST(Virtex6, ResourceTotalsMatchTable2) {
  const ResourceCounts t = DeviceModel::xc6vlx240t().totals();
  EXPECT_EQ(t.clb, 18'840u);
  EXPECT_EQ(t.bram18, 832u);
  EXPECT_EQ(t.icap, 1u);
  EXPECT_EQ(t.dcm, 12u);
}

TEST(Virtex6, BramCannotHoldPartialBitstream) {
  // The bounded-memory assumption (§5.2): the partial bitstream for the
  // dynamic partition must not fit in the device's BRAM.
  const DeviceModel dev = DeviceModel::xc6vlx240t();
  const std::uint64_t partial = dev.bitstream_bytes(kVirtex6DynamicFrames);
  EXPECT_GT(partial, bram_capacity_bytes(dev.totals()));
}

TEST(FrameAddressing, PackUnpackRoundTrip) {
  const FrameAddress addr{BlockType::kBramContent, 5, 120, 35};
  EXPECT_EQ(FrameAddress::unpack(addr.pack()), addr);
}

TEST(FrameAddressing, LinearIndexBijectionSmall) {
  const DeviceModel dev = DeviceModel::small_test_device();
  const ConfigGeometry& g = dev.geometry();
  for (std::uint32_t i = 0; i < g.total_frames(); ++i) {
    const FrameAddress addr = g.address_of(i);
    EXPECT_TRUE(g.valid(addr));
    EXPECT_EQ(g.linear_index(addr), i);
  }
}

TEST(FrameAddressing, LinearIndexBijectionVirtex6Sampled) {
  const ConfigGeometry& g = DeviceModel::xc6vlx240t().geometry();
  for (std::uint32_t i = 0; i < g.total_frames(); i += 97) {
    EXPECT_EQ(g.linear_index(g.address_of(i)), i);
  }
  // Boundary frames.
  EXPECT_EQ(g.linear_index(g.address_of(0)), 0u);
  EXPECT_EQ(g.linear_index(g.address_of(g.total_frames() - 1)),
            g.total_frames() - 1);
}

TEST(FrameAddressing, LogicFramesPrecedeBram) {
  const ConfigGeometry& g = DeviceModel::xc6vlx240t().geometry();
  const std::uint32_t logic_frames = g.block(BlockType::kLogic).frames();
  EXPECT_EQ(g.address_of(0).block, BlockType::kLogic);
  EXPECT_EQ(g.address_of(logic_frames - 1).block, BlockType::kLogic);
  EXPECT_EQ(g.address_of(logic_frames).block, BlockType::kBramContent);
}

TEST(FrameAddressing, InvalidAddressesRejected) {
  const ConfigGeometry& g = DeviceModel::xc6vlx240t().geometry();
  EXPECT_FALSE(g.valid(FrameAddress{BlockType::kLogic, 6, 0, 0}));    // row
  EXPECT_FALSE(g.valid(FrameAddress{BlockType::kLogic, 0, 121, 0}));  // col
  EXPECT_FALSE(g.valid(FrameAddress{BlockType::kLogic, 0, 0, 36}));   // minor
  EXPECT_FALSE(g.valid(FrameAddress{BlockType::kBramContent, 0, 28, 0}));
}

TEST(FrameRange, ContainsAndOverlap) {
  const FrameRange a{10, 5};
  EXPECT_TRUE(a.contains(10));
  EXPECT_TRUE(a.contains(14));
  EXPECT_FALSE(a.contains(15));
  EXPECT_FALSE(a.contains(9));
  EXPECT_TRUE(a.overlaps(FrameRange{14, 1}));
  EXPECT_FALSE(a.overlaps(FrameRange{15, 3}));
  EXPECT_TRUE(a.overlaps(FrameRange{0, 11}));
}

TEST(ReferenceFloorplan, Validates) {
  const Floorplan plan = sacha_reference_floorplan();
  const Status status = plan.validate();
  EXPECT_TRUE(status.ok()) << status.message();
}

TEST(ReferenceFloorplan, StatPartMatchesTable2) {
  const Floorplan plan = sacha_reference_floorplan();
  const Partition* stat = plan.find_partition("StatPart");
  ASSERT_NE(stat, nullptr);
  EXPECT_EQ(stat->resources.clb, 1'400u);
  EXPECT_EQ(stat->resources.bram18, 72u);
  EXPECT_EQ(stat->resources.icap, 1u);
  EXPECT_EQ(stat->resources.dcm, 1u);
  EXPECT_EQ(stat->frames.count, 2'088u);
}

TEST(ReferenceFloorplan, DynPartMatchesTable2) {
  const Floorplan plan = sacha_reference_floorplan();
  const Partition* dyn = plan.find_partition("DynPart");
  ASSERT_NE(dyn, nullptr);
  EXPECT_EQ(dyn->resources.clb, 17'440u);
  EXPECT_EQ(dyn->resources.bram18, 760u);
  EXPECT_EQ(dyn->resources.icap, 0u);
  EXPECT_EQ(dyn->resources.dcm, 11u);
  EXPECT_EQ(dyn->frames.count, 26'400u);
}

TEST(ReferenceFloorplan, MacCoreMatchesTable2) {
  const Floorplan plan = sacha_reference_floorplan();
  const auto& components = plan.components();
  const auto it =
      std::find_if(components.begin(), components.end(), [](const Component& c) {
        return c.name == component_names::kAesCmac;
      });
  ASSERT_NE(it, components.end());
  EXPECT_EQ(it->resources.clb, 283u);
  EXPECT_EQ(it->resources.bram18, 8u);
}

TEST(ReferenceFloorplan, StatPartComponentsSumToRegion) {
  // The decomposition of Fig. 10's blocks must tile the StatPart exactly:
  // Table 2's StatPart row is the sum of its components.
  const Floorplan plan = sacha_reference_floorplan();
  const ResourceCounts usage = plan.component_usage("StatPart");
  EXPECT_EQ(usage.clb, 1'400u);
  EXPECT_EQ(usage.bram18, 72u);
  EXPECT_EQ(usage.icap, 1u);
  EXPECT_EQ(usage.dcm, 1u);
}

TEST(ReferenceFloorplan, PartitionsTileTheDevice) {
  const Floorplan plan = sacha_reference_floorplan();
  ResourceCounts total;
  std::uint32_t frames = 0;
  for (const Partition& p : plan.partitions()) {
    total += p.resources;
    frames += p.frames.count;
  }
  EXPECT_EQ(total.clb, plan.device().totals().clb);
  EXPECT_EQ(total.bram18, plan.device().totals().bram18);
  EXPECT_EQ(total.dcm, plan.device().totals().dcm);
  EXPECT_EQ(total.icap, plan.device().totals().icap);
  EXPECT_EQ(frames, plan.device().total_frames());
}

TEST(ReferenceFloorplan, StatPartIsUnderNinePercent) {
  // §7.1: "The StatPart occupies less than 9% of the FPGA (when considering
  // both CLBs and BRAMs)."
  const Floorplan plan = sacha_reference_floorplan();
  const Partition* stat = plan.find_partition("StatPart");
  ASSERT_NE(stat, nullptr);
  const auto& dev = plan.device().totals();
  EXPECT_LT(static_cast<double>(stat->resources.clb) / dev.clb, 0.09);
  EXPECT_LT(static_cast<double>(stat->resources.bram18) / dev.bram18, 0.09);
}

TEST(ReferenceFloorplan, FrameOwnershipLookup) {
  const Floorplan plan = sacha_reference_floorplan();
  EXPECT_EQ(plan.partition_of_frame(0)->name, "StatPart");
  EXPECT_EQ(plan.partition_of_frame(2'087)->name, "StatPart");
  EXPECT_EQ(plan.partition_of_frame(2'088)->name, "DynPart");
  EXPECT_EQ(plan.partition_of_frame(28'487)->name, "DynPart");
  EXPECT_EQ(plan.frames_of_kind(PartitionKind::kDynamic), 26'400u);
  EXPECT_EQ(plan.frames_of_kind(PartitionKind::kStatic), 2'088u);
}

TEST(FloorplanValidation, RejectsOverlappingPartitions) {
  Floorplan plan(DeviceModel::small_test_device());
  plan.add_partition({"a", PartitionKind::kStatic, FrameRange{0, 8}, {.clb = 10}});
  plan.add_partition({"b", PartitionKind::kDynamic, FrameRange{7, 8}, {.clb = 10}});
  EXPECT_FALSE(plan.validate().ok());
}

TEST(FloorplanValidation, RejectsOutOfBoundsRange) {
  Floorplan plan(DeviceModel::small_test_device());
  plan.add_partition({"a", PartitionKind::kStatic, FrameRange{10, 10}, {.clb = 1}});
  EXPECT_FALSE(plan.validate().ok());
}

TEST(FloorplanValidation, RejectsResourceOversubscription) {
  Floorplan plan(DeviceModel::small_test_device());
  plan.add_partition({"a", PartitionKind::kStatic, FrameRange{0, 4}, {.clb = 1'000'000}});
  EXPECT_FALSE(plan.validate().ok());
}

TEST(FloorplanValidation, RejectsComponentInUnknownPartition) {
  Floorplan plan(DeviceModel::small_test_device());
  plan.add_partition({"a", PartitionKind::kStatic, FrameRange{0, 4}, {.clb = 10}});
  plan.add_component({"widget", "missing", {.clb = 1}});
  EXPECT_FALSE(plan.validate().ok());
}

TEST(FloorplanValidation, RejectsComponentOverflow) {
  Floorplan plan(DeviceModel::small_test_device());
  plan.add_partition({"a", PartitionKind::kStatic, FrameRange{0, 4}, {.clb = 10}});
  plan.add_component({"widget", "a", {.clb = 11}});
  EXPECT_FALSE(plan.validate().ok());
}

TEST(FloorplanValidation, RejectsDuplicatePartitionNames) {
  Floorplan plan(DeviceModel::small_test_device());
  plan.add_partition({"a", PartitionKind::kStatic, FrameRange{0, 4}, {.clb = 1}});
  plan.add_partition({"a", PartitionKind::kDynamic, FrameRange{4, 4}, {.clb = 1}});
  EXPECT_FALSE(plan.validate().ok());
}

// Property sweep: geometry bijection holds for a family of device shapes.
struct GeometryCase {
  std::uint32_t lr, lc, lm, br, bc, bm;
};

class GeometrySweep : public ::testing::TestWithParam<GeometryCase> {};

TEST_P(GeometrySweep, BijectionHolds) {
  const auto& p = GetParam();
  const ConfigGeometry g(BlockGeometry{p.lr, p.lc, p.lm},
                         BlockGeometry{p.br, p.bc, p.bm}, 4);
  for (std::uint32_t i = 0; i < g.total_frames(); ++i) {
    EXPECT_EQ(g.linear_index(g.address_of(i)), i);
  }
}

INSTANTIATE_TEST_SUITE_P(Shapes, GeometrySweep,
                         ::testing::Values(GeometryCase{1, 1, 1, 1, 1, 1},
                                           GeometryCase{2, 3, 4, 1, 2, 2},
                                           GeometryCase{3, 7, 2, 2, 2, 5},
                                           GeometryCase{1, 16, 8, 4, 1, 1},
                                           GeometryCase{5, 5, 5, 5, 5, 5}));

}  // namespace
}  // namespace sacha::fabric
