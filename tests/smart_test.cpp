// Tests for the SMART-style hybrid baseline: honest attestation, malware
// detection, and the key-isolation property that separates hybrid schemes
// from software-only attestation (§4.2).
#include <gtest/gtest.h>

#include "attest/smart.hpp"
#include "crypto/prg.hpp"

namespace sacha::attest {
namespace {

crypto::AesKey key() {
  crypto::Prg prg(7, "smart-key");
  return prg.key();
}

Bytes firmware(std::size_t n) {
  return crypto::Prg(8, "smart-fw").bytes(n);
}

struct Rig {
  Rig() : mcu(1'024, key()), verifier(key(), firmware(1'024)) {
    mcu.write_app(0, firmware(1'024));
  }
  SmartMcu mcu;
  SmartVerifier verifier;
};

TEST(Smart, HonestDeviceAttests) {
  Rig rig;
  EXPECT_TRUE(rig.verifier.verify(42, rig.mcu.rom_attest(42)));
}

TEST(Smart, NonceBindsResponse) {
  Rig rig;
  const crypto::Mac response = rig.mcu.rom_attest(42);
  EXPECT_FALSE(rig.verifier.verify(43, response));
}

TEST(Smart, CompromisedMemoryDetected) {
  Rig rig;
  rig.mcu.write_app(100, bytes_of("MALWARE"));
  EXPECT_FALSE(rig.verifier.verify(42, rig.mcu.rom_attest(42)));
}

TEST(Smart, ApplicationCannotReadKey) {
  Rig rig;
  const auto attempt = rig.mcu.read_key(ExecutionContext::kApplication);
  EXPECT_FALSE(attempt.ok());
  EXPECT_NE(attempt.message().find("MPU violation"), std::string::npos);
}

TEST(Smart, ForgeryFromApplicationFails) {
  // The compromised application wants to answer attestation itself while
  // hiding malware (compute the MAC over a pristine copy). It cannot even
  // start: the key read is blocked.
  Rig rig;
  rig.mcu.write_app(100, bytes_of("MALWARE"));
  EXPECT_FALSE(rig.mcu.forge_from_application(42).ok());
}

TEST(Smart, RomRoutineStillWorksAfterCompromise) {
  // Detection, not denial: the ROM routine keeps functioning on a
  // compromised device and truthfully reports the (bad) state.
  Rig rig;
  rig.mcu.write_app(0, bytes_of("hostile takeover"));
  const crypto::Mac response = rig.mcu.rom_attest(9);
  EXPECT_FALSE(rig.verifier.verify(9, response));
  // Restoring the firmware restores attestation.
  rig.mcu.write_app(0, firmware(1'024));
  EXPECT_TRUE(rig.verifier.verify(10, rig.mcu.rom_attest(10)));
}

TEST(Smart, OutOfBoundsWriteRejected) {
  Rig rig;
  EXPECT_FALSE(rig.mcu.write_app(1'000, Bytes(100, 1)));
}

TEST(Smart, ContrastWithSoftwareOnlyKeyStorage) {
  // Software-only attestation stores the key in ordinary memory: once the
  // application is compromised, the key leaks and responses can be forged
  // over a pristine memory image. SMART's hardware rule is exactly the
  // delta. (The leak is modelled directly: the key bytes sit in app
  // memory, readable like anything else.)
  const crypto::AesKey k = key();
  BoundedMemoryMcu soft(1'024, k);
  Bytes image = firmware(1'000);
  Bytes key_bytes(k.begin(), k.end());
  soft.write(0, image);
  soft.write(1'000, key_bytes);  // "protected" only by convention

  // Compromised app reads the key from memory...
  const Bytes leaked(soft.memory().begin() + 1'000, soft.memory().begin() + 1'016);
  EXPECT_EQ(leaked, key_bytes) << "software-only key storage leaks";
  // ...and can now MAC arbitrary claimed states offline. With SMART the
  // equivalent read is an MPU violation (ApplicationCannotReadKey above).
}

}  // namespace
}  // namespace sacha::attest
