// Tests for the configuration-memory + ICAP substrate: write/readback
// semantics, live register-bit injection, command-stream interpretation,
// cycle accounting against Table 3, and the bounded BRAM buffer.
#include <gtest/gtest.h>

#include "bitstream/bitgen.hpp"
#include "config/bram_buffer.hpp"
#include "config/config_memory.hpp"
#include "config/icap.hpp"

namespace sacha::config {
namespace {

namespace bs = sacha::bitstream;

fabric::DeviceModel test_device() { return fabric::DeviceModel::small_test_device(); }

bs::Frame pattern_frame(std::uint32_t words, std::uint32_t base) {
  bs::Frame f(words);
  for (std::uint32_t i = 0; i < words; ++i) f.set_word(i, base + i);
  return f;
}

// ------------------------------------------------------------ ConfigMemory

TEST(ConfigMemory, StartsZeroed) {
  ConfigMemory mem(test_device());
  for (std::uint32_t i = 0; i < mem.total_frames(); ++i) {
    EXPECT_EQ(mem.config_frame(i), bs::Frame(mem.words_per_frame()));
  }
}

TEST(ConfigMemory, WriteThenReadConfigBits) {
  ConfigMemory mem(test_device());
  const bs::Frame f = pattern_frame(8, 100);
  mem.write_frame(3, f);
  EXPECT_EQ(mem.config_frame(3), f);
}

TEST(ConfigMemory, FreshReadbackEqualsWrittenFrame) {
  // Immediately after configuration, flip-flops hold their INIT values, so
  // readback matches the written frame bit for bit.
  ConfigMemory mem(test_device());
  const bs::Frame f = pattern_frame(8, 0xabcd0000);
  mem.write_frame(5, f);
  EXPECT_EQ(mem.readback_frame(5), f);
}

TEST(ConfigMemory, TickedRegistersDivergeOnlyAtMaskZeroBits) {
  ConfigMemory mem(test_device());
  const bs::Frame f = pattern_frame(8, 0x5555aaaa);
  for (std::uint32_t i = 0; i < mem.total_frames(); ++i) mem.write_frame(i, f);
  Rng rng(42);
  mem.tick_registers(rng, 0.5);
  bool any_diverged = false;
  for (std::uint32_t i = 0; i < mem.total_frames(); ++i) {
    const bs::Frame rb = mem.readback_frame(i);
    const bs::FrameMask& msk = mem.mask(i);
    for (std::uint32_t b = 0; b < rb.bit_count(); ++b) {
      if (msk.get_bit(b)) {
        EXPECT_EQ(rb.get_bit(b), f.get_bit(b)) << "config bit changed";
      } else if (rb.get_bit(b) != f.get_bit(b)) {
        any_diverged = true;
      }
    }
  }
  EXPECT_TRUE(any_diverged) << "tick_registers had no observable effect";
}

TEST(ConfigMemory, MaskedReadbackAlwaysMatchesGolden) {
  // The paper's verification step: Msk applied to readback equals Msk
  // applied to the golden frame, regardless of register activity.
  ConfigMemory mem(test_device());
  const bs::Frame golden = pattern_frame(8, 0x12340000);
  mem.write_frame(2, golden);
  Rng rng(7);
  mem.tick_registers(rng, 1.0);  // maximal register churn
  const bs::FrameMask& msk = mem.mask(2);
  EXPECT_EQ(bs::apply_mask(mem.readback_frame(2), msk),
            bs::apply_mask(golden, msk));
}

TEST(ConfigMemory, RewriteResetsRegisterState) {
  ConfigMemory mem(test_device());
  const bs::Frame f = pattern_frame(8, 1);
  mem.write_frame(0, f);
  Rng rng(9);
  mem.tick_registers(rng, 1.0);
  mem.write_frame(0, f);  // reconfiguration re-initialises the FFs
  EXPECT_EQ(mem.readback_frame(0), f);
}

TEST(ConfigMemory, SetRegisterBitIsObservable) {
  ConfigMemory mem(test_device());
  // Find a register (mask-0) bit in frame 0.
  const bs::FrameMask& msk = mem.mask(0);
  std::optional<std::uint32_t> reg_bit;
  for (std::uint32_t b = 0; b < msk.bit_count(); ++b) {
    if (!msk.get_bit(b)) {
      reg_bit = b;
      break;
    }
  }
  ASSERT_TRUE(reg_bit.has_value()) << "test device frame 0 has no register bits";
  mem.set_register_bit(0, *reg_bit, true);
  EXPECT_TRUE(mem.readback_frame(0).get_bit(*reg_bit));
  EXPECT_FALSE(mem.config_frame(0).get_bit(*reg_bit));
}

// -------------------------------------------------------------------- ICAP

class IcapTest : public ::testing::Test {
 protected:
  IcapTest()
      : device_(test_device()),
        gen_(device_),
        mem_(device_),
        icap_(mem_, device_idcode(device_)) {}

  fabric::DeviceModel device_;
  bs::BitGen gen_;
  ConfigMemory mem_;
  Icap icap_;
};

TEST_F(IcapTest, SingleFrameConfig) {
  const bs::Frame f = pattern_frame(8, 0xc0de0000);
  const auto words = gen_.assemble_single_frame(f, 6, device_idcode(device_));
  auto result = icap_.execute(words);
  ASSERT_TRUE(result.ok()) << result.message();
  EXPECT_TRUE(result.value().empty());
  EXPECT_EQ(mem_.config_frame(6), f);
  EXPECT_EQ(icap_.stats().frames_written, 1u);
}

TEST_F(IcapTest, BurstConfigWritesContiguousFrames) {
  const fabric::FrameRange range{4, 5};
  const bs::ConfigImage image = gen_.generate(range, {"burst", 1});
  const auto words = gen_.assemble(image, range.first, device_idcode(device_));
  auto result = icap_.execute(words);
  ASSERT_TRUE(result.ok()) << result.message();
  for (std::uint32_t i = 0; i < range.count; ++i) {
    EXPECT_EQ(mem_.config_frame(range.first + i), image.frames[i]);
  }
}

TEST_F(IcapTest, ReadbackReturnsLiveFrame) {
  const bs::Frame f = pattern_frame(8, 0xfeed0000);
  auto cfg = icap_.execute(gen_.assemble_single_frame(f, 2, device_idcode(device_)));
  ASSERT_TRUE(cfg.ok());

  bs::PacketWriter w;
  w.sync();
  w.cmd(bs::CmdOp::kRcfg);
  w.write_far(device_.geometry().address_of(2));
  w.read_request(8);
  w.cmd(bs::CmdOp::kDesync);
  auto result = icap_.execute(w.words());
  ASSERT_TRUE(result.ok()) << result.message();
  EXPECT_EQ(result.value(), f.words());
  EXPECT_EQ(icap_.stats().frames_read, 1u);
}

TEST_F(IcapTest, RejectsWrongIdcode) {
  const bs::Frame f = pattern_frame(8, 1);
  const auto words = gen_.assemble_single_frame(f, 0, 0xdead0000);
  EXPECT_FALSE(icap_.execute(words).ok());
  EXPECT_EQ(mem_.config_frame(0), bs::Frame(8));  // nothing written
}

TEST_F(IcapTest, RejectsWriteWithoutWcfg) {
  bs::PacketWriter w;
  w.sync();
  w.write_far(device_.geometry().address_of(0));
  w.write_frames(std::vector<std::uint32_t>(8, 1));
  EXPECT_FALSE(icap_.execute(w.words()).ok());
}

TEST_F(IcapTest, RejectsReadWithoutRcfg) {
  bs::PacketWriter w;
  w.sync();
  w.read_request(8);
  EXPECT_FALSE(icap_.execute(w.words()).ok());
}

TEST_F(IcapTest, RejectsMisalignedWrite) {
  bs::PacketWriter w;
  w.sync();
  w.cmd(bs::CmdOp::kWcfg);
  w.write_far(device_.geometry().address_of(0));
  w.write_frames(std::vector<std::uint32_t>(7, 1));  // 7 != words_per_frame
  EXPECT_FALSE(icap_.execute(w.words()).ok());
}

TEST_F(IcapTest, RejectsWritePastEnd) {
  bs::PacketWriter w;
  w.sync();
  w.cmd(bs::CmdOp::kWcfg);
  w.write_far(device_.geometry().address_of(15));  // last frame
  w.write_frames(std::vector<std::uint32_t>(16, 1));  // two frames
  EXPECT_FALSE(icap_.execute(w.words()).ok());
}

TEST_F(IcapTest, RejectsReadPastEnd) {
  bs::PacketWriter w;
  w.sync();
  w.cmd(bs::CmdOp::kRcfg);
  w.write_far(device_.geometry().address_of(15));
  w.read_request(16);
  EXPECT_FALSE(icap_.execute(w.words()).ok());
}

TEST_F(IcapTest, CrcMismatchRejected) {
  bs::PacketWriter w;
  w.sync();
  w.cmd(bs::CmdOp::kWcfg);
  w.write_far(device_.geometry().address_of(0));
  const std::vector<std::uint32_t> payload(8, 3);
  w.write_frames(payload);
  w.crc(bs::stream_crc(payload) ^ 1);  // corrupted CRC
  EXPECT_FALSE(icap_.execute(w.words()).ok());
}

TEST_F(IcapTest, CrcMatchAccepted) {
  bs::PacketWriter w;
  w.sync();
  w.cmd(bs::CmdOp::kWcfg);
  w.write_far(device_.geometry().address_of(0));
  const std::vector<std::uint32_t> payload(8, 3);
  w.write_frames(payload);
  w.crc(bs::stream_crc(payload));
  EXPECT_TRUE(icap_.execute(w.words()).ok());
}

TEST_F(IcapTest, FarAutoIncrementAcrossStreams) {
  // FAR persists between command streams, like the silicon.
  bs::PacketWriter w1;
  w1.sync();
  w1.cmd(bs::CmdOp::kWcfg);
  w1.write_far(device_.geometry().address_of(3));
  w1.write_frames(std::vector<std::uint32_t>(8, 0x11));
  ASSERT_TRUE(icap_.execute(w1.words()).ok());

  bs::PacketWriter w2;  // no FAR write: continues at frame 4
  w2.sync();
  w2.cmd(bs::CmdOp::kWcfg);
  w2.write_frames(std::vector<std::uint32_t>(8, 0x22));
  ASSERT_TRUE(icap_.execute(w2.words()).ok());
  EXPECT_EQ(mem_.config_frame(4), bs::Frame(8, 0x22));
}

// -------------------------------------------------- Virtex-6 cycle costs

TEST(IcapTiming, SingleFrameConfigCyclesMatchTable3) {
  // Table 3 row A2: Prv performs ICAP_config in 1,834 ns at 100 MHz, i.e.
  // ~183 cycles. Our model: 91 stream words + 81 data-extra + 11 commit.
  const auto device = fabric::DeviceModel::xc6vlx240t();
  const bs::BitGen gen(device);
  ConfigMemory mem(device);
  Icap icap(mem, device_idcode(device));
  const bs::Frame f(device.geometry().words_per_frame(), 0x1);
  auto r = icap.execute(gen.assemble_single_frame(f, 0, device_idcode(device)));
  ASSERT_TRUE(r.ok()) << r.message();
  EXPECT_EQ(icap.stats().cycles, 183u);
}

TEST(IcapTiming, SingleFrameReadbackCyclesMatchTable3) {
  // Table 3 row A4: ICAP_readback takes 24,044 ns => ~2,404 cycles.
  const auto device = fabric::DeviceModel::xc6vlx240t();
  ConfigMemory mem(device);
  Icap icap(mem, device_idcode(device));
  bs::PacketWriter w;
  w.sync();
  w.write_idcode(device_idcode(device));
  w.cmd(bs::CmdOp::kRcfg);
  w.write_far(device.geometry().address_of(0));
  w.read_request(device.geometry().words_per_frame());
  w.cmd(bs::CmdOp::kDesync);
  auto r = icap.execute(w.words());
  ASSERT_TRUE(r.ok()) << r.message();
  EXPECT_EQ(icap.stats().cycles, 2'404u);
}

// -------------------------------------------------------------- BramBuffer

TEST(BramBuffer, StoresWithinCapacity) {
  BramBuffer buf(100);
  EXPECT_TRUE(buf.store("a", Bytes(60, 1)));
  EXPECT_EQ(buf.used(), 60u);
  EXPECT_TRUE(buf.store("b", Bytes(40, 2)));
  EXPECT_EQ(buf.free(), 0u);
}

TEST(BramBuffer, RejectsOverCapacity) {
  BramBuffer buf(100);
  EXPECT_TRUE(buf.store("a", Bytes(60, 1)));
  EXPECT_FALSE(buf.store("b", Bytes(41, 2)));
  EXPECT_EQ(buf.used(), 60u);
  EXPECT_FALSE(buf.load("b").has_value());
}

TEST(BramBuffer, ReplaceAccountsCorrectly) {
  BramBuffer buf(100);
  EXPECT_TRUE(buf.store("a", Bytes(80, 1)));
  EXPECT_TRUE(buf.store("a", Bytes(90, 2)));  // replacing frees the old 80
  EXPECT_EQ(buf.used(), 90u);
  EXPECT_EQ(buf.load("a")->size(), 90u);
}

TEST(BramBuffer, EraseAndClear) {
  BramBuffer buf(100);
  buf.store("a", Bytes(10, 1));
  buf.store("b", Bytes(20, 2));
  EXPECT_TRUE(buf.erase("a"));
  EXPECT_FALSE(buf.erase("a"));
  EXPECT_EQ(buf.used(), 20u);
  buf.clear();
  EXPECT_EQ(buf.used(), 0u);
}

TEST(BramBuffer, DynPartBramCannotStagePartialBitstream) {
  // The adversary-visible staging memory (DynPart BRAM, 760 x 18 kbit) is
  // ~1.7 MB; the partial bitstream is ~8.6 MB. The bounded-memory premise.
  const auto device = fabric::DeviceModel::xc6vlx240t();
  BramBuffer staging(fabric::bram_capacity_bytes({.bram18 = 760}));
  const std::uint64_t partial =
      device.bitstream_bytes(fabric::kVirtex6DynamicFrames);
  EXPECT_FALSE(staging.store("stash", Bytes(partial, 0)));
}

}  // namespace
}  // namespace sacha::config
