// Tests for the network substrate: Ethernet codec (padding, FCS), the
// Gigabit wire model against the packet sizes behind Table 3, and the
// simulated channel (latency, jitter, loss).
#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "net/channel.hpp"
#include "net/ethernet.hpp"

namespace sacha::net {
namespace {

TEST(EthFrame, EncodeDecodeRoundTrip) {
  EthFrame frame;
  frame.dst = {1, 2, 3, 4, 5, 6};
  frame.src = {7, 8, 9, 10, 11, 12};
  frame.payload = Bytes(100, 0xab);
  auto decoded = EthFrame::decode(frame.encode());
  ASSERT_TRUE(decoded.ok()) << decoded.message();
  EXPECT_EQ(decoded.value().dst, frame.dst);
  EXPECT_EQ(decoded.value().src, frame.src);
  EXPECT_EQ(decoded.value().ethertype, kSachaEtherType);
  EXPECT_EQ(decoded.value().payload, frame.payload);
}

TEST(EthFrame, ShortPayloadIsPadded) {
  EthFrame frame;
  frame.payload = Bytes(10, 0x11);
  const Bytes wire = frame.encode();
  // 14 header + 46 padded payload + 4 FCS.
  EXPECT_EQ(wire.size(), 64u);
  auto decoded = EthFrame::decode(wire);
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded.value().payload.size(), kMinPayload);
  EXPECT_EQ(Bytes(decoded.value().payload.begin(),
                  decoded.value().payload.begin() + 10),
            frame.payload);
}

TEST(EthFrame, CorruptedFcsRejected) {
  EthFrame frame;
  frame.payload = Bytes(100, 0x22);
  Bytes wire = frame.encode();
  wire[20] ^= 0x01;
  EXPECT_FALSE(EthFrame::decode(wire).ok());
}

TEST(EthFrame, TruncatedFrameRejected) {
  EXPECT_FALSE(EthFrame::decode(Bytes(10, 0)).ok());
}

TEST(EthFrame, Crc32KnownVector) {
  // CRC-32 of "123456789" is 0xCBF43926.
  EXPECT_EQ(crc32(bytes_of("123456789")), 0xCBF43926u);
}

TEST(WireModel, MinimumFrameTime) {
  // 84 bytes total (incl. preamble + IFG) at 8 ns/byte.
  const WireModel wire;
  EXPECT_EQ(wire.frame_time(1), 672u);
  EXPECT_EQ(wire.frame_time(46), 672u);
}

TEST(WireModel, Table3PacketSizes) {
  const WireModel wire;
  // A1: ICAP_config command, 4-byte header + 266-word padded stream.
  EXPECT_EQ(wire.frame_time(4 + 266 * 4), 8'848u);
  // A3: ICAP_readback command, 4 + 4 + 414-word padded stream = 1,664 bytes
  // payload -> 1,702 wire bytes -> 13,616 ns, Table 3's exact value.
  EXPECT_EQ(wire.frame_time(4 + 4 + 414 * 4), 13'616u);
  // A8: frame sendback, 4 + 324 = 328 payload -> 366 bytes -> 2,928 ns.
  EXPECT_EQ(wire.frame_time(4 + 324), 2'928u);
}

TEST(Channel, IdealChannelIsWireOnly) {
  Channel channel(ChannelParams::ideal(), 1);
  const auto t = channel.transfer(328);
  ASSERT_TRUE(t.has_value());
  EXPECT_EQ(*t, 2'928u);
}

TEST(Channel, LabChannelAddsPerMessageLatency) {
  Channel channel(ChannelParams::lab(), 1);
  const auto t = channel.transfer(328);
  ASSERT_TRUE(t.has_value());
  EXPECT_EQ(*t, 2'928u + 324'500u);
}

TEST(Channel, JitterStaysInBound) {
  ChannelParams params;
  params.jitter_max = 1'000;
  Channel channel(params, 7);
  for (int i = 0; i < 200; ++i) {
    const auto t = channel.transfer(46);
    ASSERT_TRUE(t.has_value());
    EXPECT_GE(*t, 672u);
    EXPECT_LE(*t, 672u + 1'000u);
  }
}

TEST(Channel, LossRateRoughlyHonoured) {
  ChannelParams params;
  params.loss_probability = 0.3;
  Channel channel(params, 11);
  int lost = 0;
  for (int i = 0; i < 1000; ++i) {
    if (!channel.transfer(46).has_value()) ++lost;
  }
  EXPECT_EQ(channel.messages_lost(), static_cast<std::uint64_t>(lost));
  EXPECT_GT(lost, 220);
  EXPECT_LT(lost, 380);
}

TEST(Channel, ZeroLossNeverLoses) {
  Channel channel(ChannelParams::ideal(), 3);
  for (int i = 0; i < 100; ++i) {
    EXPECT_TRUE(channel.transfer(100).has_value());
  }
  EXPECT_EQ(channel.messages_lost(), 0u);
}

}  // namespace
}  // namespace sacha::net
