// Tests for the baseline attestation schemes: Perito-Tsudik proofs of
// secure erasure on the bounded-memory MCU, SWATT timing-based software
// attestation, Chaves on-the-fly bitstream hashing, and the Drimer-Kuhn
// secure-update protocol — including the assumption violations that
// motivate SACHa.
#include <gtest/gtest.h>

#include "attest/chaves.hpp"
#include "attest/drimer_kuhn.hpp"
#include "bitstream/bitgen.hpp"
#include "attest/mcu.hpp"
#include "attest/perito_tsudik.hpp"
#include "attest/swatt.hpp"
#include "common/rng.hpp"
#include "crypto/prg.hpp"

namespace sacha::attest {
namespace {

crypto::AesKey key_of(std::uint8_t fill) {
  crypto::AesKey key{};
  key.fill(fill);
  return key;
}

// --------------------------------------------------------------------- MCU

TEST(Mcu, WriteWithinBounds) {
  BoundedMemoryMcu mcu(128, key_of(1));
  EXPECT_TRUE(mcu.write(0, Bytes(128, 0xaa)));
  EXPECT_FALSE(mcu.write(1, Bytes(128, 0xbb)));
  EXPECT_FALSE(mcu.write(200, Bytes(1, 0xcc)));
}

TEST(Mcu, ChecksumDependsOnMemoryAndNonce) {
  BoundedMemoryMcu mcu(64, key_of(1));
  mcu.write(0, Bytes(64, 0x11));
  const crypto::Mac a = mcu.checksum(1);
  const crypto::Mac b = mcu.checksum(2);
  EXPECT_NE(a, b);
  mcu.write(10, Bytes(1, 0x99));
  EXPECT_NE(a, mcu.checksum(1));
}

TEST(Mcu, ChecksumDependsOnKey) {
  BoundedMemoryMcu a(64, key_of(1)), b(64, key_of(2));
  EXPECT_NE(a.checksum(7), b.checksum(7));
}

// ----------------------------------------------------------- PeritoTsudik

TEST(PeritoTsudik, HonestDeviceAttests) {
  BoundedMemoryMcu mcu(4'096, key_of(3));
  PoseVerifier verifier(key_of(3), 4'096);
  const Bytes firmware = bytes_of("firmware-v1: blink the LED");
  const PoseReport report = verifier.attest(mcu, firmware, 1);
  EXPECT_TRUE(report.attested) << report.detail;
  EXPECT_EQ(report.bytes_sent, 4'096u);
}

TEST(PeritoTsudik, FirmwareIsActuallyInstalled) {
  BoundedMemoryMcu mcu(1'024, key_of(3));
  const Bytes firmware = bytes_of("firmware-v2");
  PoseVerifier verifier(key_of(3), 1'024);
  ASSERT_TRUE(verifier.attest(mcu, firmware, 2).attested);
  EXPECT_TRUE(std::equal(firmware.begin(), firmware.end(), mcu.memory().begin()));
}

TEST(PeritoTsudik, PriorMalwareIsErased) {
  BoundedMemoryMcu mcu(1'024, key_of(3));
  const Bytes malware = bytes_of("EVIL PAYLOAD");
  mcu.infect(500, malware);
  PoseVerifier verifier(key_of(3), 1'024);
  ASSERT_TRUE(verifier.attest(mcu, bytes_of("clean"), 3).attested);
  // Nothing of the malware survives anywhere in memory.
  const auto it = std::search(mcu.memory().begin(), mcu.memory().end(),
                              malware.begin(), malware.end());
  EXPECT_EQ(it, mcu.memory().end());
}

TEST(PeritoTsudik, WrongKeyFails) {
  BoundedMemoryMcu mcu(512, key_of(4));
  PoseVerifier verifier(key_of(5), 512);
  EXPECT_FALSE(verifier.attest(mcu, bytes_of("fw"), 4).attested);
}

TEST(PeritoTsudik, OversizedFirmwareRejected) {
  BoundedMemoryMcu mcu(64, key_of(3));
  PoseVerifier verifier(key_of(3), 64);
  EXPECT_FALSE(verifier.attest(mcu, Bytes(65, 1), 5).attested);
}

TEST(PeritoTsudik, HidingFailsWithoutHiddenMemory) {
  // The bounded-memory premise: no room to stash, so the malware cannot
  // survive the fill.
  BoundedMemoryMcu mcu(1'024, key_of(3));
  mcu.infect(100, bytes_of("persistent-malware"));
  HidingMcu adversary(mcu, /*hidden_memory_bytes=*/8);
  EXPECT_FALSE(adversary.stash(100, 18));
  PoseVerifier verifier(key_of(3), 1'024);
  EXPECT_TRUE(verifier.attest(mcu, bytes_of("clean"), 6).attested);
  EXPECT_FALSE(adversary.restore());
}

TEST(PeritoTsudik, HiddenMemoryBreaksTheScheme) {
  // Assumption violation: a device with secret extra memory survives the
  // erasure undetected — quantifying why the memory bound must be right.
  BoundedMemoryMcu mcu(1'024, key_of(3));
  const Bytes malware = bytes_of("persistent-malware");
  mcu.infect(100, malware);
  HidingMcu adversary(mcu, /*hidden_memory_bytes=*/64);
  ASSERT_TRUE(adversary.stash(100, malware.size()));
  PoseVerifier verifier(key_of(3), 1'024);
  const PoseReport report = verifier.attest(mcu, bytes_of("clean"), 7);
  EXPECT_TRUE(report.attested) << "the proof itself still verifies";
  ASSERT_TRUE(adversary.restore());
  const auto it = std::search(mcu.memory().begin(), mcu.memory().end(),
                              malware.begin(), malware.end());
  EXPECT_NE(it, mcu.memory().end()) << "malware restored after attestation";
}

// ------------------------------------------------------------------ SWATT

Bytes golden_memory(std::size_t n) {
  Rng rng(987);
  return rng.bytes(n);
}

TEST(Swatt, HonestDevicePasses) {
  const Bytes memory = golden_memory(4'096);
  SwattDevice device(memory);
  SwattVerifier verifier(memory);
  const SwattVerdict verdict = verifier.attest(device, 42);
  EXPECT_TRUE(verdict.ok());
}

TEST(Swatt, NonRedirectingMalwareFailsChecksum) {
  const Bytes memory = golden_memory(4'096);
  SwattDevice device(memory);
  device.compromise(1'000, bytes_of("malware-no-redirect"), /*redirect=*/false);
  SwattVerifier verifier(memory);
  SwattConfig config;
  // Enough iterations that the walk almost surely samples the region.
  const SwattVerdict verdict = verifier.attest(device, 43);
  EXPECT_FALSE(verdict.checksum_ok);
  (void)config;
}

TEST(Swatt, RedirectingMalwareCaughtByTiming) {
  const Bytes memory = golden_memory(4'096);
  SwattDevice device(memory);
  device.compromise(1'000, bytes_of("malware-with-redirect"), /*redirect=*/true);
  SwattVerifier verifier(memory);
  const SwattVerdict verdict = verifier.attest(device, 44, /*time_slack=*/0.001);
  EXPECT_TRUE(verdict.checksum_ok) << "redirection preserves the checksum";
  EXPECT_FALSE(verdict.time_ok) << "but costs measurable extra cycles";
}

TEST(Swatt, NetworkJitterMasksTheTimingSignal) {
  // §4.1's critique: over a network, jitter dwarfs the redirection
  // overhead, so the timing check either rejects honest devices or accepts
  // compromised ones.
  const Bytes memory = golden_memory(4'096);
  SwattDevice compromised(memory);
  compromised.compromise(1'000, bytes_of("remote-malware"), /*redirect=*/true);
  SwattVerifier verifier(memory);
  // A slack generous enough to absorb 1 ms of jitter...
  const sim::SimDuration jitter = sim::kMillisecond;
  SwattVerdict honest_far =
      verifier.attest(SwattDevice(memory), 45, /*time_slack=*/5.0, jitter);
  EXPECT_TRUE(honest_far.ok()) << "honest device passes with loose bound";
  // ...also lets the compromised device through: the scheme degrades.
  SwattVerdict bad = verifier.attest(compromised, 45, /*time_slack=*/5.0, jitter);
  EXPECT_TRUE(bad.time_ok) << "redirection hides inside the slack";
}

TEST(Swatt, DetectionProbabilityGrowsWithIterations) {
  const Bytes memory = golden_memory(16'384);
  SwattVerifier verifier_small(memory, SwattConfig{.iterations = 64});
  SwattVerifier verifier_large(memory, SwattConfig{.iterations = 16'384});
  int missed_small = 0, missed_large = 0;
  for (std::uint64_t challenge = 0; challenge < 20; ++challenge) {
    SwattDevice device(memory, SwattConfig{.iterations = 64});
    device.compromise(8'000, Bytes(16, 0xee), /*redirect=*/false);
    if (verifier_small.attest(device, challenge).checksum_ok) ++missed_small;
    SwattDevice device2(memory, SwattConfig{.iterations = 16'384});
    device2.compromise(8'000, Bytes(16, 0xee), /*redirect=*/false);
    if (verifier_large.attest(device2, challenge).checksum_ok) ++missed_large;
  }
  EXPECT_GT(missed_small, 0) << "a 64-step walk misses a 16-byte patch often";
  EXPECT_EQ(missed_large, 0) << "a full-size walk essentially never misses";
}

// ----------------------------------------------------------------- Chaves

struct ChavesRig {
  ChavesRig()
      : device(fabric::DeviceModel::small_test_device()),
        memory(device),
        attestor(memory, fabric::FrameRange{4, 12}),
        gen(device) {}
  fabric::DeviceModel device;
  config::ConfigMemory memory;
  ChavesAttestor attestor;
  bitstream::BitGen gen;
};

TEST(Chaves, HonestLoadMatchesExpectedHash) {
  ChavesRig rig;
  const auto image = rig.gen.generate(fabric::FrameRange{4, 12}, {"app", 1});
  ASSERT_TRUE(rig.attestor.load(image.frames, 4).ok());
  EXPECT_EQ(rig.attestor.report(), ChavesAttestor::expected(image.frames));
}

TEST(Chaves, ModifiedBitstreamChangesHash) {
  ChavesRig rig;
  auto image = rig.gen.generate(fabric::FrameRange{4, 12}, {"app", 1});
  const auto want = ChavesAttestor::expected(image.frames);
  image.frames[3].flip_bit(7);
  ASSERT_TRUE(rig.attestor.load(image.frames, 4).ok());
  EXPECT_NE(rig.attestor.report(), want);
}

TEST(Chaves, RefusesWritesOutsideRestrictedArea) {
  ChavesRig rig;
  const auto image = rig.gen.generate(fabric::FrameRange{0, 2}, {"evil", 1});
  EXPECT_FALSE(rig.attestor.load(image.frames, 0).ok());  // static area
  EXPECT_FALSE(rig.attestor.load(image.frames, 15).ok()); // spills past end
}

TEST(Chaves, DirectConfigWriteBypassesTheHash) {
  // The assumption gap SACHa closes: an adversary writing the configuration
  // memory directly (not through the trusted core) is invisible to the
  // on-the-fly hash.
  ChavesRig rig;
  const auto image = rig.gen.generate(fabric::FrameRange{4, 12}, {"app", 1});
  ASSERT_TRUE(rig.attestor.load(image.frames, 4).ok());
  const auto report_before = rig.attestor.report();

  bitstream::Frame tampered = rig.memory.config_frame(6);
  tampered.flip_bit(11);
  rig.memory.write_frame(6, tampered);  // direct write, core bypassed

  EXPECT_EQ(rig.attestor.report(), report_before)
      << "hash unchanged although the running configuration changed";
  EXPECT_EQ(rig.attestor.report(), ChavesAttestor::expected(image.frames))
      << "the verifier would still accept";
}

// ------------------------------------------------------------ DrimerKuhn

TEST(DrimerKuhn, AuthenticatedUpdateAndAttest) {
  ExternalNvm nvm;
  DrimerKuhnDevice device(nvm, key_of(9));
  DrimerKuhnVerifier verifier(key_of(9));
  const Bytes bitstream = crypto::Prg(1, "dk-bs").bytes(2'048);
  ASSERT_TRUE(device.apply_update(verifier.make_update(1, bitstream)).ok());
  const crypto::Mac response = device.attest(777);
  EXPECT_TRUE(verifier.verify(777, 1, bitstream, response));
}

TEST(DrimerKuhn, ForgedUpdateRejected) {
  ExternalNvm nvm;
  DrimerKuhnDevice device(nvm, key_of(9));
  DrimerKuhnVerifier wrong_key(key_of(10));
  const Bytes bitstream = crypto::Prg(2, "dk-bs").bytes(512);
  EXPECT_FALSE(device.apply_update(wrong_key.make_update(1, bitstream)).ok());
}

TEST(DrimerKuhn, RollbackRejected) {
  ExternalNvm nvm;
  DrimerKuhnDevice device(nvm, key_of(9));
  DrimerKuhnVerifier verifier(key_of(9));
  ASSERT_TRUE(device.apply_update(verifier.make_update(2, Bytes(64, 2))).ok());
  EXPECT_FALSE(device.apply_update(verifier.make_update(1, Bytes(64, 1))).ok());
  EXPECT_EQ(device.running_version(), 2u);
}

TEST(DrimerKuhn, TamperedNvmDetected) {
  ExternalNvm nvm;
  DrimerKuhnDevice device(nvm, key_of(9));
  DrimerKuhnVerifier verifier(key_of(9));
  const Bytes bitstream = crypto::Prg(3, "dk-bs").bytes(256);
  ASSERT_TRUE(device.apply_update(verifier.make_update(1, bitstream)).ok());
  // Attacker rewrites the NVM content out-of-band.
  NvmSlot evil = *nvm.slot();
  evil.bitstream[0] ^= 1;
  nvm.program(evil);
  EXPECT_FALSE(verifier.verify(5, 1, bitstream, device.attest(5)));
}

TEST(DrimerKuhn, RunningConfigTamperIsInvisible) {
  // The scheme's blind spot: attestation covers the NVM, not the running
  // configuration. SACHa's adversary strikes exactly here.
  ExternalNvm nvm;
  DrimerKuhnDevice device(nvm, key_of(9));
  DrimerKuhnVerifier verifier(key_of(9));
  const Bytes bitstream = crypto::Prg(4, "dk-bs").bytes(256);
  ASSERT_TRUE(device.apply_update(verifier.make_update(1, bitstream)).ok());
  device.running_configuration()[10] ^= 0xff;  // live tamper
  EXPECT_TRUE(verifier.verify(6, 1, bitstream, device.attest(6)))
      << "verifier accepts although the device runs modified hardware";
  EXPECT_NE(device.running_configuration(), nvm.slot()->bitstream);
}

}  // namespace
}  // namespace sacha::attest
