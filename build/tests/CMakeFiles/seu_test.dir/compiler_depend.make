# Empty compiler generated dependencies file for seu_test.
# This may be replaced when dependencies are built.
