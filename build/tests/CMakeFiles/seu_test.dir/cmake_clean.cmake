file(REMOVE_RECURSE
  "CMakeFiles/seu_test.dir/seu_test.cpp.o"
  "CMakeFiles/seu_test.dir/seu_test.cpp.o.d"
  "seu_test"
  "seu_test.pdb"
  "seu_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/seu_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
