# Empty dependencies file for state_attest_test.
# This may be replaced when dependencies are built.
