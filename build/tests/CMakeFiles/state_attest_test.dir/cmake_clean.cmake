file(REMOVE_RECURSE
  "CMakeFiles/state_attest_test.dir/state_attest_test.cpp.o"
  "CMakeFiles/state_attest_test.dir/state_attest_test.cpp.o.d"
  "state_attest_test"
  "state_attest_test.pdb"
  "state_attest_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/state_attest_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
