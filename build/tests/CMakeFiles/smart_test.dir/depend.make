# Empty dependencies file for smart_test.
# This may be replaced when dependencies are built.
