# Empty compiler generated dependencies file for softcore_test.
# This may be replaced when dependencies are built.
