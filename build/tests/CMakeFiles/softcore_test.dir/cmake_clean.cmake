file(REMOVE_RECURSE
  "CMakeFiles/softcore_test.dir/softcore_test.cpp.o"
  "CMakeFiles/softcore_test.dir/softcore_test.cpp.o.d"
  "softcore_test"
  "softcore_test.pdb"
  "softcore_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/softcore_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
