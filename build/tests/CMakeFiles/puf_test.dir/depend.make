# Empty dependencies file for puf_test.
# This may be replaced when dependencies are built.
