# Empty compiler generated dependencies file for multipartition_test.
# This may be replaced when dependencies are built.
