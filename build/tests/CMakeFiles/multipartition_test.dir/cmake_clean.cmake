file(REMOVE_RECURSE
  "CMakeFiles/multipartition_test.dir/multipartition_test.cpp.o"
  "CMakeFiles/multipartition_test.dir/multipartition_test.cpp.o.d"
  "multipartition_test"
  "multipartition_test.pdb"
  "multipartition_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/multipartition_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
