file(REMOVE_RECURSE
  "CMakeFiles/audit_pins_test.dir/audit_pins_test.cpp.o"
  "CMakeFiles/audit_pins_test.dir/audit_pins_test.cpp.o.d"
  "audit_pins_test"
  "audit_pins_test.pdb"
  "audit_pins_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/audit_pins_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
