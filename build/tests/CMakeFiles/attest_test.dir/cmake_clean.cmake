file(REMOVE_RECURSE
  "CMakeFiles/attest_test.dir/attest_test.cpp.o"
  "CMakeFiles/attest_test.dir/attest_test.cpp.o.d"
  "attest_test"
  "attest_test.pdb"
  "attest_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/attest_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
