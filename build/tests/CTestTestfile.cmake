# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/common_test[1]_include.cmake")
include("/root/repo/build/tests/crypto_test[1]_include.cmake")
include("/root/repo/build/tests/fabric_test[1]_include.cmake")
include("/root/repo/build/tests/bitstream_test[1]_include.cmake")
include("/root/repo/build/tests/config_test[1]_include.cmake")
include("/root/repo/build/tests/sim_test[1]_include.cmake")
include("/root/repo/build/tests/net_test[1]_include.cmake")
include("/root/repo/build/tests/puf_test[1]_include.cmake")
include("/root/repo/build/tests/core_test[1]_include.cmake")
include("/root/repo/build/tests/attest_test[1]_include.cmake")
include("/root/repo/build/tests/attacks_test[1]_include.cmake")
include("/root/repo/build/tests/softcore_test[1]_include.cmake")
include("/root/repo/build/tests/state_attest_test[1]_include.cmake")
include("/root/repo/build/tests/signature_test[1]_include.cmake")
include("/root/repo/build/tests/swarm_test[1]_include.cmake")
include("/root/repo/build/tests/seu_test[1]_include.cmake")
include("/root/repo/build/tests/fuzz_test[1]_include.cmake")
include("/root/repo/build/tests/integration_test[1]_include.cmake")
include("/root/repo/build/tests/compress_test[1]_include.cmake")
include("/root/repo/build/tests/refresh_test[1]_include.cmake")
include("/root/repo/build/tests/audit_pins_test[1]_include.cmake")
include("/root/repo/build/tests/smart_test[1]_include.cmake")
include("/root/repo/build/tests/protocol_properties_test[1]_include.cmake")
include("/root/repo/build/tests/multipartition_test[1]_include.cmake")
include("/root/repo/build/tests/timing_model_test[1]_include.cmake")
