# Empty dependencies file for softcore_state.
# This may be replaced when dependencies are built.
