file(REMOVE_RECURSE
  "CMakeFiles/softcore_state.dir/softcore_state.cpp.o"
  "CMakeFiles/softcore_state.dir/softcore_state.cpp.o.d"
  "softcore_state"
  "softcore_state.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/softcore_state.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
