# Empty dependencies file for sacha_cli.
# This may be replaced when dependencies are built.
