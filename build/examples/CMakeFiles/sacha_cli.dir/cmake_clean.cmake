file(REMOVE_RECURSE
  "CMakeFiles/sacha_cli.dir/sacha_cli.cpp.o"
  "CMakeFiles/sacha_cli.dir/sacha_cli.cpp.o.d"
  "sacha_cli"
  "sacha_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sacha_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
