
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/examples/sacha_cli.cpp" "examples/CMakeFiles/sacha_cli.dir/sacha_cli.cpp.o" "gcc" "examples/CMakeFiles/sacha_cli.dir/sacha_cli.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/sacha_core.dir/DependInfo.cmake"
  "/root/repo/build/src/attacks/CMakeFiles/sacha_attacks.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/sacha_net.dir/DependInfo.cmake"
  "/root/repo/build/src/puf/CMakeFiles/sacha_puf.dir/DependInfo.cmake"
  "/root/repo/build/src/softcore/CMakeFiles/sacha_softcore.dir/DependInfo.cmake"
  "/root/repo/build/src/attest/CMakeFiles/sacha_attest.dir/DependInfo.cmake"
  "/root/repo/build/src/config/CMakeFiles/sacha_config.dir/DependInfo.cmake"
  "/root/repo/build/src/bitstream/CMakeFiles/sacha_bitstream.dir/DependInfo.cmake"
  "/root/repo/build/src/crypto/CMakeFiles/sacha_crypto.dir/DependInfo.cmake"
  "/root/repo/build/src/fabric/CMakeFiles/sacha_fabric.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/sacha_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/sacha_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
