# Empty compiler generated dependencies file for processor_attestation.
# This may be replaced when dependencies are built.
