file(REMOVE_RECURSE
  "CMakeFiles/processor_attestation.dir/processor_attestation.cpp.o"
  "CMakeFiles/processor_attestation.dir/processor_attestation.cpp.o.d"
  "processor_attestation"
  "processor_attestation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/processor_attestation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
