file(REMOVE_RECURSE
  "CMakeFiles/sacha_config.dir/bram_buffer.cpp.o"
  "CMakeFiles/sacha_config.dir/bram_buffer.cpp.o.d"
  "CMakeFiles/sacha_config.dir/config_memory.cpp.o"
  "CMakeFiles/sacha_config.dir/config_memory.cpp.o.d"
  "CMakeFiles/sacha_config.dir/icap.cpp.o"
  "CMakeFiles/sacha_config.dir/icap.cpp.o.d"
  "CMakeFiles/sacha_config.dir/seu.cpp.o"
  "CMakeFiles/sacha_config.dir/seu.cpp.o.d"
  "libsacha_config.a"
  "libsacha_config.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sacha_config.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
