file(REMOVE_RECURSE
  "libsacha_config.a"
)
