
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/config/bram_buffer.cpp" "src/config/CMakeFiles/sacha_config.dir/bram_buffer.cpp.o" "gcc" "src/config/CMakeFiles/sacha_config.dir/bram_buffer.cpp.o.d"
  "/root/repo/src/config/config_memory.cpp" "src/config/CMakeFiles/sacha_config.dir/config_memory.cpp.o" "gcc" "src/config/CMakeFiles/sacha_config.dir/config_memory.cpp.o.d"
  "/root/repo/src/config/icap.cpp" "src/config/CMakeFiles/sacha_config.dir/icap.cpp.o" "gcc" "src/config/CMakeFiles/sacha_config.dir/icap.cpp.o.d"
  "/root/repo/src/config/seu.cpp" "src/config/CMakeFiles/sacha_config.dir/seu.cpp.o" "gcc" "src/config/CMakeFiles/sacha_config.dir/seu.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/sacha_common.dir/DependInfo.cmake"
  "/root/repo/build/src/fabric/CMakeFiles/sacha_fabric.dir/DependInfo.cmake"
  "/root/repo/build/src/bitstream/CMakeFiles/sacha_bitstream.dir/DependInfo.cmake"
  "/root/repo/build/src/crypto/CMakeFiles/sacha_crypto.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
