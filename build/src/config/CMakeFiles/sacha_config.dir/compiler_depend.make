# Empty compiler generated dependencies file for sacha_config.
# This may be replaced when dependencies are built.
