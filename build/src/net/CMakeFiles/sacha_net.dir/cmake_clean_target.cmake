file(REMOVE_RECURSE
  "libsacha_net.a"
)
