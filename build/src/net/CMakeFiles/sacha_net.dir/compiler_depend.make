# Empty compiler generated dependencies file for sacha_net.
# This may be replaced when dependencies are built.
