file(REMOVE_RECURSE
  "CMakeFiles/sacha_net.dir/channel.cpp.o"
  "CMakeFiles/sacha_net.dir/channel.cpp.o.d"
  "CMakeFiles/sacha_net.dir/ethernet.cpp.o"
  "CMakeFiles/sacha_net.dir/ethernet.cpp.o.d"
  "libsacha_net.a"
  "libsacha_net.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sacha_net.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
