file(REMOVE_RECURSE
  "libsacha_crypto.a"
)
