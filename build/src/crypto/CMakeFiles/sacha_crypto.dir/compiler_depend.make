# Empty compiler generated dependencies file for sacha_crypto.
# This may be replaced when dependencies are built.
