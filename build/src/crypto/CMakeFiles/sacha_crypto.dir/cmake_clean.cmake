file(REMOVE_RECURSE
  "CMakeFiles/sacha_crypto.dir/aes.cpp.o"
  "CMakeFiles/sacha_crypto.dir/aes.cpp.o.d"
  "CMakeFiles/sacha_crypto.dir/cmac.cpp.o"
  "CMakeFiles/sacha_crypto.dir/cmac.cpp.o.d"
  "CMakeFiles/sacha_crypto.dir/ct.cpp.o"
  "CMakeFiles/sacha_crypto.dir/ct.cpp.o.d"
  "CMakeFiles/sacha_crypto.dir/hmac.cpp.o"
  "CMakeFiles/sacha_crypto.dir/hmac.cpp.o.d"
  "CMakeFiles/sacha_crypto.dir/lamport.cpp.o"
  "CMakeFiles/sacha_crypto.dir/lamport.cpp.o.d"
  "CMakeFiles/sacha_crypto.dir/merkle.cpp.o"
  "CMakeFiles/sacha_crypto.dir/merkle.cpp.o.d"
  "CMakeFiles/sacha_crypto.dir/prg.cpp.o"
  "CMakeFiles/sacha_crypto.dir/prg.cpp.o.d"
  "CMakeFiles/sacha_crypto.dir/sha256.cpp.o"
  "CMakeFiles/sacha_crypto.dir/sha256.cpp.o.d"
  "libsacha_crypto.a"
  "libsacha_crypto.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sacha_crypto.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
