
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/crypto/aes.cpp" "src/crypto/CMakeFiles/sacha_crypto.dir/aes.cpp.o" "gcc" "src/crypto/CMakeFiles/sacha_crypto.dir/aes.cpp.o.d"
  "/root/repo/src/crypto/cmac.cpp" "src/crypto/CMakeFiles/sacha_crypto.dir/cmac.cpp.o" "gcc" "src/crypto/CMakeFiles/sacha_crypto.dir/cmac.cpp.o.d"
  "/root/repo/src/crypto/ct.cpp" "src/crypto/CMakeFiles/sacha_crypto.dir/ct.cpp.o" "gcc" "src/crypto/CMakeFiles/sacha_crypto.dir/ct.cpp.o.d"
  "/root/repo/src/crypto/hmac.cpp" "src/crypto/CMakeFiles/sacha_crypto.dir/hmac.cpp.o" "gcc" "src/crypto/CMakeFiles/sacha_crypto.dir/hmac.cpp.o.d"
  "/root/repo/src/crypto/lamport.cpp" "src/crypto/CMakeFiles/sacha_crypto.dir/lamport.cpp.o" "gcc" "src/crypto/CMakeFiles/sacha_crypto.dir/lamport.cpp.o.d"
  "/root/repo/src/crypto/merkle.cpp" "src/crypto/CMakeFiles/sacha_crypto.dir/merkle.cpp.o" "gcc" "src/crypto/CMakeFiles/sacha_crypto.dir/merkle.cpp.o.d"
  "/root/repo/src/crypto/prg.cpp" "src/crypto/CMakeFiles/sacha_crypto.dir/prg.cpp.o" "gcc" "src/crypto/CMakeFiles/sacha_crypto.dir/prg.cpp.o.d"
  "/root/repo/src/crypto/sha256.cpp" "src/crypto/CMakeFiles/sacha_crypto.dir/sha256.cpp.o" "gcc" "src/crypto/CMakeFiles/sacha_crypto.dir/sha256.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/sacha_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
