
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/audit.cpp" "src/core/CMakeFiles/sacha_core.dir/audit.cpp.o" "gcc" "src/core/CMakeFiles/sacha_core.dir/audit.cpp.o.d"
  "/root/repo/src/core/mac_engine.cpp" "src/core/CMakeFiles/sacha_core.dir/mac_engine.cpp.o" "gcc" "src/core/CMakeFiles/sacha_core.dir/mac_engine.cpp.o.d"
  "/root/repo/src/core/protocol.cpp" "src/core/CMakeFiles/sacha_core.dir/protocol.cpp.o" "gcc" "src/core/CMakeFiles/sacha_core.dir/protocol.cpp.o.d"
  "/root/repo/src/core/prover.cpp" "src/core/CMakeFiles/sacha_core.dir/prover.cpp.o" "gcc" "src/core/CMakeFiles/sacha_core.dir/prover.cpp.o.d"
  "/root/repo/src/core/session.cpp" "src/core/CMakeFiles/sacha_core.dir/session.cpp.o" "gcc" "src/core/CMakeFiles/sacha_core.dir/session.cpp.o.d"
  "/root/repo/src/core/signed_attest.cpp" "src/core/CMakeFiles/sacha_core.dir/signed_attest.cpp.o" "gcc" "src/core/CMakeFiles/sacha_core.dir/signed_attest.cpp.o.d"
  "/root/repo/src/core/state_attest.cpp" "src/core/CMakeFiles/sacha_core.dir/state_attest.cpp.o" "gcc" "src/core/CMakeFiles/sacha_core.dir/state_attest.cpp.o.d"
  "/root/repo/src/core/swarm.cpp" "src/core/CMakeFiles/sacha_core.dir/swarm.cpp.o" "gcc" "src/core/CMakeFiles/sacha_core.dir/swarm.cpp.o.d"
  "/root/repo/src/core/verifier.cpp" "src/core/CMakeFiles/sacha_core.dir/verifier.cpp.o" "gcc" "src/core/CMakeFiles/sacha_core.dir/verifier.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/sacha_common.dir/DependInfo.cmake"
  "/root/repo/build/src/crypto/CMakeFiles/sacha_crypto.dir/DependInfo.cmake"
  "/root/repo/build/src/fabric/CMakeFiles/sacha_fabric.dir/DependInfo.cmake"
  "/root/repo/build/src/bitstream/CMakeFiles/sacha_bitstream.dir/DependInfo.cmake"
  "/root/repo/build/src/config/CMakeFiles/sacha_config.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/sacha_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/sacha_net.dir/DependInfo.cmake"
  "/root/repo/build/src/puf/CMakeFiles/sacha_puf.dir/DependInfo.cmake"
  "/root/repo/build/src/softcore/CMakeFiles/sacha_softcore.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
