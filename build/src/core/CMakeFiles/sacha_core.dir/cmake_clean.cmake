file(REMOVE_RECURSE
  "CMakeFiles/sacha_core.dir/audit.cpp.o"
  "CMakeFiles/sacha_core.dir/audit.cpp.o.d"
  "CMakeFiles/sacha_core.dir/mac_engine.cpp.o"
  "CMakeFiles/sacha_core.dir/mac_engine.cpp.o.d"
  "CMakeFiles/sacha_core.dir/protocol.cpp.o"
  "CMakeFiles/sacha_core.dir/protocol.cpp.o.d"
  "CMakeFiles/sacha_core.dir/prover.cpp.o"
  "CMakeFiles/sacha_core.dir/prover.cpp.o.d"
  "CMakeFiles/sacha_core.dir/session.cpp.o"
  "CMakeFiles/sacha_core.dir/session.cpp.o.d"
  "CMakeFiles/sacha_core.dir/signed_attest.cpp.o"
  "CMakeFiles/sacha_core.dir/signed_attest.cpp.o.d"
  "CMakeFiles/sacha_core.dir/state_attest.cpp.o"
  "CMakeFiles/sacha_core.dir/state_attest.cpp.o.d"
  "CMakeFiles/sacha_core.dir/swarm.cpp.o"
  "CMakeFiles/sacha_core.dir/swarm.cpp.o.d"
  "CMakeFiles/sacha_core.dir/verifier.cpp.o"
  "CMakeFiles/sacha_core.dir/verifier.cpp.o.d"
  "libsacha_core.a"
  "libsacha_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sacha_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
