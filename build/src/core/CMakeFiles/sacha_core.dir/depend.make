# Empty dependencies file for sacha_core.
# This may be replaced when dependencies are built.
