file(REMOVE_RECURSE
  "libsacha_core.a"
)
