file(REMOVE_RECURSE
  "libsacha_puf.a"
)
