
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/puf/enrollment.cpp" "src/puf/CMakeFiles/sacha_puf.dir/enrollment.cpp.o" "gcc" "src/puf/CMakeFiles/sacha_puf.dir/enrollment.cpp.o.d"
  "/root/repo/src/puf/fuzzy_extractor.cpp" "src/puf/CMakeFiles/sacha_puf.dir/fuzzy_extractor.cpp.o" "gcc" "src/puf/CMakeFiles/sacha_puf.dir/fuzzy_extractor.cpp.o.d"
  "/root/repo/src/puf/sram_puf.cpp" "src/puf/CMakeFiles/sacha_puf.dir/sram_puf.cpp.o" "gcc" "src/puf/CMakeFiles/sacha_puf.dir/sram_puf.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/sacha_common.dir/DependInfo.cmake"
  "/root/repo/build/src/crypto/CMakeFiles/sacha_crypto.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
