file(REMOVE_RECURSE
  "CMakeFiles/sacha_puf.dir/enrollment.cpp.o"
  "CMakeFiles/sacha_puf.dir/enrollment.cpp.o.d"
  "CMakeFiles/sacha_puf.dir/fuzzy_extractor.cpp.o"
  "CMakeFiles/sacha_puf.dir/fuzzy_extractor.cpp.o.d"
  "CMakeFiles/sacha_puf.dir/sram_puf.cpp.o"
  "CMakeFiles/sacha_puf.dir/sram_puf.cpp.o.d"
  "libsacha_puf.a"
  "libsacha_puf.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sacha_puf.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
