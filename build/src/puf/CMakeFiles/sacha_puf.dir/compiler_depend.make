# Empty compiler generated dependencies file for sacha_puf.
# This may be replaced when dependencies are built.
