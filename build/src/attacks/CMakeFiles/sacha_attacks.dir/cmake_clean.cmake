file(REMOVE_RECURSE
  "CMakeFiles/sacha_attacks.dir/env.cpp.o"
  "CMakeFiles/sacha_attacks.dir/env.cpp.o.d"
  "CMakeFiles/sacha_attacks.dir/library.cpp.o"
  "CMakeFiles/sacha_attacks.dir/library.cpp.o.d"
  "libsacha_attacks.a"
  "libsacha_attacks.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sacha_attacks.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
