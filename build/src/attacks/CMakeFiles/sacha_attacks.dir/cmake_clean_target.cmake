file(REMOVE_RECURSE
  "libsacha_attacks.a"
)
