# Empty dependencies file for sacha_attacks.
# This may be replaced when dependencies are built.
