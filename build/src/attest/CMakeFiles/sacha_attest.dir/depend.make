# Empty dependencies file for sacha_attest.
# This may be replaced when dependencies are built.
