file(REMOVE_RECURSE
  "libsacha_attest.a"
)
