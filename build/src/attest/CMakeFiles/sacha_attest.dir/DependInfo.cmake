
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/attest/chaves.cpp" "src/attest/CMakeFiles/sacha_attest.dir/chaves.cpp.o" "gcc" "src/attest/CMakeFiles/sacha_attest.dir/chaves.cpp.o.d"
  "/root/repo/src/attest/drimer_kuhn.cpp" "src/attest/CMakeFiles/sacha_attest.dir/drimer_kuhn.cpp.o" "gcc" "src/attest/CMakeFiles/sacha_attest.dir/drimer_kuhn.cpp.o.d"
  "/root/repo/src/attest/mcu.cpp" "src/attest/CMakeFiles/sacha_attest.dir/mcu.cpp.o" "gcc" "src/attest/CMakeFiles/sacha_attest.dir/mcu.cpp.o.d"
  "/root/repo/src/attest/perito_tsudik.cpp" "src/attest/CMakeFiles/sacha_attest.dir/perito_tsudik.cpp.o" "gcc" "src/attest/CMakeFiles/sacha_attest.dir/perito_tsudik.cpp.o.d"
  "/root/repo/src/attest/smart.cpp" "src/attest/CMakeFiles/sacha_attest.dir/smart.cpp.o" "gcc" "src/attest/CMakeFiles/sacha_attest.dir/smart.cpp.o.d"
  "/root/repo/src/attest/swatt.cpp" "src/attest/CMakeFiles/sacha_attest.dir/swatt.cpp.o" "gcc" "src/attest/CMakeFiles/sacha_attest.dir/swatt.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/sacha_common.dir/DependInfo.cmake"
  "/root/repo/build/src/crypto/CMakeFiles/sacha_crypto.dir/DependInfo.cmake"
  "/root/repo/build/src/config/CMakeFiles/sacha_config.dir/DependInfo.cmake"
  "/root/repo/build/src/bitstream/CMakeFiles/sacha_bitstream.dir/DependInfo.cmake"
  "/root/repo/build/src/fabric/CMakeFiles/sacha_fabric.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/sacha_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
