file(REMOVE_RECURSE
  "CMakeFiles/sacha_attest.dir/chaves.cpp.o"
  "CMakeFiles/sacha_attest.dir/chaves.cpp.o.d"
  "CMakeFiles/sacha_attest.dir/drimer_kuhn.cpp.o"
  "CMakeFiles/sacha_attest.dir/drimer_kuhn.cpp.o.d"
  "CMakeFiles/sacha_attest.dir/mcu.cpp.o"
  "CMakeFiles/sacha_attest.dir/mcu.cpp.o.d"
  "CMakeFiles/sacha_attest.dir/perito_tsudik.cpp.o"
  "CMakeFiles/sacha_attest.dir/perito_tsudik.cpp.o.d"
  "CMakeFiles/sacha_attest.dir/smart.cpp.o"
  "CMakeFiles/sacha_attest.dir/smart.cpp.o.d"
  "CMakeFiles/sacha_attest.dir/swatt.cpp.o"
  "CMakeFiles/sacha_attest.dir/swatt.cpp.o.d"
  "libsacha_attest.a"
  "libsacha_attest.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sacha_attest.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
