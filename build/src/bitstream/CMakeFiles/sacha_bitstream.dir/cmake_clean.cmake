file(REMOVE_RECURSE
  "CMakeFiles/sacha_bitstream.dir/bitgen.cpp.o"
  "CMakeFiles/sacha_bitstream.dir/bitgen.cpp.o.d"
  "CMakeFiles/sacha_bitstream.dir/compress.cpp.o"
  "CMakeFiles/sacha_bitstream.dir/compress.cpp.o.d"
  "CMakeFiles/sacha_bitstream.dir/frame.cpp.o"
  "CMakeFiles/sacha_bitstream.dir/frame.cpp.o.d"
  "CMakeFiles/sacha_bitstream.dir/packet.cpp.o"
  "CMakeFiles/sacha_bitstream.dir/packet.cpp.o.d"
  "CMakeFiles/sacha_bitstream.dir/pins.cpp.o"
  "CMakeFiles/sacha_bitstream.dir/pins.cpp.o.d"
  "libsacha_bitstream.a"
  "libsacha_bitstream.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sacha_bitstream.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
