file(REMOVE_RECURSE
  "libsacha_bitstream.a"
)
