# Empty dependencies file for sacha_bitstream.
# This may be replaced when dependencies are built.
