
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/bitstream/bitgen.cpp" "src/bitstream/CMakeFiles/sacha_bitstream.dir/bitgen.cpp.o" "gcc" "src/bitstream/CMakeFiles/sacha_bitstream.dir/bitgen.cpp.o.d"
  "/root/repo/src/bitstream/compress.cpp" "src/bitstream/CMakeFiles/sacha_bitstream.dir/compress.cpp.o" "gcc" "src/bitstream/CMakeFiles/sacha_bitstream.dir/compress.cpp.o.d"
  "/root/repo/src/bitstream/frame.cpp" "src/bitstream/CMakeFiles/sacha_bitstream.dir/frame.cpp.o" "gcc" "src/bitstream/CMakeFiles/sacha_bitstream.dir/frame.cpp.o.d"
  "/root/repo/src/bitstream/packet.cpp" "src/bitstream/CMakeFiles/sacha_bitstream.dir/packet.cpp.o" "gcc" "src/bitstream/CMakeFiles/sacha_bitstream.dir/packet.cpp.o.d"
  "/root/repo/src/bitstream/pins.cpp" "src/bitstream/CMakeFiles/sacha_bitstream.dir/pins.cpp.o" "gcc" "src/bitstream/CMakeFiles/sacha_bitstream.dir/pins.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/sacha_common.dir/DependInfo.cmake"
  "/root/repo/build/src/crypto/CMakeFiles/sacha_crypto.dir/DependInfo.cmake"
  "/root/repo/build/src/fabric/CMakeFiles/sacha_fabric.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
