file(REMOVE_RECURSE
  "CMakeFiles/sacha_common.dir/bitvec.cpp.o"
  "CMakeFiles/sacha_common.dir/bitvec.cpp.o.d"
  "CMakeFiles/sacha_common.dir/bytes.cpp.o"
  "CMakeFiles/sacha_common.dir/bytes.cpp.o.d"
  "CMakeFiles/sacha_common.dir/log.cpp.o"
  "CMakeFiles/sacha_common.dir/log.cpp.o.d"
  "CMakeFiles/sacha_common.dir/rng.cpp.o"
  "CMakeFiles/sacha_common.dir/rng.cpp.o.d"
  "libsacha_common.a"
  "libsacha_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sacha_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
