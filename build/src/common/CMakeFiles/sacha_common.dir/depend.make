# Empty dependencies file for sacha_common.
# This may be replaced when dependencies are built.
