file(REMOVE_RECURSE
  "libsacha_common.a"
)
