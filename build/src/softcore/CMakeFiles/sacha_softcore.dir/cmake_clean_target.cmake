file(REMOVE_RECURSE
  "libsacha_softcore.a"
)
