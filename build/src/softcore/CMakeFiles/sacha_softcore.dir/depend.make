# Empty dependencies file for sacha_softcore.
# This may be replaced when dependencies are built.
