file(REMOVE_RECURSE
  "CMakeFiles/sacha_softcore.dir/assembler.cpp.o"
  "CMakeFiles/sacha_softcore.dir/assembler.cpp.o.d"
  "CMakeFiles/sacha_softcore.dir/cpu.cpp.o"
  "CMakeFiles/sacha_softcore.dir/cpu.cpp.o.d"
  "CMakeFiles/sacha_softcore.dir/isa.cpp.o"
  "CMakeFiles/sacha_softcore.dir/isa.cpp.o.d"
  "CMakeFiles/sacha_softcore.dir/state_map.cpp.o"
  "CMakeFiles/sacha_softcore.dir/state_map.cpp.o.d"
  "libsacha_softcore.a"
  "libsacha_softcore.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sacha_softcore.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
