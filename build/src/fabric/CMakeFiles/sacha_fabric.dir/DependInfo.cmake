
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/fabric/device.cpp" "src/fabric/CMakeFiles/sacha_fabric.dir/device.cpp.o" "gcc" "src/fabric/CMakeFiles/sacha_fabric.dir/device.cpp.o.d"
  "/root/repo/src/fabric/geometry.cpp" "src/fabric/CMakeFiles/sacha_fabric.dir/geometry.cpp.o" "gcc" "src/fabric/CMakeFiles/sacha_fabric.dir/geometry.cpp.o.d"
  "/root/repo/src/fabric/partition.cpp" "src/fabric/CMakeFiles/sacha_fabric.dir/partition.cpp.o" "gcc" "src/fabric/CMakeFiles/sacha_fabric.dir/partition.cpp.o.d"
  "/root/repo/src/fabric/resources.cpp" "src/fabric/CMakeFiles/sacha_fabric.dir/resources.cpp.o" "gcc" "src/fabric/CMakeFiles/sacha_fabric.dir/resources.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/sacha_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
