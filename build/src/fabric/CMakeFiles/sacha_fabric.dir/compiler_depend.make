# Empty compiler generated dependencies file for sacha_fabric.
# This may be replaced when dependencies are built.
