file(REMOVE_RECURSE
  "libsacha_fabric.a"
)
