file(REMOVE_RECURSE
  "CMakeFiles/sacha_fabric.dir/device.cpp.o"
  "CMakeFiles/sacha_fabric.dir/device.cpp.o.d"
  "CMakeFiles/sacha_fabric.dir/geometry.cpp.o"
  "CMakeFiles/sacha_fabric.dir/geometry.cpp.o.d"
  "CMakeFiles/sacha_fabric.dir/partition.cpp.o"
  "CMakeFiles/sacha_fabric.dir/partition.cpp.o.d"
  "CMakeFiles/sacha_fabric.dir/resources.cpp.o"
  "CMakeFiles/sacha_fabric.dir/resources.cpp.o.d"
  "libsacha_fabric.a"
  "libsacha_fabric.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sacha_fabric.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
