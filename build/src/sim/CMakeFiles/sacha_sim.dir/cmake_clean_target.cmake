file(REMOVE_RECURSE
  "libsacha_sim.a"
)
