# Empty compiler generated dependencies file for sacha_sim.
# This may be replaced when dependencies are built.
