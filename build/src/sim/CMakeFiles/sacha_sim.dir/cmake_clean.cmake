file(REMOVE_RECURSE
  "CMakeFiles/sacha_sim.dir/clock.cpp.o"
  "CMakeFiles/sacha_sim.dir/clock.cpp.o.d"
  "CMakeFiles/sacha_sim.dir/event_queue.cpp.o"
  "CMakeFiles/sacha_sim.dir/event_queue.cpp.o.d"
  "CMakeFiles/sacha_sim.dir/ledger.cpp.o"
  "CMakeFiles/sacha_sim.dir/ledger.cpp.o.d"
  "libsacha_sim.a"
  "libsacha_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sacha_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
