file(REMOVE_RECURSE
  "CMakeFiles/bench_table3_actions.dir/bench_table3_actions.cpp.o"
  "CMakeFiles/bench_table3_actions.dir/bench_table3_actions.cpp.o.d"
  "bench_table3_actions"
  "bench_table3_actions.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table3_actions.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
