# Empty dependencies file for bench_signature.
# This may be replaced when dependencies are built.
