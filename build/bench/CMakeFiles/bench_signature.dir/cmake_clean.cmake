file(REMOVE_RECURSE
  "CMakeFiles/bench_signature.dir/bench_signature.cpp.o"
  "CMakeFiles/bench_signature.dir/bench_signature.cpp.o.d"
  "bench_signature"
  "bench_signature.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_signature.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
