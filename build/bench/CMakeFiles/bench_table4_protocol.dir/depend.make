# Empty dependencies file for bench_table4_protocol.
# This may be replaced when dependencies are built.
