file(REMOVE_RECURSE
  "CMakeFiles/bench_table4_protocol.dir/bench_table4_protocol.cpp.o"
  "CMakeFiles/bench_table4_protocol.dir/bench_table4_protocol.cpp.o.d"
  "bench_table4_protocol"
  "bench_table4_protocol.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table4_protocol.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
