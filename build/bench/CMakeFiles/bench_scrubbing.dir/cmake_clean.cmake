file(REMOVE_RECURSE
  "CMakeFiles/bench_scrubbing.dir/bench_scrubbing.cpp.o"
  "CMakeFiles/bench_scrubbing.dir/bench_scrubbing.cpp.o.d"
  "bench_scrubbing"
  "bench_scrubbing.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_scrubbing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
