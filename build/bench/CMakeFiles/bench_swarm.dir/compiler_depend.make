# Empty compiler generated dependencies file for bench_swarm.
# This may be replaced when dependencies are built.
