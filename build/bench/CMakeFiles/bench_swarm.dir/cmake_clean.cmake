file(REMOVE_RECURSE
  "CMakeFiles/bench_swarm.dir/bench_swarm.cpp.o"
  "CMakeFiles/bench_swarm.dir/bench_swarm.cpp.o.d"
  "bench_swarm"
  "bench_swarm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_swarm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
