file(REMOVE_RECURSE
  "CMakeFiles/bench_puf.dir/bench_puf.cpp.o"
  "CMakeFiles/bench_puf.dir/bench_puf.cpp.o.d"
  "bench_puf"
  "bench_puf.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_puf.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
