# Empty compiler generated dependencies file for bench_puf.
# This may be replaced when dependencies are built.
