file(REMOVE_RECURSE
  "CMakeFiles/bench_state_attest.dir/bench_state_attest.cpp.o"
  "CMakeFiles/bench_state_attest.dir/bench_state_attest.cpp.o.d"
  "bench_state_attest"
  "bench_state_attest.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_state_attest.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
