# Empty dependencies file for bench_state_attest.
# This may be replaced when dependencies are built.
